"""Table I: the four counterexample patterns on T = AND(e2, OR(e4, e5)).

Each row regenerates the example/counterexample pair of the table and
times Algorithm 4.  The second MCS row is the documented deviation (our
deterministic output is the other, equally valid, MCS witness; the paper's
vector is verified to be a Def. 7 witness too) — see EXPERIMENTS.md.
"""

import pytest

from repro.ft import table1_tree
from repro.logic import parse_formula
from repro.checker import FormulaTranslator, algorithm4, check

#: (row id, formula, example bits, our Algorithm-4 output bits).
ROWS = [
    ("pattern1-row1", "MCS(e1)", (0, 1, 0), (1, 1, 0)),
    ("pattern1-row2", "MCS(e1)", (1, 1, 1), (1, 1, 0)),
    ("pattern2-row1", "MPS(e1)", (1, 0, 1), (1, 0, 0)),
    ("pattern2-row2", "MPS(e1)", (0, 0, 0), (0, 1, 1)),
    ("pattern3", "MCS(e1) & MCS(e3)", (0, 1, 0), (1, 1, 0)),
    ("pattern4", "MPS(e1) & MPS(e3)", (1, 0, 1), (1, 0, 0)),
]


@pytest.fixture(scope="module")
def translator():
    return FormulaTranslator(table1_tree())


@pytest.mark.parametrize("row_id,text,example,expected", ROWS, ids=[r[0] for r in ROWS])
def bench_table1_counterexample(benchmark, translator, row_id, text, example, expected):
    tree = translator.tree
    formula = parse_formula(text)
    vector = tree.vector_from_bits(example)
    assert not check(translator, formula, vector)

    cex = benchmark(algorithm4, translator, formula, vector)

    got = tuple(int(cex.vector[name]) for name in tree.basic_events)
    assert got == expected
    assert cex.def7_compliant
    assert check(translator, formula, cex.vector)
