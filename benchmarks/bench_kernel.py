"""Array-native kernel vs the historical dict kernel.

The kernel rewrite moved node storage from per-node Python objects and
tuple-keyed dict tables into contiguous ``array('q')`` columns with an
open-addressed unique table and packed-key computed tables, and added a
vectorised multi-profile probability sweep
(:meth:`BDDManager.probability_many`).  This benchmark pins both claims
against an embedded **dict kernel** — a compact complement-edge ROBDD
faithful to the pre-rewrite design (dict unique table keyed on
``(level, low, high)`` tuples, dict apply cache, per-profile dict
probability cache) — on the same workloads:

* micro-loops (recorded, not individually gated): fresh-build of the
  COVID-19 case-study element BDDs, cold-cache pairwise conjunctions,
  and cold-cache single-profile probability;
* the **covid battery** (gated): every COVID element evaluated under
  ``BENCH_SWEEP_PROFILES`` probability profiles — the dict kernel walks
  per profile, the array kernel answers with one vectorised sweep per
  root.  Floor: ``BENCH_MIN_KERNEL_SPEEDUP`` (CI pins 2);
* the **sweep arm** (gated): ``probability_many`` vs per-profile
  :meth:`BDDManager.probability` calls on a ~thousand-node threshold
  BDD.  Floor: ``BENCH_MIN_SWEEP_SPEEDUP`` (CI pins 5) at
  ``BENCH_SWEEP_PROFILES`` profiles.

Both gated floors measure the vectorised numpy path; without numpy (or
under ``REPRO_NO_NUMPY=1``) the script still runs every arm and asserts
value agreement, but records ``"gated": false`` with the reason instead
of enforcing floors the pure-Python fallback never promised — the same
degrade-with-a-reason pattern as ``bench_parallel.py`` on small boxes.

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_kernel.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_kernel.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Mapping, Tuple

from bench_json import record_run

from repro.bdd import _nputil
from repro.bdd.manager import BDDManager
from repro.casestudy import build_covid_tree
from repro.ft.elements import GateType

_TRUE = 0
_FALSE = 1


class DictKernel:
    """The pre-rewrite storage design, reduced to what the arms need.

    Complement-edge ROBDD with the historical table layout: node fields
    in Python lists, the unique table a dict keyed on the
    ``(level, low, high)`` tuple, the apply cache a dict keyed on the
    operand pair, probability memoised in a per-profile dict.  Edge
    encoding matches the real kernel (``index << 1 | complement``,
    single ``1`` terminal at index 0) so results compare 1:1.
    """

    def __init__(self, names) -> None:
        self.names = list(names)
        self.levels = {name: i for i, name in enumerate(self.names)}
        self.level = [2**31]
        self.low = [0]
        self.high = [0]
        self.unique: Dict[Tuple[int, int, int], int] = {}
        self.and_cache: Dict[Tuple[int, int], int] = {}

    def mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        flip = high & 1
        if flip:
            low ^= 1
            high ^= 1
        key = (level, low, high)
        index = self.unique.get(key)
        if index is None:
            index = len(self.level)
            self.level.append(level)
            self.low.append(low)
            self.high.append(high)
            self.unique[key] = index
        return (index << 1) | flip

    def var(self, name: str) -> int:
        return self.mk(self.levels[name], _FALSE, _TRUE)

    def and_(self, u: int, v: int) -> int:
        if u == _TRUE or u == v:
            return v
        if v == _TRUE:
            return u
        if u == _FALSE or v == _FALSE or u == (v ^ 1):
            return _FALSE
        key = (u, v) if u <= v else (v, u)
        cached = self.and_cache.get(key)
        if cached is not None:
            return cached
        ui, vi = u >> 1, v >> 1
        ul, vl = self.level[ui], self.level[vi]
        level = ul if ul <= vl else vl
        uc, vc = u & 1, v & 1
        u0 = (self.low[ui] ^ uc) if ul == level else u
        u1 = (self.high[ui] ^ uc) if ul == level else u
        v0 = (self.low[vi] ^ vc) if vl == level else v
        v1 = (self.high[vi] ^ vc) if vl == level else v
        result = self.mk(level, self.and_(u0, v0), self.and_(u1, v1))
        self.and_cache[key] = result
        return result

    def or_(self, u: int, v: int) -> int:
        return self.and_(u ^ 1, v ^ 1) ^ 1

    def probability(
        self, edge: int, weights: Mapping[int, float], cache: Dict[int, float]
    ) -> float:
        """P[f = 1]; ``weights`` maps level -> weight, ``cache`` is the
        per-profile memo keyed on regular node indices (complement edges
        share entries through ``P(~f) = 1 - P(f)``)."""
        index = edge >> 1
        if index == 0:
            value = 1.0
        else:
            value = cache.get(index)
            if value is None:
                p = weights[self.level[index]]
                value = p * self.probability(
                    self.high[index], weights, cache
                ) + (1.0 - p) * self.probability(
                    self.low[index], weights, cache
                )
                cache[index] = value
        return 1.0 - value if edge & 1 else value


def _covid_structure():
    """The case-study tree flattened to (events, [(gate, op, children)])."""
    tree = build_covid_tree()
    gates = [
        (name, tree.gate_type(name), tree.children(name))
        for name in tree.gate_names
    ]
    return list(tree.basic_events), gates


def build_dict_kernel(events, gates) -> Tuple[DictKernel, Dict[str, int]]:
    kernel = DictKernel(events)
    refs: Dict[str, int] = {name: kernel.var(name) for name in events}
    for name, kind, children in gates:
        acc = _TRUE if kind is GateType.AND else _FALSE
        for child in children:
            if kind is GateType.AND:
                acc = kernel.and_(acc, refs[child])
            else:
                acc = kernel.or_(acc, refs[child])
        refs[name] = acc
    return kernel, refs


def build_array_kernel(events, gates):
    manager = BDDManager()
    manager.declare(*events)
    refs = {name: manager.var(name) for name in events}
    for name, kind, children in gates:
        nodes = [refs[child] for child in children]
        refs[name] = (
            manager.conjoin(nodes)
            if kind is GateType.AND
            else manager.disjoin(nodes)
        )
    return manager, refs


def profiles_for(events, count: int) -> List[Dict[str, float]]:
    """``count`` deterministic full-override profiles (no RNG: the same
    workload on every run and every machine)."""
    return [
        {
            name: ((i * 7 + j * 13) % 23 + 1) / 25.0
            for i, name in enumerate(events)
        }
        for j in range(count)
    ]


def bench_build(events, gates, repeats: int) -> Dict[str, float]:
    """Micro-loop: fresh-kernel construction of every covid element."""
    start = time.perf_counter()
    for _ in range(repeats):
        build_dict_kernel(events, gates)
    dict_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        build_array_kernel(events, gates)
    array_s = time.perf_counter() - start
    return {
        "repeats": repeats,
        "dict_ms": round(dict_s * 1000.0, 3),
        "array_ms": round(array_s * 1000.0, 3),
        "speedup": round(dict_s / array_s, 2) if array_s else float("inf"),
    }


def bench_ite(events, gates, repeats: int) -> Dict[str, float]:
    """Micro-loop: cold-cache pairwise conjunction of the gate BDDs."""
    dict_kernel, dict_refs = build_dict_kernel(events, gates)
    manager, array_refs = build_array_kernel(events, gates)
    gate_names = [name for name, _, _ in gates]
    pairs = [
        (a, b) for i, a in enumerate(gate_names) for b in gate_names[i + 1:]
    ]
    start = time.perf_counter()
    for _ in range(repeats):
        dict_kernel.and_cache.clear()
        for a, b in pairs:
            dict_kernel.and_(dict_refs[a], dict_refs[b])
    dict_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        manager.clear_caches()
        for a, b in pairs:
            manager.and_(array_refs[a], array_refs[b])
    array_s = time.perf_counter() - start
    return {
        "repeats": repeats,
        "pairs": len(pairs),
        "dict_ms": round(dict_s * 1000.0, 3),
        "array_ms": round(array_s * 1000.0, 3),
        "speedup": round(dict_s / array_s, 2) if array_s else float("inf"),
    }


def bench_probability(events, gates, repeats: int) -> Dict[str, float]:
    """Micro-loop: cold-cache single-profile probability of every root."""
    dict_kernel, dict_refs = build_dict_kernel(events, gates)
    manager, array_refs = build_array_kernel(events, gates)
    gate_names = [name for name, _, _ in gates]
    profile = profiles_for(events, 1)[0]
    level_weights = {dict_kernel.levels[k]: v for k, v in profile.items()}
    start = time.perf_counter()
    for _ in range(repeats):
        cache: Dict[int, float] = {}
        for name in gate_names:
            dict_kernel.probability(dict_refs[name], level_weights, cache)
    dict_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        manager.clear_caches()
        for name in gate_names:
            manager.probability(array_refs[name], profile)
    array_s = time.perf_counter() - start
    return {
        "repeats": repeats,
        "dict_ms": round(dict_s * 1000.0, 3),
        "array_ms": round(array_s * 1000.0, 3),
        "speedup": round(dict_s / array_s, 2) if array_s else float("inf"),
    }


def bench_covid_battery(
    events, gates, profiles: List[Dict[str, float]], repeats: int
) -> Dict[str, object]:
    """The gated arm: every covid element under every profile.

    The dict kernel answers the way the old code had to — one memoised
    walk per (profile, root), a fresh cache per profile; the array
    kernel answers with one multi-root :meth:`probability_many` sweep
    (shared nodes evaluated once for the whole battery).
    """
    dict_kernel, dict_refs = build_dict_kernel(events, gates)
    manager, array_refs = build_array_kernel(events, gates)
    gate_names = [name for name, _, _ in gates]

    dict_values: List[List[float]] = []
    start = time.perf_counter()
    for _ in range(repeats):
        dict_values = []
        for profile in profiles:
            level_weights = {
                dict_kernel.levels[k]: v for k, v in profile.items()
            }
            cache: Dict[int, float] = {}
            dict_values.append(
                [
                    dict_kernel.probability(
                        dict_refs[name], level_weights, cache
                    )
                    for name in gate_names
                ]
            )
    dict_s = time.perf_counter() - start

    array_values: List[List[float]] = []
    roots = [array_refs[name] for name in gate_names]
    start = time.perf_counter()
    for _ in range(repeats):
        per_root = manager.probability_many(roots, profiles)
        array_values = [
            [per_root[r][p] for r in range(len(gate_names))]
            for p in range(len(profiles))
        ]
    array_s = time.perf_counter() - start

    worst = max(
        abs(a - b)
        for row_a, row_b in zip(dict_values, array_values)
        for a, b in zip(row_a, row_b)
    )
    assert worst < 1e-9, (
        f"kernels disagree on the covid battery (max delta {worst})"
    )
    return {
        "repeats": repeats,
        "profiles": len(profiles),
        "roots": len(gate_names),
        "dict_ms": round(dict_s * 1000.0, 3),
        "array_ms": round(array_s * 1000.0, 3),
        "speedup": round(dict_s / array_s, 2) if array_s else float("inf"),
        "max_delta": worst,
    }


def threshold_bdd(manager: BDDManager, names, k: int):
    """``>= k of n`` threshold function — the classical O(k * (n - k))
    node count gives the sweep arm a BDD big enough to measure."""
    memo = {}

    def build(i: int, need: int):
        if need <= 0:
            return manager.true
        if len(names) - i < need:
            return manager.false
        key = (i, need)
        node = memo.get(key)
        if node is None:
            node = manager.ite(
                manager.var(names[i]), build(i + 1, need - 1), build(i + 1, need)
            )
            memo[key] = node
        return node

    return build(0, k)


def bench_sweep(profile_count: int, repeats: int) -> Dict[str, object]:
    """The gated arm: one vectorised sweep vs per-profile kernel calls.

    Both arms run on the *array* kernel — this gate prices
    :meth:`probability_many` against the per-profile loop a caller
    would otherwise write, on a threshold BDD sized like a real
    multi-scenario battery.
    """
    names = [f"x{i:02d}" for i in range(72)]
    manager = BDDManager()
    manager.declare(*names)
    root = threshold_bdd(manager, names, 36)
    profiles = profiles_for(names, profile_count)

    start = time.perf_counter()
    per_profile: List[float] = []
    for _ in range(repeats):
        per_profile = [
            manager.probability(root, profile) for profile in profiles
        ]
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    swept: List[float] = []
    for _ in range(repeats):
        swept = manager.probability_many(root, profiles)
    sweep_s = time.perf_counter() - start

    worst = max(abs(a - b) for a, b in zip(per_profile, swept))
    assert worst < 1e-9, (
        f"probability_many disagrees with per-profile calls "
        f"(max delta {worst})"
    )
    return {
        "repeats": repeats,
        "profiles": profile_count,
        "nodes": manager.node_count(),
        "loop_ms": round(loop_s * 1000.0, 3),
        "sweep_ms": round(sweep_s * 1000.0, 3),
        "speedup": round(loop_s / sweep_s, 2) if sweep_s else float("inf"),
        "max_delta": worst,
    }


def main() -> int:
    min_kernel = float(os.environ.get("BENCH_MIN_KERNEL_SPEEDUP", "1"))
    min_sweep = float(os.environ.get("BENCH_MIN_SWEEP_SPEEDUP", "1"))
    profile_count = int(os.environ.get("BENCH_SWEEP_PROFILES", "64"))
    repeats = int(os.environ.get("BENCH_KERNEL_REPEATS", "20"))
    have_numpy = _nputil.np is not None
    gated = have_numpy
    gate_skip_reason = (
        None
        if gated
        else (
            "numpy unavailable (or REPRO_NO_NUMPY set) — agreement "
            "checked, vectorised-path floors not enforced"
        )
    )

    events, gates = _covid_structure()
    profiles = profiles_for(events, profile_count)
    print(
        f"covid structure: {len(events)} events, {len(gates)} gates; "
        f"{profile_count} profiles, {repeats} repeats, "
        f"numpy={'yes' if have_numpy else 'no'}"
    )

    build = bench_build(events, gates, repeats)
    print(
        f"build   : dict {build['dict_ms']:8.1f} ms   "
        f"array {build['array_ms']:8.1f} ms   {build['speedup']:5.2f}x"
    )
    ite = bench_ite(events, gates, repeats)
    print(
        f"conjoin : dict {ite['dict_ms']:8.1f} ms   "
        f"array {ite['array_ms']:8.1f} ms   {ite['speedup']:5.2f}x"
    )
    prob = bench_probability(events, gates, repeats)
    print(
        f"prob    : dict {prob['dict_ms']:8.1f} ms   "
        f"array {prob['array_ms']:8.1f} ms   {prob['speedup']:5.2f}x"
    )
    battery = bench_covid_battery(events, gates, profiles, repeats)
    print(
        f"battery : dict {battery['dict_ms']:8.1f} ms   "
        f"array {battery['array_ms']:8.1f} ms   {battery['speedup']:5.2f}x"
        f"   ({battery['roots']} roots x {battery['profiles']} profiles)"
    )
    sweep = bench_sweep(profile_count, repeats)
    print(
        f"sweep   : loop {sweep['loop_ms']:8.1f} ms   "
        f"many  {sweep['sweep_ms']:8.1f} ms   {sweep['speedup']:5.2f}x"
        f"   ({sweep['nodes']} nodes)"
    )

    path = record_run(
        "kernel",
        {
            "events": len(events),
            "gates": len(gates),
            "profiles": profile_count,
            "repeats": repeats,
            "numpy": have_numpy,
            # Whether the speedup floors were enforced on this run; a
            # false record carries the reason (mirrors BENCH_parallel).
            "gated": gated,
            **(
                {"gate_skip_reason": gate_skip_reason}
                if gate_skip_reason
                else {}
            ),
            "build": build,
            "conjoin": ite,
            "probability": prob,
            "covid_battery": battery,
            "sweep": sweep,
        },
    )
    print(f"\nrecorded -> {path}")

    if not gated:
        print(
            f"NOTE: {gate_skip_reason} (floors were "
            f"{min_kernel:g}x battery, {min_sweep:g}x sweep)."
        )
        return 0
    assert battery["speedup"] >= min_kernel, (
        f"array kernel {battery['speedup']:.2f}x over the dict kernel on "
        f"the covid battery regressed below the {min_kernel:g}x floor"
    )
    assert sweep["speedup"] >= min_sweep, (
        f"probability_many {sweep['speedup']:.2f}x over per-profile calls "
        f"regressed below the {min_sweep:g}x floor"
    )
    print(
        f"OK: covid battery >= {min_kernel:g}x dict kernel and "
        f"sweep >= {min_sweep:g}x per-profile calls."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
