"""Ablation A2 (DESIGN.md): variable-ordering heuristics vs BDD size.

The paper cites Bouissou's RAMS'96 heuristic for building FT BDDs
(Sec. V-A notes size can grow "at worst exponentially, depending on
variable's ordering").  This ablation builds the COVID-19 BDD — and a
larger random tree's BDD — under every heuristic and a random order, and
reports build time; node counts are printed alongside.
"""

import pytest

from repro.bdd import BDDManager, HEURISTICS, random_order, sift
from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, random_tree, tree_to_bdd

_LARGE = random_tree(
    7, RandomTreeConfig(n_basic_events=18, max_children=4, p_share=0.3, max_depth=5)
)

_SIZES = {}


def _build(tree, order):
    manager = BDDManager(order)
    return manager, tree_to_bdd(tree, manager)


@pytest.mark.parametrize("heuristic", sorted(HEURISTICS))
def bench_covid_ordering(benchmark, heuristic):
    tree = build_covid_tree()
    order = HEURISTICS[heuristic](tree, tree.basic_events)

    _, root = benchmark(_build, tree, order)

    _SIZES[("covid", heuristic)] = root.count_nodes()
    print(f"[ordering] covid/{heuristic}: {root.count_nodes()} nodes")


def bench_covid_ordering_random_control(benchmark):
    tree = build_covid_tree()
    order = random_order(tree, tree.basic_events, seed=99)
    _, root = benchmark(_build, tree, order)
    print(f"[ordering] covid/random: {root.count_nodes()} nodes")


@pytest.mark.parametrize("heuristic", sorted(HEURISTICS))
def bench_large_tree_ordering(benchmark, heuristic):
    order = HEURISTICS[heuristic](_LARGE, _LARGE.basic_events)
    _, root = benchmark(_build, _LARGE, order)
    print(f"[ordering] large/{heuristic}: {root.count_nodes()} nodes")


def bench_sifting_search(benchmark):
    """Sifting on the COVID tree starting from the declaration order."""
    tree = build_covid_tree()

    def run():
        return sift(
            lambda order: _build(tree, order), list(tree.basic_events), max_rounds=1
        )

    best_order, best_size = benchmark(run)
    base_size = _build(tree, tree.basic_events)[1].count_nodes()
    print(f"[ordering] covid/sifted: {best_size} nodes (from {base_size})")
    assert best_size <= base_size
