"""Machine-readable benchmark records (``BENCH_*.json``).

Benchmarks that want their numbers tracked across PRs call
:func:`record_run` with a flat-ish dict of measurements.  Records land in
``benchmarks/results/BENCH_<name>.json`` as::

    {
      "benchmark": "<name>",
      "runs": [
        {"label": "pr1-node-kernel", ...},
        {"label": "pr2-complement-kernel", ...}
      ]
    }

One run per *label*: re-running under the same label (``BENCH_LABEL`` env
var, default ``"dev"``) replaces that run in place, so local experiments
don't pile up while the committed per-PR labels form the perf
trajectory.  CI runs under the label ``"ci"``, which is likewise
replaced on every pass and never committed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

#: Where the JSON records live (committed to the repo).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_label(default: str = "dev") -> str:
    """The label for this run (``BENCH_LABEL`` env var)."""
    return os.environ.get("BENCH_LABEL", default)


def record_run(name: str, run: Dict[str, Any], label: str = None) -> Path:
    """Insert (or replace, by label) ``run`` into ``BENCH_<name>.json``.

    Args:
        name: Benchmark name; file is ``BENCH_<name>.json``.
        run: The measurements.  A ``"label"`` key is added/overwritten.
        label: Run label; defaults to :func:`bench_label`.

    Returns:
        The path written.
    """
    label = label if label is not None else bench_label()
    path = RESULTS_DIR / f"BENCH_{name}.json"
    data: Dict[str, Any] = {"benchmark": name, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            loaded = None  # a corrupt file is rebuilt from scratch
        if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
            data = loaded
    runs = [
        r for r in data["runs"] if isinstance(r, dict) and r.get("label") != label
    ]
    runs.append({"label": label, **run})
    data = {"benchmark": name, "runs": runs}
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return path
