"""Consolidated benchmark-gate runner (the single CI perf step).

Every gated benchmark in this repo is a stand-alone script that prints a
report, appends a machine-readable record to
``benchmarks/results/BENCH_*.json``, and exits non-zero when its
regression floor is breached.  This runner replaces the copy-pasted
per-gate CI steps with one declarative table: each :class:`GateSpec`
names the script, the threshold environment its floor defaults to, and
the one env var an operator overrides to tune (or effectively disable,
e.g. ``BENCH_MIN_SPEEDUP=0``) that gate.

Real environment variables always win over the table's defaults, so CI
pins nothing twice and a local run can relax a single gate without
touching this file::

    PYTHONPATH=src python benchmarks/run_gates.py                 # all gates
    PYTHONPATH=src python benchmarks/run_gates.py --only prob,parallel
    BENCH_MIN_SIFT_SPEEDUP=3 PYTHONPATH=src python benchmarks/run_gates.py

Gates run in table order; a failure does not stop later gates (CI
should report every regression of a PR, not the first), and the exit
code is non-zero iff any gate failed.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

HERE = Path(__file__).resolve().parent


def _parallel_env_skip() -> Optional[str]:
    """Reason the parallel speedup floor cannot bind here, if any."""
    workers = int(os.environ.get("BENCH_WORKERS", "4"))
    cores = os.cpu_count() or 1
    if cores < workers:
        return (
            f"only {cores} core(s) for {workers} workers — the script "
            "still runs (agreement enforced) but the speedup floor is "
            "waived"
        )
    return None


def _kernel_sweep_env_skip() -> Optional[str]:
    """Reason the vectorised-sweep floor cannot bind here, if any."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return (
            "REPRO_NO_NUMPY is set — the script still runs (agreement "
            "enforced) but the sweep floor needs the numpy path"
        )
    try:
        import numpy  # noqa: F401
    except ImportError:
        return (
            "numpy unavailable — the script still runs (agreement "
            "enforced) but the sweep floor needs the numpy path"
        )
    return None


def _coverage_env_skip() -> Optional[str]:
    """Reason the coverage floor cannot bind here, if any."""
    try:
        import pytest_cov  # noqa: F401
    except ImportError:
        return "pytest-cov unavailable — the gate skips cleanly"
    return None


@dataclass(frozen=True)
class GateSpec:
    """One gated benchmark.

    Attributes:
        name: Short handle for ``--only``/``--skip`` selection.
        script: Benchmark file under ``benchmarks/``.
        title: One-line description shown in the summary.
        override: The gate's primary tuning env var (documentation —
            the summary prints its effective value).
        defaults: Threshold environment applied unless the variable is
            already set in the real environment.
        env_skip: Optional probe returning *why* this gate's floor
            cannot bind in the current environment (``None`` when it
            can).  Purely informational: the script still runs — every
            gated benchmark downgrades itself consistently (recording
            ``"gated": false``) — but ``--list`` and the run banner
            surface the downgrade instead of leaving a silently green
            gate unexplained.
    """

    name: str
    script: str
    title: str
    override: str
    defaults: Dict[str, str] = field(default_factory=dict)
    env_skip: Optional[Callable[[], Optional[str]]] = None


#: The declarative gate table.  Floors mirror what the historical
#: per-step CI pinned; measured headroom is recorded per gate in
#: ``benchmarks/results/BENCH_*.json`` and EXPERIMENTS.md.
GATES: Tuple[GateSpec, ...] = (
    GateSpec(
        name="batch-service",
        script="bench_batch_service.py",
        title="batch battery >= 2x over fresh sequential checkers",
        override="BENCH_MIN_SPEEDUP",
        defaults={"BENCH_MIN_SPEEDUP": "2"},
    ),
    GateSpec(
        name="scalability",
        script="bench_scalability.py",
        title="scalability sweep (JSON record, small sizes)",
        override="BENCH_SMALL",
        defaults={"BENCH_SMALL": "1"},
    ),
    GateSpec(
        name="reorder-gc",
        script="bench_reorder_gc.py",
        title="in-place sifting >= 5x over rebuild; GC soak reclaims "
        ">= 90% and holds peak < 2x steady state",
        override="BENCH_MIN_SIFT_SPEEDUP",
        defaults={
            "BENCH_MIN_SIFT_SPEEDUP": "5",
            "BENCH_MAX_PEAK_RATIO": "2",
            "BENCH_MIN_RECLAIM": "0.9",
            "BENCH_SOAK_QUERIES": "1000",
        },
    ),
    GateSpec(
        name="prob",
        script="bench_prob.py",
        title="cached in-kernel probability pass >= 5x over the "
        "per-call recursive baseline",
        override="BENCH_MIN_PROB_SPEEDUP",
        defaults={"BENCH_MIN_PROB_SPEEDUP": "5"},
    ),
    GateSpec(
        name="parallel",
        script="bench_parallel.py",
        title="sharded batch >= 2x over sequential at 4 workers "
        "(agreement always enforced)",
        override="BENCH_MIN_PARALLEL_SPEEDUP",
        defaults={
            "BENCH_MIN_PARALLEL_SPEEDUP": "2",
            "BENCH_WORKERS": "4",
        },
        env_skip=_parallel_env_skip,
    ),
    GateSpec(
        name="kernel",
        script="bench_kernel.py",
        title="array kernel >= 2x over the dict kernel on the covid "
        "battery; vectorised sweep >= 5x over per-profile calls",
        override="BENCH_MIN_KERNEL_SPEEDUP",
        defaults={
            "BENCH_MIN_KERNEL_SPEEDUP": "2",
            "BENCH_MIN_SWEEP_SPEEDUP": "5",
            "BENCH_SWEEP_PROFILES": "64",
        },
        env_skip=_kernel_sweep_env_skip,
    ),
    GateSpec(
        name="incremental",
        script="bench_incremental.py",
        title="incremental variant sweep >= 5x over per-variant "
        "rebuild (agreement always enforced)",
        override="BENCH_MIN_INCREMENTAL_SPEEDUP",
        defaults={
            "BENCH_MIN_INCREMENTAL_SPEEDUP": "5",
            "BENCH_VARIANTS": "1000",
            "BENCH_WARDS": "8",
        },
    ),
    GateSpec(
        name="timeout-overhead",
        script="bench_robustness.py",
        title="armed governor (battery deadline + per-query timeout) "
        "costs < 5% on the covid battery",
        override="BENCH_MAX_GOVERNOR_OVERHEAD",
        defaults={
            "BENCH_ROBUSTNESS_ARM": "overhead",
            "BENCH_MAX_GOVERNOR_OVERHEAD": "0.05",
            "BENCH_REPEATS": "5",
        },
    ),
    GateSpec(
        name="chaos",
        script="bench_robustness.py",
        title="chaos battery: killed worker recovered by retry, corrupt "
        "snapshot degraded to cold build, budget trip structured; "
        "non-injected queries agree with fault-free sequential",
        override="BENCH_CHAOS_WORKERS",
        defaults={
            "BENCH_ROBUSTNESS_ARM": "chaos",
            "BENCH_CHAOS_WORKERS": "4",
        },
    ),
    GateSpec(
        name="synthesis",
        script="bench_synthesis.py",
        title="repair-candidate sweep: BDD quantification >= 5x over "
        "vector enumeration (agreement always enforced)",
        override="BENCH_MIN_SYNTH_SPEEDUP",
        defaults={
            "BENCH_MIN_SYNTH_SPEEDUP": "5",
            "BENCH_SYNTH_SETS": "220",
            "BENCH_SYNTH_ENUM_SAMPLE": "20",
        },
    ),
    GateSpec(
        name="server",
        script="bench_server.py",
        title="bfl serve: snapshot-store rewarm >= 10x over cold build "
        "across the real HTTP surface (agreement always enforced)",
        override="BENCH_MIN_WARM_SPEEDUP",
        defaults={"BENCH_MIN_WARM_SPEEDUP": "10"},
    ),
    GateSpec(
        name="docs",
        script="docs_gate.py",
        title="docs drift: dsl.md kinds vs registry, server.md endpoints "
        "vs ROUTES, error_kind taxonomy, README subcommand inventory",
        override="PYTHONPATH",
    ),
    GateSpec(
        name="coverage",
        script="coverage_gate.py",
        title="tier-1 suite line coverage >= 70% of repro "
        "(skips cleanly where pytest-cov is absent)",
        override="COV_MIN_PERCENT",
        defaults={"COV_MIN_PERCENT": "70"},
        env_skip=_coverage_env_skip,
    ),
)


def run_gate(gate: GateSpec) -> Tuple[bool, float]:
    """Run one gate as a subprocess; returns (passed, seconds)."""
    env = dict(os.environ)
    for key, value in gate.defaults.items():
        env.setdefault(key, value)
    start = time.perf_counter()
    result = subprocess.run(
        [sys.executable, str(HERE / gate.script)], env=env
    )
    return result.returncode == 0, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the declarative benchmark-gate table"
    )
    parser.add_argument(
        "--only",
        help="comma-separated gate names to run (default: all)",
    )
    parser.add_argument(
        "--skip",
        help="comma-separated gate names to skip",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the gate table and exit"
    )
    args = parser.parse_args(argv)

    known = {gate.name for gate in GATES}
    only = set(args.only.split(",")) if args.only else None
    skip = set(args.skip.split(",")) if args.skip else set()
    for name in (only or set()) | skip:
        if name not in known:
            parser.error(
                f"unknown gate {name!r} (known: {', '.join(sorted(known))})"
            )

    if args.list:
        for gate in GATES:
            print(f"{gate.name:14s} {gate.script:26s} [{gate.override}] "
                  f"{gate.title}")
            reason = gate.env_skip() if gate.env_skip else None
            if reason:
                print(f"{'':14s} env-skip here: {reason}")
        return 0

    selected = [
        gate
        for gate in GATES
        if (only is None or gate.name in only) and gate.name not in skip
    ]
    outcomes = []
    for gate in selected:
        effective = os.environ.get(
            gate.override, gate.defaults.get(gate.override, "")
        )
        print(f"\n=== gate {gate.name}: {gate.title}")
        print(f"    ({gate.script}, {gate.override}={effective})", flush=True)
        reason = gate.env_skip() if gate.env_skip else None
        if reason:
            print(f"    env-skip here: {reason}", flush=True)
        passed, seconds = run_gate(gate)
        outcomes.append((gate, passed, seconds))
        print(
            f"=== gate {gate.name}: "
            f"{'PASS' if passed else 'FAIL'} in {seconds:.1f}s",
            flush=True,
        )

    print("\n" + "=" * 60)
    print("benchmark gate summary:")
    failed = 0
    for gate, passed, seconds in outcomes:
        marker = "PASS" if passed else "FAIL"
        failed += not passed
        print(f"  {marker}  {gate.name:14s} {seconds:7.1f}s  {gate.title}")
    if failed:
        print(f"{failed} of {len(outcomes)} gates FAILED")
        return 1
    print(f"all {len(outcomes)} gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
