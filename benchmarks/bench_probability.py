"""Ablation A4 (extension): BDD Shannon probability vs 2^n enumeration.

The quantitative extension (repro.prob, the paper's future work #1)
computes P(top) in one linear pass over the BDD; the reference enumerates
all status vectors.  The COVID-19 tree (n = 13) plus a size sweep show the
usual exponential separation, and each run asserts the two agree.
"""

import math

import pytest

from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, random_tree, tree_to_bdd
from repro.prob import bdd_probability, enumeration_probability

UNIFORM = 0.05
ENUM_SIZES = [8, 12, 16]
BDD_SIZES = [8, 12, 16, 24, 32]


def _tree(n):
    return random_tree(
        seed=4321 + n,
        config=RandomTreeConfig(n_basic_events=n, max_children=4, p_share=0.2),
    )


def bench_covid_probability_bdd(benchmark):
    tree = build_covid_tree()
    overrides = {name: UNIFORM for name in tree.basic_events}

    def run():
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        return bdd_probability(manager, root, overrides)

    value = benchmark(run)
    assert math.isclose(
        value,
        enumeration_probability(tree, overrides=overrides),
        rel_tol=1e-9,
    )


def bench_covid_probability_enumeration(benchmark):
    tree = build_covid_tree()
    overrides = {name: UNIFORM for name in tree.basic_events}
    value = benchmark.pedantic(
        lambda: enumeration_probability(tree, overrides=overrides),
        rounds=3,
        iterations=1,
    )
    assert 0.0 < value < 1.0


@pytest.mark.parametrize("n", BDD_SIZES)
def bench_probability_bdd_sweep(benchmark, n):
    tree = _tree(n)
    overrides = {name: UNIFORM for name in tree.basic_events}

    def run():
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        return bdd_probability(manager, root, overrides)

    value = benchmark(run)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("n", ENUM_SIZES)
def bench_probability_enumeration_sweep(benchmark, n):
    tree = _tree(n)
    overrides = {name: UNIFORM for name in tree.basic_events}
    value = benchmark.pedantic(
        lambda: enumeration_probability(tree, overrides=overrides),
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= value <= 1.0
