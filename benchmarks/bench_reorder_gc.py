"""In-place reordering vs rebuild sifting, and the GC batch soak.

Two claims from the PR-3 kernel are gated here:

1. **In-place sifting dominates rebuild sifting.**  The historical
   ``sift`` rebuilt the entire BDD for every candidate position of every
   variable (O(n²) reconstructions); the in-place sifter reaches every
   position with adjacent-level swaps that touch two levels only.  On
   the COVID-19 tree and the ordering-ablation random trees the final
   BDD must be *no larger* and the search ≥``BENCH_MIN_SIFT_SPEEDUP``
   times faster (CI pins 5x; measured ~20-100x).

2. **GC holds the working set flat.**  A 1000-query battery against one
   long-lived :class:`BatchAnalyzer` session accumulates dead
   intermediate BDDs (primed relations, quantifier witnesses).  With
   automatic collection armed, peak live nodes must stay below
   ``BENCH_MAX_PEAK_RATIO`` (default 2x) of the steady-state working
   set, and the collector must reclaim ≥``BENCH_MIN_RECLAIM`` (default
   90%) of all dead nodes produced.

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_reorder_gc.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_reorder_gc.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import itertools
import os
import time

from bench_json import record_run

from repro.bdd import BDDManager, sift_rebuild
from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, random_tree, tree_to_bdd
from repro.service import BatchAnalyzer

#: Random-tree arms mirroring bench_ordering_ablation's generator.
RANDOM_TREE_SEEDS = (3, 5, 7, 11)
RANDOM_TREE_CONFIG = RandomTreeConfig(
    n_basic_events=14, max_children=4, p_share=0.3, max_depth=5
)
LARGE_TREE_CONFIG = RandomTreeConfig(
    n_basic_events=18, max_children=4, p_share=0.3, max_depth=5
)


def _builder_for(tree):
    def builder(order):
        manager = BDDManager(order)
        return manager, tree_to_bdd(tree, manager)

    return builder


def compare_sift(tree, label: str, rounds: int = 2) -> dict:
    """Rebuild sifting vs in-place sifting from the same start order."""
    builder = _builder_for(tree)
    order = list(tree.basic_events)

    start = time.perf_counter()
    _, rebuild_size = sift_rebuild(builder, order, max_rounds=rounds)
    rebuild_s = time.perf_counter() - start

    manager, root = builder(order)
    base_size = root.count_nodes()
    start = time.perf_counter()
    manager.sift_inplace(max_rounds=rounds)
    inplace_s = time.perf_counter() - start
    inplace_size = root.count_nodes()
    manager.check_invariants()

    return {
        "label": label,
        "variables": len(order),
        "base_size": base_size,
        "rebuild_size": rebuild_size,
        "inplace_size": inplace_size,
        "rebuild_ms": round(rebuild_s * 1000.0, 3),
        "inplace_ms": round(inplace_s * 1000.0, 3),
        "speedup": round(rebuild_s / inplace_s, 2) if inplace_s else float("inf"),
        "swaps": manager.cache_stats()["swaps"],
    }


def soak_battery(tree, count: int) -> list:
    """``count`` distinct layer-2 queries over shared MCS/MPS structure."""
    elements = list(tree.basic_events) + [
        "IWoS", "MoT", "SH", "CIW", "CP/R", "IS",
    ]
    human_errors = ["H1", "H2", "H3", "H4", "H5"]
    queries = []
    for a, b in itertools.product(elements, human_errors):
        queries.append(f"exists (MCS({a}) & {b})")
        queries.append(f"forall (MCS({a}) => {b})")
        queries.append(f"exists (MPS({a}) & !{b})")
        queries.append(f"exists ({a} & !{b})")
        queries.append(f"forall ((MCS({a}) & {b}) => MoT)")
        queries.append(f"exists (MPS({a}) & {b} & !UT)")
    for a, (b, c) in itertools.product(
        elements, itertools.combinations(human_errors, 2)
    ):
        queries.append(f"exists (MCS({a}) & {b} & !{c})")
        queries.append(f"forall ((MPS({a}) & {b}) => !{c})")
        queries.append(f"exists (MPS({a}) & {b} & {c})")
    if len(queries) < count:
        raise AssertionError(
            f"soak generator produced only {len(queries)} queries"
        )
    return queries[:count]


def run_soak(tree, queries, gc_on: bool) -> dict:
    """One long-lived BatchAnalyzer session over the whole battery."""
    analyzer = BatchAnalyzer(tree, auto_gc=gc_on, gc_trigger=256 if gc_on else None)
    manager = analyzer.session().checker.manager
    if gc_on:
        # 1.5x headroom after each collection keeps the peak comfortably
        # under the 2x-of-steady-state acceptance ceiling.
        manager.configure_memory(gc_growth=1.5)
    start = time.perf_counter()
    report = analyzer.run(queries)
    wall_s = time.perf_counter() - start
    stats = manager.cache_stats()
    result = {
        "gc": gc_on,
        "queries": len(queries),
        "errors": sum(1 for r in report.results if not r.ok),
        "wall_ms": round(wall_s * 1000.0, 3),
        "peak_live_nodes": stats["peak_live_nodes"],
        "live_nodes": stats["live_nodes"],
        "gc_runs": stats["gc_runs"],
        "reclaimed": stats["reclaimed"],
        "dead_at_end": stats["dead_nodes"],
        "answers": [r.holds for r in report.results],
    }
    if gc_on:
        # Steady-state working set: what one final collection leaves —
        # the session's truly live BDDs (Algorithm 1 caches and all).
        final_reclaim = manager.collect()
        result["final_reclaim"] = final_reclaim
        result["steady_state"] = manager.node_count()
        # live_nodes must now equal the reachable count *exactly*.
        assert manager.node_count() == manager.reachable_node_count()
        manager.check_invariants()
        total_dead = stats["reclaimed"] + final_reclaim
        result["reclaim_ratio"] = (
            round(stats["reclaimed"] / total_dead, 4) if total_dead else 1.0
        )
        result["peak_ratio"] = round(
            stats["peak_live_nodes"] / result["steady_state"], 3
        )
    return result


# ----------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the sibling files)
# ----------------------------------------------------------------------


def bench_sift_rebuild_covid(benchmark):
    tree = build_covid_tree()
    builder = _builder_for(tree)
    _, size = benchmark(
        sift_rebuild, builder, list(tree.basic_events), 1
    )
    assert size > 0


def bench_sift_inplace_covid(benchmark):
    tree = build_covid_tree()

    def run():
        manager, root = _builder_for(tree)(list(tree.basic_events))
        manager.sift_inplace(max_rounds=1)
        return root.count_nodes()

    size = benchmark(run)
    assert size > 0


# ----------------------------------------------------------------------
# Stand-alone gated report
# ----------------------------------------------------------------------


def main() -> int:
    min_speedup = float(os.environ.get("BENCH_MIN_SIFT_SPEEDUP", "1"))
    max_peak_ratio = float(os.environ.get("BENCH_MAX_PEAK_RATIO", "2"))
    min_reclaim = float(os.environ.get("BENCH_MIN_RECLAIM", "0.9"))
    soak_queries = int(os.environ.get("BENCH_SOAK_QUERIES", "1000"))

    covid = build_covid_tree()
    arms = [compare_sift(covid, "covid")]
    for seed in RANDOM_TREE_SEEDS:
        arms.append(
            compare_sift(
                random_tree(seed, RANDOM_TREE_CONFIG), f"random-{seed}"
            )
        )
    arms.append(
        compare_sift(random_tree(7, LARGE_TREE_CONFIG), "random-large")
    )

    print("in-place sifting vs rebuild sifting (same start order):")
    for arm in arms:
        print(
            f"  {arm['label']:>13}: {arm['base_size']:4d} -> "
            f"rebuild {arm['rebuild_size']:4d} in {arm['rebuild_ms']:8.1f} ms | "
            f"in-place {arm['inplace_size']:4d} in {arm['inplace_ms']:7.1f} ms "
            f"({arm['speedup']:6.1f}x, {arm['swaps']} swaps)"
        )
        assert arm["inplace_size"] <= arm["rebuild_size"], (
            f"{arm['label']}: in-place sifting ended with a larger BDD "
            f"({arm['inplace_size']} > {arm['rebuild_size']})"
        )

    total_rebuild = sum(a["rebuild_ms"] for a in arms)
    total_inplace = sum(a["inplace_ms"] for a in arms)
    overall = total_rebuild / total_inplace
    covid_speedup = arms[0]["speedup"]
    print(
        f"  overall: {total_rebuild:.1f} ms -> {total_inplace:.1f} ms "
        f"({overall:.1f}x; covid {covid_speedup:.1f}x)"
    )

    queries = soak_battery(covid, soak_queries)
    managed = run_soak(covid, queries, gc_on=True)
    unmanaged = run_soak(covid, queries, gc_on=False)
    assert managed["answers"] == unmanaged["answers"], (
        "GC must not change any query answer"
    )
    assert managed["errors"] == 0, f"{managed['errors']} soak queries errored"
    for arm_result in (managed, unmanaged):
        arm_result.pop("answers")

    print(f"\n{len(queries)}-query batch soak (one long-lived session):")
    print(
        f"  GC off: peak {unmanaged['peak_live_nodes']} live nodes "
        f"(never reclaims), {unmanaged['wall_ms']:.0f} ms"
    )
    print(
        f"  GC on:  peak {managed['peak_live_nodes']}, steady state "
        f"{managed['steady_state']}, peak/steady {managed['peak_ratio']}x, "
        f"{managed['gc_runs']} collections reclaiming {managed['reclaimed']} "
        f"nodes, {managed['wall_ms']:.0f} ms"
    )

    path = record_run(
        "reorder_gc",
        {
            "sift": arms,
            "sift_overall_speedup": round(overall, 2),
            "soak_gc_on": managed,
            "soak_gc_off": unmanaged,
        },
    )
    print(f"\nrecorded -> {path}")

    assert covid_speedup >= min_speedup, (
        f"in-place sifting speedup on the COVID tree {covid_speedup:.1f}x "
        f"regressed below the {min_speedup:g}x floor"
    )
    assert managed["peak_ratio"] <= max_peak_ratio, (
        f"soak peak live nodes reached {managed['peak_ratio']}x the steady "
        f"state (ceiling {max_peak_ratio}x)"
    )
    assert managed["reclaim_ratio"] >= min_reclaim, (
        f"GC reclaimed only {managed['reclaim_ratio']:.0%} of dead nodes "
        f"(floor {min_reclaim:.0%})"
    )
    print(
        f"OK: in-place sifting >= {min_speedup:g}x, soak peak <= "
        f"{max_peak_ratio:g}x steady state, reclaim >= {min_reclaim:.0%}."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
