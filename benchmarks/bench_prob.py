"""The PFL engine's hot path: cached in-kernel weighted evaluation vs
the per-call recursive baseline.

The quantitative layer predating the PFL engine walked the BDD with a
fresh Python recursion (and a fresh cache) per query; the kernel pass
values each *regular node index* once in a manager-level cache that
repeated queries — the batch-service and importance-table hot paths —
simply reuse.  This benchmark replays that workload: a repeated-query
battery of ``P(top)`` plus both restrictions ``P(top | e := v)`` for
every basic event, over several rounds, with the query BDDs built once
so both arms measure evaluation only.

Gated in CI: the cached in-kernel pass must beat the recursive baseline
by ``BENCH_MIN_PROB_SPEEDUP`` (CI pins 5x) on the repeated covid
battery, and both arms must agree on every value.  A third arm pins the
BDD pass against brute-force ``2^n`` enumeration (the ablation the
retired ``bench_probability.py`` ran — its unique content lives here
now): one linear BDD sweep vs exponentially many vectors, values
asserted equal.

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_prob.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_prob.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import math
import os
import time

try:  # only the pytest-benchmark sweep entry points need it
    import pytest
except ImportError:  # pragma: no cover - standalone gate run without pytest
    class _NoPytest:
        class mark:
            @staticmethod
            def parametrize(_names, values):
                return lambda fn: fn

    pytest = _NoPytest()

from bench_json import record_run

from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, random_tree, tree_to_bdd
from repro.prob import (
    bdd_probability,
    enumeration_probability,
    recursive_probability,
)
from repro.service import BatchAnalyzer

UNIFORM = 0.05
ROUNDS = 20
LARGE_TREE_CONFIG = RandomTreeConfig(
    n_basic_events=24, max_children=4, p_share=0.2
)
#: Sweep sizes for the BDD-vs-enumeration ablation (enumeration is
#: capped where 2^n stops being fun).
ENUM_SIZES = [8, 12, 16]
BDD_SIZES = [8, 12, 16, 24, 32]


def _sweep_tree(n):
    return random_tree(
        seed=4321 + n,
        config=RandomTreeConfig(n_basic_events=n, max_children=4, p_share=0.2),
    )


def _build(tree):
    manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager)
    weights = {name: UNIFORM for name in tree.basic_events}
    # The importance-style battery: the top plus both restrictions per
    # event, repeated ROUNDS times.  Queries are BDDs built up front so
    # the arms time *evaluation*, not restriction.
    battery = [root]
    for name in tree.basic_events:
        battery.append(manager.restrict(root, name, True))
        battery.append(manager.restrict(root, name, False))
    queries = battery * ROUNDS
    return manager, queries, weights


def _time_arm(fn, manager, queries, weights):
    start = time.perf_counter()
    values = [fn(manager, query, weights) for query in queries]
    return (time.perf_counter() - start) * 1000.0, values


def compare_engines(tree, label: str) -> dict:
    """Cached kernel pass vs per-call recursion on the same battery."""
    manager, queries, weights = _build(tree)
    recursive_ms, reference = _time_arm(
        recursive_probability, manager, queries, weights
    )
    kernel_ms, values = _time_arm(
        lambda m, q, w: m.probability(q, w), manager, queries, weights
    )
    for got, expected in zip(values, reference):
        assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-12), (
            f"{label}: kernel pass disagrees with the recursive baseline "
            f"({got} != {expected})"
        )
    stats = manager.cache_stats()
    return {
        "label": label,
        "events": len(tree.basic_events),
        "bdd_nodes": manager.node_count(),
        "queries": len(queries),
        "recursive_ms": round(recursive_ms, 3),
        "kernel_ms": round(kernel_ms, 3),
        "speedup": (
            round(recursive_ms / kernel_ms, 2) if kernel_ms else float("inf")
        ),
        "prob_cache_size": stats["prob_cache_size"],
        "prob_hits": stats["prob_hits"],
        "prob_misses": stats["prob_misses"],
    }


def pfl_batch(tree, rounds: int = 5) -> dict:
    """A PFL battery through the batch service (end-to-end sanity arm)."""
    analyzer = BatchAnalyzer(tree, uniform=UNIFORM, auto_gc=True)
    elements = ["MoT", "IWoS", "SH", "CIW", "IS"]
    queries = []
    for _ in range(rounds):
        for element in elements:
            queries.append(f"P({element}) >= 0")
            queries.append(f"P(MCS({element}) | H1) >= 0")
            queries.append(f"P({element})[H1 := 0.5] >= 0")
    start = time.perf_counter()
    report = analyzer.run(queries)
    wall_ms = (time.perf_counter() - start) * 1000.0
    assert report.ok, "PFL batch arm errored"
    scenario = report.stats["scenarios"]["default"]
    return {
        "queries": len(queries),
        "wall_ms": round(wall_ms, 3),
        "per_query_ms": round(wall_ms / len(queries), 4),
        "prob_cache": scenario["memory"]["prob_cache"],
        "prob_hits": scenario["bdd"]["prob_hits"],
        "prob_misses": scenario["bdd"]["prob_misses"],
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the sibling files)
# ----------------------------------------------------------------------


def bench_prob_kernel_battery_covid(benchmark):
    manager, queries, weights = _build(build_covid_tree())

    def run():
        return sum(manager.probability(query, weights) for query in queries)

    total = benchmark(run)
    assert total > 0


def bench_prob_recursive_battery_covid(benchmark):
    manager, queries, weights = _build(build_covid_tree())

    def run():
        return sum(
            recursive_probability(manager, query, weights)
            for query in queries
        )

    total = benchmark(run)
    assert total > 0


# ----------------------------------------------------------------------
# Ablation A4: BDD Shannon probability vs 2^n enumeration (absorbed
# from the retired bench_probability.py)
# ----------------------------------------------------------------------


def bench_covid_probability_bdd(benchmark):
    tree = build_covid_tree()
    overrides = {name: UNIFORM for name in tree.basic_events}

    def run():
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        return bdd_probability(manager, root, overrides)

    value = benchmark(run)
    assert math.isclose(
        value,
        enumeration_probability(tree, overrides=overrides),
        rel_tol=1e-9,
    )


def bench_covid_probability_enumeration(benchmark):
    tree = build_covid_tree()
    overrides = {name: UNIFORM for name in tree.basic_events}
    value = benchmark.pedantic(
        lambda: enumeration_probability(tree, overrides=overrides),
        rounds=3,
        iterations=1,
    )
    assert 0.0 < value < 1.0


@pytest.mark.parametrize("n", BDD_SIZES)
def bench_probability_bdd_sweep(benchmark, n):
    tree = _sweep_tree(n)
    overrides = {name: UNIFORM for name in tree.basic_events}

    def run():
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        return bdd_probability(manager, root, overrides)

    value = benchmark(run)
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("n", ENUM_SIZES)
def bench_probability_enumeration_sweep(benchmark, n):
    tree = _sweep_tree(n)
    overrides = {name: UNIFORM for name in tree.basic_events}
    value = benchmark.pedantic(
        lambda: enumeration_probability(tree, overrides=overrides),
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Stand-alone gated report
# ----------------------------------------------------------------------


def main() -> int:
    min_speedup = float(os.environ.get("BENCH_MIN_PROB_SPEEDUP", "1"))

    covid = build_covid_tree()
    arms = [
        compare_engines(covid, "covid"),
        compare_engines(
            random_tree(11, LARGE_TREE_CONFIG), "random-24"
        ),
    ]
    print("cached in-kernel weighted pass vs per-call recursion:")
    for arm in arms:
        print(
            f"  {arm['label']:>10}: {arm['queries']} queries over "
            f"{arm['bdd_nodes']:4d}-node BDDs | recursive "
            f"{arm['recursive_ms']:8.1f} ms -> kernel "
            f"{arm['kernel_ms']:7.1f} ms ({arm['speedup']:6.1f}x; "
            f"{arm['prob_misses']} nodes valued, {arm['prob_hits']} hits)"
        )

    batch = pfl_batch(covid)
    print(
        f"\nPFL batch arm: {batch['queries']} queries in "
        f"{batch['wall_ms']:.1f} ms ({batch['per_query_ms']:.3f} ms/query, "
        f"{batch['prob_hits']} cache hits)"
    )

    # Ablation arm (ex-bench_probability.py): the linear BDD sweep vs
    # brute-force enumeration over all 2^13 covid vectors, values equal.
    overrides = {name: UNIFORM for name in covid.basic_events}
    manager = BDDManager(covid.basic_events)
    root = tree_to_bdd(covid, manager)
    start = time.perf_counter()
    enum_value = enumeration_probability(covid, overrides=overrides)
    enum_ms = (time.perf_counter() - start) * 1000.0
    start = time.perf_counter()
    bdd_value = bdd_probability(manager, root, overrides)
    bdd_ms = (time.perf_counter() - start) * 1000.0
    assert math.isclose(bdd_value, enum_value, rel_tol=1e-9), (
        f"BDD pass disagrees with enumeration ({bdd_value} != {enum_value})"
    )
    enumeration = {
        "events": len(covid.basic_events),
        "enumeration_ms": round(enum_ms, 3),
        "bdd_ms": round(bdd_ms, 3),
        "value": bdd_value,
    }
    print(
        f"enumeration ablation: 2^{enumeration['events']} vectors in "
        f"{enum_ms:.1f} ms vs one BDD sweep in {bdd_ms:.3f} ms "
        f"(agree at P = {bdd_value:.6g})"
    )

    covid_speedup = arms[0]["speedup"]
    path = record_run(
        "prob",
        {
            "engines": arms,
            "covid_speedup": covid_speedup,
            "pfl_batch": batch,
            "enumeration": enumeration,
        },
    )
    print(f"\nrecorded -> {path}")

    assert covid_speedup >= min_speedup, (
        f"cached kernel pass speedup on the covid battery "
        f"{covid_speedup:.1f}x regressed below the {min_speedup:g}x floor"
    )
    print(f"OK: cached in-kernel pass >= {min_speedup:g}x recursive baseline.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
