"""Batch service amortisation: one shared BDD session vs fresh checkers.

The battery below asks 24 layer-2 questions about the COVID-19 tree
(Fig. 2).  They deliberately share expensive subformulas — ``MCS(IWoS)``,
``MCS(MoT)`` and ``MPS(IWoS)`` each appear in several queries — which is
exactly the workload shape of the paper's Sec. VII analysis.  The
sequential baseline answers each question with a *fresh*
:class:`ModelChecker` (every query pays full Algorithm-1 translation);
the :class:`BatchAnalyzer` parses the battery up front, translates each
distinct subformula once into one shared manager, and only then
evaluates.

Run directly for a self-checking amortisation report::

    PYTHONPATH=src python benchmarks/bench_batch_service.py

or through pytest-benchmark like the sibling benchmarks.
"""

from __future__ import annotations

import time

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.service import BatchAnalyzer

HUMAN_ERRORS = ("H1", "H2", "H3", "H4", "H5")


def battery() -> list:
    """24 check queries with heavily shared MCS/MPS subformulas."""
    formulas = []
    for h in HUMAN_ERRORS:
        formulas.append(f"exists (MCS(IWoS) & {h})")
        formulas.append(f"forall (MCS(IWoS) => {h})")
        formulas.append(f"exists (MCS(MoT) & {h})")
        formulas.append(f"exists (MPS(IWoS) & !{h})")
    formulas += [
        "forall (IS => MoT)",
        "exists MCS(CP/R)",
        "forall (MCS(SH) => (VW & H1))",
        "exists (MPS(MoT) & !UT)",
        # VOT goes through the manager's ternary ITE apply.
        "exists (MCS(IWoS) & VOT(>= 3; H1, H2, H3, H4, H5))",
        "forall (VOT(>= 4; H1, H2, H3, H4, H5) => MCS(IWoS))",
    ]
    assert len(formulas) >= 20
    return formulas


def run_sequential(tree, formulas) -> list:
    """The pre-service workflow: a fresh checker (fresh BDD manager,
    cold Algorithm-1 cache) for every single query."""
    return [ModelChecker(tree).check(formula) for formula in formulas]


def run_batch(tree, formulas):
    analyzer = BatchAnalyzer(tree)
    return analyzer.run(formulas)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the sibling files)
# ----------------------------------------------------------------------


def bench_battery_sequential_fresh_checkers(benchmark):
    tree = build_covid_tree()
    formulas = battery()
    answers = benchmark(run_sequential, tree, formulas)
    assert answers[0] is True  # exists (MCS(IWoS) & H1)


def bench_battery_batch_service(benchmark):
    tree = build_covid_tree()
    formulas = battery()
    report = benchmark(run_batch, tree, formulas)
    assert report.ok
    assert [r.holds for r in report.results] == run_sequential(tree, formulas)


# ----------------------------------------------------------------------
# Stand-alone amortisation report
# ----------------------------------------------------------------------


def main() -> int:
    tree = build_covid_tree()
    formulas = battery()

    start = time.perf_counter()
    sequential_answers = run_sequential(tree, formulas)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    report = run_batch(tree, formulas)
    batch_s = time.perf_counter() - start

    batch_answers = [result.holds for result in report.results]
    assert batch_answers == sequential_answers, "batch must match sequential"

    scenario = report.stats["scenarios"]["default"]
    translation = scenario["translation"]
    bdd = scenario["bdd"]
    queries = report.stats["queries"]

    print(f"battery size:              {len(formulas)} formulas")
    print(f"sequential (fresh checkers): {sequential_s * 1000:8.1f} ms")
    print(f"batch service (shared BDDs): {batch_s * 1000:8.1f} ms")
    print(f"speedup:                     {sequential_s / batch_s:8.1f}x")
    print()
    print("cache statistics (batch run):")
    print(
        f"  translation cache:   {translation['formula_hits']} hits / "
        f"{translation['formula_misses']} misses"
    )
    print(
        f"  structural dedup:    {queries['structural_dedup']} of "
        f"{queries['statements']} statements shared"
    )
    print(
        f"  BDD op caches:       {bdd['hits']} hits / {bdd['misses']} misses "
        f"(apply {bdd['apply_hits']}/{bdd['apply_misses']}, "
        f"ite {bdd['ite_hits']}/{bdd['ite_misses']}, "
        f"negate {bdd['negate_hits']}/{bdd['negate_misses']})"
    )
    print(f"  BDD nodes:           {scenario['bdd_nodes']}")

    assert batch_s < sequential_s, (
        f"BatchAnalyzer ({batch_s:.3f}s) should beat fresh sequential "
        f"checkers ({sequential_s:.3f}s)"
    )
    print("\nOK: batch service beats sequential fresh checkers.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
