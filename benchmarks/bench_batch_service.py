"""Batch service amortisation: one shared BDD session vs fresh checkers.

The battery below asks 24 layer-2 questions about the COVID-19 tree
(Fig. 2).  They deliberately share expensive subformulas — ``MCS(IWoS)``,
``MCS(MoT)`` and ``MPS(IWoS)`` each appear in several queries — which is
exactly the workload shape of the paper's Sec. VII analysis.  The
sequential baseline answers each question with a *fresh*
:class:`ModelChecker` (every query pays full Algorithm-1 translation);
the :class:`BatchAnalyzer` parses the battery up front, translates each
distinct subformula once into one shared manager, and only then
evaluates.

Run directly for a self-checking amortisation report::

    PYTHONPATH=src python benchmarks/bench_batch_service.py

or through pytest-benchmark like the sibling benchmarks.  Direct runs
also append a machine-readable record (wall times, node counts, cache
hit ratios, O(1)-negation counts) to
``benchmarks/results/BENCH_batch_service.json`` keyed by ``BENCH_LABEL``
so the perf trajectory is tracked across PRs; set ``BENCH_MIN_SPEEDUP``
(CI uses 2) to fail the run when batch amortisation regresses.
"""

from __future__ import annotations

import os
import time

from bench_json import record_run

from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.ft.to_bdd import tree_to_bdd
from repro.service import BatchAnalyzer

HUMAN_ERRORS = ("H1", "H2", "H3", "H4", "H5")


def battery() -> list:
    """24 check queries with heavily shared MCS/MPS subformulas."""
    formulas = []
    for h in HUMAN_ERRORS:
        formulas.append(f"exists (MCS(IWoS) & {h})")
        formulas.append(f"forall (MCS(IWoS) => {h})")
        formulas.append(f"exists (MCS(MoT) & {h})")
        formulas.append(f"exists (MPS(IWoS) & !{h})")
    formulas += [
        "forall (IS => MoT)",
        "exists MCS(CP/R)",
        "forall (MCS(SH) => (VW & H1))",
        "exists (MPS(MoT) & !UT)",
        # VOT goes through the manager's ternary ITE apply.
        "exists (MCS(IWoS) & VOT(>= 3; H1, H2, H3, H4, H5))",
        "forall (VOT(>= 4; H1, H2, H3, H4, H5) => MCS(IWoS))",
    ]
    assert len(formulas) >= 20
    return formulas


def run_sequential(tree, formulas) -> list:
    """The pre-service workflow: a fresh checker (fresh BDD manager,
    cold Algorithm-1 cache) for every single query."""
    return [ModelChecker(tree).check(formula) for formula in formulas]


def run_batch(tree, formulas):
    analyzer = BatchAnalyzer(tree)
    return analyzer.run(formulas)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (same harness as the sibling files)
# ----------------------------------------------------------------------


def bench_battery_sequential_fresh_checkers(benchmark):
    tree = build_covid_tree()
    formulas = battery()
    answers = benchmark(run_sequential, tree, formulas)
    assert answers[0] is True  # exists (MCS(IWoS) & H1)


def bench_battery_batch_service(benchmark):
    tree = build_covid_tree()
    formulas = battery()
    report = benchmark(run_batch, tree, formulas)
    assert report.ok
    assert [r.holds for r in report.results] == run_sequential(tree, formulas)


# ----------------------------------------------------------------------
# Negation-heavy microbenchmark (the complement-edge kernel's best case)
# ----------------------------------------------------------------------


def run_negation_heavy(tree, rounds: int = 1) -> dict:
    """Negate many *distinct* functions (cofactors of the top event).

    Only the negations are timed — the target functions (restrictions
    and their conjunctions with the root) are built beforehand.  The
    pre-refactor pointer kernel rebuilt each negated DAG (O(n) time,
    ~2x live nodes); the complement-edge kernel flips one bit per call.
    """
    manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager)
    targets = [root]
    for name in tree.basic_events:
        for value in (False, True):
            restricted = manager.restrict(root, name, value)
            targets.append(restricted)
            targets.append(manager.and_(restricted, root))
    nodes_before = manager.node_count()
    start = time.perf_counter()
    for _ in range(rounds):
        for target in targets:
            manager.negate(target)
    wall_s = time.perf_counter() - start
    return {
        "negations": rounds * len(targets),
        "wall_ms": round(wall_s * 1000.0, 4),
        "nodes_before": nodes_before,
        "nodes_after": manager.node_count(),
    }


# ----------------------------------------------------------------------
# Stand-alone amortisation report
# ----------------------------------------------------------------------


def main() -> int:
    tree = build_covid_tree()
    formulas = battery()

    start = time.perf_counter()
    sequential_answers = run_sequential(tree, formulas)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    report = run_batch(tree, formulas)
    batch_s = time.perf_counter() - start

    batch_answers = [result.holds for result in report.results]
    assert batch_answers == sequential_answers, "batch must match sequential"

    scenario = report.stats["scenarios"]["default"]
    translation = scenario["translation"]
    bdd = scenario["bdd"]
    queries = report.stats["queries"]
    speedup = sequential_s / batch_s
    negation = run_negation_heavy(tree)

    print(f"battery size:              {len(formulas)} formulas")
    print(f"sequential (fresh checkers): {sequential_s * 1000:8.1f} ms")
    print(f"batch service (shared BDDs): {batch_s * 1000:8.1f} ms")
    print(f"speedup:                     {speedup:8.1f}x")
    print()
    print("cache statistics (batch run):")
    print(
        f"  translation cache:   {translation['formula_hits']} hits / "
        f"{translation['formula_misses']} misses"
    )
    print(
        f"  structural dedup:    {queries['structural_dedup']} of "
        f"{queries['statements']} statements shared"
    )
    print(
        f"  BDD op caches:       {bdd['hits']} hits / {bdd['misses']} misses "
        f"(apply {bdd['apply_hits']}/{bdd['apply_misses']}, "
        f"ite {bdd['ite_hits']}/{bdd['ite_misses']}, "
        f"free negations {bdd['negations']})"
    )
    print(
        f"  BDD nodes:           {scenario['bdd_nodes']} live / "
        f"{scenario['bdd_peak_nodes']} peak "
        f"(unique table {scenario['bdd_unique_table']})"
    )
    print(
        f"  negation-heavy:      {negation['negations']} distinct negations "
        f"in {negation['wall_ms']} ms, nodes {negation['nodes_before']} -> "
        f"{negation['nodes_after']}"
    )

    total = bdd["hits"] + bdd["misses"]
    path = record_run(
        "batch_service",
        {
            "battery_size": len(formulas),
            "sequential_ms": round(sequential_s * 1000.0, 3),
            "batch_ms": round(batch_s * 1000.0, 3),
            "speedup": round(speedup, 2),
            "bdd_nodes": scenario["bdd_nodes"],
            "bdd_peak_nodes": scenario["bdd_peak_nodes"],
            "bdd_unique_table": scenario["bdd_unique_table"],
            "cache_hits": bdd["hits"],
            "cache_misses": bdd["misses"],
            "cache_hit_ratio": round(bdd["hits"] / total, 4) if total else 0.0,
            "negations": bdd["negations"],
            "negation_heavy": negation,
        },
    )
    print(f"\nrecorded -> {path}")

    min_speedup = float(os.environ.get("BENCH_MIN_SPEEDUP", "1"))
    assert speedup >= min_speedup, (
        f"BatchAnalyzer speedup {speedup:.2f}x regressed below the "
        f"{min_speedup:.1f}x floor over fresh sequential checkers"
    )
    print(f"OK: batch service beats sequential fresh checkers (>= {min_speedup:g}x).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
