"""Ablation A1 (DESIGN.md): BDD model checking vs enumerative reference.

The paper argues for BDDs because "fts are essentially Boolean functions
and bdds provide compact representations".  This sweep quantifies the
claim on random trees of growing size: the reference semantics enumerates
all 2^n vectors, the BDD checker does not.  Expected shape: comparable at
tiny n, BDD wins by orders of magnitude from n ~ 14 on (the enumeration
arm is capped at n = 14 to keep the harness fast).

Run directly (``PYTHONPATH=src python benchmarks/bench_scalability.py``)
for a machine-readable sweep: per-size wall time, live/peak node counts
and cache hit ratios land in
``benchmarks/results/BENCH_scalability.json`` keyed by ``BENCH_LABEL``,
so kernel changes leave a perf trail across PRs.  Set ``BENCH_SMALL=1``
(CI does) to cap the sweep for smoke runs.
"""

import os
import time

import pytest

from bench_json import record_run

from repro.ft import RandomTreeConfig, random_tree
from repro.logic import MCS, Atom, ReferenceSemantics
from repro.checker import FormulaTranslator, satisfying_cubes

BDD_SIZES = [6, 10, 14, 18, 22, 30]
ENUM_SIZES = [6, 8, 10, 12]
AGREEMENT_SIZES = [6, 8, 10]


def _tree(n):
    return random_tree(
        seed=1234 + n,
        config=RandomTreeConfig(
            n_basic_events=n, max_children=4, p_vot=0.1, p_share=0.2, max_depth=5
        ),
    )


@pytest.mark.parametrize("n", BDD_SIZES)
def bench_mcs_bdd(benchmark, n):
    tree = _tree(n)
    formula = MCS(Atom(tree.top))

    def run():
        translator = FormulaTranslator(tree)
        return satisfying_cubes(translator, formula)

    cubes = benchmark(run)
    assert cubes  # every tree has at least one minimal cut set


@pytest.mark.parametrize("n", ENUM_SIZES)
def bench_mcs_enumeration(benchmark, n):
    tree = _tree(n)
    formula = MCS(Atom(tree.top))

    def run():
        return ReferenceSemantics(tree).satisfying_vectors(formula)

    # The reference arm is exponential (that is the point of the sweep);
    # pin the round count so large n stays tractable in one harness run.
    vectors = benchmark.pedantic(run, rounds=2, iterations=1)
    assert vectors


@pytest.mark.parametrize("n", AGREEMENT_SIZES)
def bench_agreement_check(benchmark, n):
    """Sanity arm: both implementations agree while the sweep runs."""
    tree = _tree(n)
    formula = MCS(Atom(tree.top))

    def run():
        from repro.checker import satisfying_vectors

        translator = FormulaTranslator(tree)
        bdd_sets = {
            tuple(sorted(vec.items()))
            for vec in satisfying_vectors(translator, formula)
        }
        ref = ReferenceSemantics(tree)
        ref_sets = {
            tuple(sorted(vec.items()))
            for vec in ref.satisfying_vectors(formula)
        }
        return bdd_sets, ref_sets

    bdd_sets, ref_sets = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bdd_sets == ref_sets


# ----------------------------------------------------------------------
# Stand-alone machine-readable sweep
# ----------------------------------------------------------------------


def main() -> int:
    sizes = BDD_SIZES[:4] if os.environ.get("BENCH_SMALL") else BDD_SIZES
    sweep = []
    for n in sizes:
        tree = _tree(n)
        formula = MCS(Atom(tree.top))
        start = time.perf_counter()
        translator = FormulaTranslator(tree)
        cubes = satisfying_cubes(translator, formula)
        wall_s = time.perf_counter() - start
        assert cubes  # every tree has at least one minimal cut set
        stats = translator.manager.cache_stats()
        total = stats["hits"] + stats["misses"]
        entry = {
            "n_basic_events": n,
            "wall_ms": round(wall_s * 1000.0, 4),
            "mcs_count": len(cubes),
            "live_nodes": stats["live_nodes"],
            "peak_nodes": stats["peak_live_nodes"],
            "unique_table": stats["unique_table_size"],
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
            "cache_hit_ratio": round(stats["hits"] / total, 4) if total else 0.0,
            "negations": stats["negations"],
        }
        sweep.append(entry)
        print(
            f"[scalability] n={n}: {entry['wall_ms']:.2f} ms, "
            f"{entry['mcs_count']} MCSs, {entry['live_nodes']} nodes, "
            f"hit ratio {entry['cache_hit_ratio']:.2f}"
        )
    path = record_run("scalability", {"sweep": sweep})
    print(f"recorded -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
