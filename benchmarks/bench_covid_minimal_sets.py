"""Sec. VII: the full MCS/MPS lists of the COVID-19 top level event.

Paper-reported content: 12 minimal cut sets (all containing H1 and VW)
and the 12 minimal path sets listed under Property 7.
"""

import pytest

from repro.casestudy import build_covid_tree
from repro.casestudy.properties import P7_MPS
from repro.checker import ModelChecker
from repro.ft import minimal_cut_sets, minimal_path_sets


@pytest.fixture(scope="module")
def tree():
    return build_covid_tree()


def bench_covid_mcs_via_bfl(benchmark, tree):
    def run():
        return ModelChecker(tree).minimal_cut_sets()

    sets = benchmark(run)
    assert len(sets) == 12
    assert all({"H1", "VW"} <= set(s) for s in sets)


def bench_covid_mps_via_bfl(benchmark, tree):
    def run():
        return ModelChecker(tree).minimal_path_sets()

    sets = benchmark(run)
    assert sets == P7_MPS


def bench_covid_mcs_via_ft_analysis(benchmark, tree):
    """The direct Rauzy-style route (no logic layer) for comparison."""
    sets = benchmark(minimal_cut_sets, tree)
    assert len(sets) == 12


def bench_covid_mps_via_ft_analysis(benchmark, tree):
    sets = benchmark(minimal_path_sets, tree)
    assert sorted(sets, key=lambda s: (len(s), sorted(s))) == P7_MPS
