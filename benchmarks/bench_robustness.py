"""Robustness arms: governor overhead and chaos recovery.

Two gated arms over the COVID-19 case-study battery:

* **overhead** — the same sequential battery with and without an armed
  (never-tripping) :class:`repro.runtime.limits.Governor` (battery
  deadline + per-query timeout).  The governed arm must stay within
  ``BENCH_MAX_GOVERNOR_OVERHEAD`` (CI pins 0.05 = 5%) of the
  ungoverned arm, best-of-``BENCH_REPEATS`` each, so deadline support
  is effectively free for every battery that never trips it.
* **chaos** — the acceptance scenario for the fault-tolerance layer: a
  4-shard parallel battery where one worker is killed mid-shard (must
  be recovered by a retried shard), the warm-start snapshot is
  corrupted (must degrade to a cold build behind a structured
  warning), and one query's budget is tripped (must surface as a
  structured ``error_kind="resource-limit"`` row).  Every non-injected
  query must agree with a fault-free sequential run exactly, every
  shard must recover (100% recovery from a single injected crash), and
  every parent-side kernel must pass ``check_invariants``.

``BENCH_ROBUSTNESS_ARM`` selects ``overhead``, ``chaos`` or ``all``
(default).  Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_robustness.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_robustness.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from bench_json import record_run

from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, dual_tree, random_tree
from repro.service import BatchAnalyzer
from repro.testing.chaos import corrupt_snapshot

UNIFORM = 0.03
#: Same curated families as bench_parallel: cost-balanced seeds so the
#: chaos shards are comparable and the overhead sample is long enough
#: (hundreds of ms) for a 5% floor to sit above timer noise.
SHARED_CONFIG = RandomTreeConfig(
    n_basic_events=20, max_children=4, p_share=0.25
)
FLAT_CONFIG = RandomTreeConfig(
    n_basic_events=40, max_children=3, p_share=0.0, max_depth=8
)


def scenarios() -> dict:
    """covid + dual + one seeded tree from each random family."""
    trees = {"covid": build_covid_tree()}
    trees["covid-dual"] = dual_tree(trees["covid"])
    trees["shared120"] = random_tree(120, SHARED_CONFIG)
    trees["flat201"] = random_tree(201, FLAT_CONFIG)
    return trees


def battery(trees: dict) -> list:
    """Mixed qualitative + PFL battery over every scenario (~27/tree)."""
    queries = []
    for name, tree in trees.items():
        events = list(tree.basic_events)
        top = tree.top
        queries.append({"id": f"{name}-mcs", "kind": "mcs", "tree": name})
        queries.append({"id": f"{name}-mps", "kind": "mps", "tree": name})
        queries.append(
            {
                "id": f"{name}-sat",
                "formula": f"[[ MCS({top}) & {events[0]} ]]",
                "tree": name,
            }
        )
        for i, event in enumerate(events[:6]):
            queries.append(
                {
                    "id": f"{name}-x{i}",
                    "formula": f"exists (MCS({top}) & {event})",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-f{i}",
                    "formula": f"forall (MCS({top}) => {event})",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-p{i}",
                    "formula": f"P({top} | {event}) >= 0.5",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-s{i}",
                    "formula": f"P({top})[{event} := 0.5] >= 0.5",
                    "tree": name,
                }
            )
    return queries


def _stripped(report) -> list:
    """Per-query dicts minus the timing field (the agreement view)."""
    rows = []
    for result in report.results:
        data = result.to_dict()
        data.pop("elapsed_ms", None)
        rows.append(data)
    return rows


def _run_battery(trees, queries, **kwargs) -> float:
    """One cold run; returns wall seconds (asserts the battery is ok)."""
    analyzer = BatchAnalyzer(trees, uniform=UNIFORM, **kwargs)
    start = time.perf_counter()
    report = analyzer.run(queries)
    elapsed = time.perf_counter() - start
    assert report.ok, "battery errored: " + str(
        [r.error for r in report.results if not r.ok][:3]
    )
    return elapsed


def overhead_arm(trees, queries) -> dict:
    """Best-of-N governed vs ungoverned sequential battery."""
    repeats = int(os.environ.get("BENCH_REPEATS", "5"))
    max_overhead = float(
        os.environ.get("BENCH_MAX_GOVERNOR_OVERHEAD", "0.05")
    )
    governed_kwargs = {
        # Roomy enough to never trip: the arm measures pure bookkeeping.
        "deadline_ms": 3_600_000.0,
        "query_timeout_ms": 600_000.0,
    }
    plain_s = governed_s = float("inf")
    for _ in range(repeats):
        # Interleaved so thermal / frequency drift hits both arms alike.
        plain_s = min(plain_s, _run_battery(trees, queries))
        governed_s = min(
            governed_s, _run_battery(trees, queries, **governed_kwargs)
        )
    overhead = governed_s / plain_s - 1.0
    print(f"ungoverned (best of {repeats}): {plain_s * 1000:8.1f} ms")
    print(f"governed   (best of {repeats}): {governed_s * 1000:8.1f} ms")
    print(
        f"governor overhead:            {overhead * 100:8.2f}% "
        f"(floor {max_overhead * 100:g}%)"
    )
    assert overhead <= max_overhead, (
        f"armed governor costs {overhead * 100:.2f}% on the covid "
        f"battery — above the {max_overhead * 100:g}% ceiling"
    )
    return {
        "repeats": repeats,
        "ungoverned_ms": round(plain_s * 1000.0, 3),
        "governed_ms": round(governed_s * 1000.0, 3),
        "overhead": round(overhead, 4),
        "max_overhead": max_overhead,
    }


def chaos_arm(trees, queries) -> dict:
    """Kill + corrupt + budget-trip a 4-shard battery; verify recovery."""
    workers = int(os.environ.get("BENCH_CHAOS_WORKERS", "4"))
    kill_id = queries[0]["id"]
    trip_id = queries[-1]["id"]

    baseline = BatchAnalyzer(trees, uniform=UNIFORM).run(queries)
    assert baseline.ok, "fault-free sequential arm errored"

    source = BatchAnalyzer(trees, uniform=UNIFORM)
    source.prewarm_trees()
    snapshots = {
        name: corrupt_snapshot(entry, seed=13)
        for name, entry in source.kernel_snapshots().items()
    }

    marker = tempfile.mktemp(prefix="bench-chaos-kill-")
    os.environ["REPRO_CHAOS"] = json.dumps(
        {
            "kill_queries": [kill_id],
            "kill_marker": marker,
            "budget_trip_queries": [trip_id],
            "trip_step_budget": 1,
        }
    )
    start = time.perf_counter()
    try:
        analyzer = BatchAnalyzer(
            trees,
            uniform=UNIFORM,
            workers=workers,
            snapshots=snapshots,
            shard_retries=2,
            retry_backoff_ms=25.0,
        )
        report = analyzer.run(queries)
    finally:
        del os.environ["REPRO_CHAOS"]
        killed = os.path.exists(marker)
        if killed:
            os.remove(marker)
    elapsed_ms = (time.perf_counter() - start) * 1000.0

    assert killed, "the injected worker kill never fired"
    shard_rows = report.stats["parallel"]["shards"]
    retried = [row for row in shard_rows if row.get("retried")]
    assert retried, "no shard was retried after the injected crash"
    assert all(row.get("error") is None for row in shard_rows), (
        "a shard failed permanently — retry did not recover: "
        + str([row for row in shard_rows if row.get("error")])
    )
    warnings = report.stats.get("warnings", [])

    injected = 0
    for expected, actual in zip(baseline.results, report.results):
        if actual.id == trip_id:
            assert not actual.ok and actual.error_kind == "resource-limit", (
                f"budget trip on {trip_id!r} did not surface as a "
                f"structured resource-limit row: {actual!r}"
            )
            injected += 1
            continue
        left, right = expected.to_dict(), actual.to_dict()
        left.pop("elapsed_ms")
        right.pop("elapsed_ms")
        assert left == right, (
            f"non-injected query {actual.id!r} disagrees with the "
            "fault-free sequential run"
        )
    for name in analyzer.scenarios:
        analyzer.session(name).checker.manager.check_invariants()

    print(
        f"chaos battery ({workers} shards): {elapsed_ms:8.1f} ms — "
        f"{len(retried)}/{len(shard_rows)} shards retried, "
        f"{injected} injected failure(s) structurally reported, "
        f"{len(warnings)} snapshot warning(s)"
    )
    return {
        "workers": workers,
        "elapsed_ms": round(elapsed_ms, 3),
        "queries": len(queries),
        "shards_retried": len(retried),
        "injected_failures": injected,
        "snapshot_warnings": len(warnings),
        "recovered": True,
    }


def main() -> int:
    arm = os.environ.get("BENCH_ROBUSTNESS_ARM", "all")
    trees = scenarios()
    queries = battery(trees)
    print(
        f"battery: {len(queries)} queries over {len(trees)} scenarios "
        f"(arm={arm})"
    )

    payload: dict = {"arm": arm, "queries": len(queries)}
    if arm in ("overhead", "all"):
        payload["overhead"] = overhead_arm(trees, queries)
    if arm in ("chaos", "all"):
        payload["chaos"] = chaos_arm(trees, queries)
    if arm not in ("overhead", "chaos", "all"):
        raise SystemExit(
            f"unknown BENCH_ROBUSTNESS_ARM {arm!r} "
            "(expected overhead, chaos or all)"
        )

    path = record_run("robustness", payload)
    print(f"\nrecorded -> {path}")
    print("OK: robustness arm(s) within bounds.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
