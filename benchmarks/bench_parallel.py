"""Sharded multi-process batch execution vs the in-process pipeline.

The battery is the widened multi-tree workload the service layer is
built for: the COVID-19 tree and its dual, plus seeded random trees and
their duals — two structure families (DAG-shared 20-event trees and
share-free 40-event trees), 12 scenarios — each asked a mixed battery
of qualitative (MCS/MPS kinds, satisfaction sets, exists/forall over
``MCS(top)``) and PFL queries (conditional probabilities and per-query
settings), ~320 queries in all.  The sequential arm answers it with
``BatchAnalyzer(workers=1)``; the parallel arm shards the same battery
over ``BENCH_WORKERS`` processes (private per-worker kernels, balanced
by the cost-model planner, merged deterministically).

The seeds are curated: random fault-tree MCS work is spiky (a single
pathological seed can cost 100x its siblings, capping any parallel
speedup at ~1x no matter how many workers), so the battery pins seeds
whose per-scenario costs are the same order of magnitude.  That makes
sharding — the thing under test — the variable, not one blow-up tree.

Gated in CI via ``benchmarks/run_gates.py``: the parallel arm must beat
sequential by ``BENCH_MIN_PARALLEL_SPEEDUP`` (CI pins 2 at 4 workers),
and the two reports must agree query-for-query.  The speedup floor only
binds when the machine actually has ``BENCH_WORKERS`` cores — on
smaller boxes (e.g. a 1-core container) the gate degrades to the
agreement check plus reporting, since no amount of sharding can beat
physics.

A snapshot arm also times the portable-kernel round trip
(``save_snapshot``/``load_snapshot`` over every scenario) and a
warm-started sequential run, exercising the ``bfl batch --snapshot``
path end to end.

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_parallel.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_parallel.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import os
import time

from bench_json import record_run

from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, dual_tree, random_tree
from repro.service import BatchAnalyzer

UNIFORM = 0.03
#: DAG-shared trees (repeated basic events, the COVID-tree shape).
SHARED_CONFIG = RandomTreeConfig(
    n_basic_events=20, max_children=4, p_share=0.25
)
SHARED_SEEDS = (120, 126, 127)
#: Share-free (read-once) trees — wider but structurally tame.
FLAT_CONFIG = RandomTreeConfig(
    n_basic_events=40, max_children=3, p_share=0.0, max_depth=8
)
FLAT_SEEDS = (201, 202)


def scenarios() -> dict:
    """covid + seeded random trees from two families, plus duals
    (12 scenarios with same-order-of-magnitude per-scenario cost)."""
    trees = {"covid": build_covid_tree()}
    trees["covid-dual"] = dual_tree(trees["covid"])
    for seed in SHARED_SEEDS:
        tree = random_tree(seed, SHARED_CONFIG)
        trees[f"shared{seed}"] = tree
        trees[f"shared{seed}-dual"] = dual_tree(tree)
    for seed in FLAT_SEEDS:
        tree = random_tree(seed, FLAT_CONFIG)
        trees[f"flat{seed}"] = tree
        trees[f"flat{seed}-dual"] = dual_tree(tree)
    return trees


def battery(trees: dict) -> list:
    """Mixed qualitative + PFL battery over every scenario (~27/tree)."""
    queries = []
    for name, tree in trees.items():
        events = list(tree.basic_events)
        top = tree.top
        queries.append({"id": f"{name}-mcs", "kind": "mcs", "tree": name})
        queries.append({"id": f"{name}-mps", "kind": "mps", "tree": name})
        queries.append(
            {
                "id": f"{name}-sat",
                "formula": f"[[ MCS({top}) & {events[0]} ]]",
                "tree": name,
            }
        )
        for i, event in enumerate(events[:6]):
            queries.append(
                {
                    "id": f"{name}-x{i}",
                    "formula": f"exists (MCS({top}) & {event})",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-f{i}",
                    "formula": f"forall (MCS({top}) => {event})",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-p{i}",
                    "formula": f"P({top} | {event}) >= 0.5",
                    "tree": name,
                }
            )
            queries.append(
                {
                    "id": f"{name}-s{i}",
                    "formula": f"P({top})[{event} := 0.5] >= 0.5",
                    "tree": name,
                }
            )
    return queries


def _stripped(report) -> list:
    """Per-query dicts minus the timing field (the agreement view)."""
    rows = []
    for result in report.results:
        data = result.to_dict()
        data.pop("elapsed_ms", None)
        rows.append(data)
    return rows


def snapshot_round_trip(trees: dict) -> dict:
    """Time save/load of every scenario's kernel plus a warm-started
    (single-process) mini-battery, pinning agreement with a cold run."""
    import json

    warm_source = BatchAnalyzer(trees, uniform=UNIFORM)
    start = time.perf_counter()
    warm_source.prewarm_trees()
    prewarm_ms = (time.perf_counter() - start) * 1000.0

    start = time.perf_counter()
    snapshots = warm_source.kernel_snapshots()
    save_ms = (time.perf_counter() - start) * 1000.0
    payload_bytes = len(json.dumps(snapshots))

    start = time.perf_counter()
    warm = BatchAnalyzer(trees, uniform=UNIFORM, snapshots=snapshots)
    load_ms = (time.perf_counter() - start) * 1000.0

    mini = [
        {"id": f"{name}-top", "formula": f"P({tree.top}) >= 0.5", "tree": name}
        for name, tree in trees.items()
    ]
    cold_report = BatchAnalyzer(trees, uniform=UNIFORM).run(mini)
    warm_report = warm.run(mini)
    assert _stripped(cold_report) == _stripped(warm_report), (
        "snapshot warm start changed query results"
    )
    nodes = sum(
        warm.session(name).checker.manager.node_count() for name in trees
    )
    return {
        "scenarios": len(trees),
        "prewarm_ms": round(prewarm_ms, 3),
        "save_ms": round(save_ms, 3),
        "load_ms": round(load_ms, 3),
        "payload_bytes": payload_bytes,
        "warm_nodes": nodes,
    }


def main() -> int:
    workers = int(os.environ.get("BENCH_WORKERS", "4"))
    min_speedup = float(os.environ.get("BENCH_MIN_PARALLEL_SPEEDUP", "1"))
    cores = os.cpu_count() or 1

    trees = scenarios()
    queries = battery(trees)
    print(
        f"battery: {len(queries)} queries over {len(trees)} scenarios "
        f"({cores} cores available, {workers} workers requested)"
    )

    start = time.perf_counter()
    sequential = BatchAnalyzer(trees, uniform=UNIFORM).run(queries)
    sequential_s = time.perf_counter() - start
    assert sequential.ok, "sequential arm errored"

    start = time.perf_counter()
    parallel = BatchAnalyzer(trees, uniform=UNIFORM, workers=workers).run(
        queries
    )
    parallel_s = time.perf_counter() - start
    assert parallel.ok, "parallel arm errored"

    assert _stripped(sequential) == _stripped(parallel), (
        "parallel report disagrees with sequential query-for-query"
    )

    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    gated = cores >= workers
    gate_skip_reason = (
        None
        if gated
        else (
            f"only {cores} core(s) for {workers} workers; agreement "
            "checked, speedup floor not enforced"
        )
    )
    shards = parallel.stats["parallel"]["shards"]
    print(f"sequential (1 process):    {sequential_s * 1000:8.1f} ms")
    print(f"parallel ({workers} workers):     {parallel_s * 1000:8.1f} ms")
    print(f"speedup:                   {speedup:8.2f}x")
    print("shards:")
    for row in shards:
        print(
            f"  #{row['shard']}: {row['queries']:3d} queries, "
            f"cost {row['cost']:9.1f}, {len(row['scenarios'])} scenarios, "
            f"{row.get('elapsed_ms', 0.0):8.1f} ms"
        )

    snapshot = snapshot_round_trip(trees)
    print(
        f"snapshot round trip: prewarm {snapshot['prewarm_ms']:.1f} ms, "
        f"save {snapshot['save_ms']:.1f} ms, load {snapshot['load_ms']:.1f} ms "
        f"({snapshot['payload_bytes']} bytes, {snapshot['warm_nodes']} nodes)"
    )

    path = record_run(
        "parallel",
        {
            "scenarios": len(trees),
            "queries": len(queries),
            "workers": workers,
            "cores": cores,
            "sequential_ms": round(sequential_s * 1000.0, 3),
            "parallel_ms": round(parallel_s * 1000.0, 3),
            "speedup": round(speedup, 2),
            # Whether the speedup floor was actually enforced on this
            # machine; a false record carries the reason so dashboards
            # can tell "passed the floor" from "floor not applicable".
            "gated": gated,
            **(
                {"gate_skip_reason": gate_skip_reason}
                if gate_skip_reason
                else {}
            ),
            "shards": shards,
            "snapshot": snapshot,
        },
    )
    print(f"\nrecorded -> {path}")

    if not gated:
        # The floor assumes the requested parallelism physically exists;
        # below that, agreement (asserted above) is the whole gate.
        print(
            f"NOTE: only {cores} core(s) for {workers} workers — speedup "
            f"floor {min_speedup:g}x not enforced on this machine."
        )
        return 0
    assert speedup >= min_speedup, (
        f"parallel speedup {speedup:.2f}x at {workers} workers regressed "
        f"below the {min_speedup:g}x floor"
    )
    print(f"OK: parallel execution >= {min_speedup:g}x sequential.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
