"""Sec. VII: the nine COVID-19 case-study properties.

One benchmark per property; each run re-evaluates the property on a fresh
model checker (so the timing includes Algorithm-1 translation) and asserts
every claim matches the paper's reported outcome.
"""

import pytest

from repro.casestudy import PROPERTIES, build_covid_tree
from repro.checker import ModelChecker


@pytest.mark.parametrize("spec", PROPERTIES, ids=[s.pid for s in PROPERTIES])
def bench_property(benchmark, spec):
    tree = build_covid_tree()

    def run():
        checker = ModelChecker(tree)
        return spec.run(checker)

    outcome = benchmark(run)
    mismatches = [r for r in outcome.records if not r.matches]
    assert mismatches == [], f"{spec.pid}: {mismatches}"


def bench_all_properties_shared_cache(benchmark):
    """The Sec. VII analysis as the paper runs it: one tool session, all
    nine properties, Algorithm-1 caches shared between queries."""
    tree = build_covid_tree()

    def run():
        checker = ModelChecker(tree)
        return [spec.run(checker) for spec in PROPERTIES]

    outcomes = benchmark(run)
    assert all(outcome.all_match for outcome in outcomes)
