"""Docs drift gate: generated-surface tables must match the live code.

The repo's documentation contains three tables that restate machine
truth, plus a README whose command inventory tends to rot:

* ``docs/dsl.md`` — the query-kind table between
  ``<!-- kinds:begin -->`` / ``<!-- kinds:end -->`` must match the
  query-kind registry (name, required fields, accepted fields, CLI
  face), exactly as ``bfl batch --list-kinds`` would print it.
* ``docs/server.md`` — the endpoint table between
  ``<!-- endpoints:begin -->`` / ``<!-- endpoints:end -->`` must match
  ``repro.service.server.ROUTES`` (method + path, in order), and the
  ``error_kind`` table between ``<!-- error-kinds:begin -->`` /
  ``<!-- error-kinds:end -->`` must list exactly the
  :class:`~repro.errors.ExecutionError` taxonomy.
* ``README.md`` — every ``bfl`` subcommand registered in
  :func:`repro.cli.build_parser` must appear (as ``bfl <name>``).

Each check returns a list of human-readable problems so the test suite
can call them individually; ``main()`` runs all of them and exits
non-zero on any drift.  Registered in ``run_gates.py`` (gate name
``docs``) and therefore in CI.

Run directly::

    PYTHONPATH=src python benchmarks/docs_gate.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # runnable without PYTHONPATH=src
    sys.path.insert(0, str(REPO / "src"))
DOCS_DSL = REPO / "docs" / "dsl.md"
DOCS_SERVER = REPO / "docs" / "server.md"
README = REPO / "README.md"


def _marked_rows(
    path: Path, begin: str, end: str
) -> Tuple[List[str], List[str]]:
    """(problems, table rows) for the marked region of ``path``."""
    if not path.is_file():
        return [f"{path.name}: file is missing"], []
    text = path.read_text(encoding="utf-8")
    match = re.search(
        re.escape(begin) + r"\n(.*?)" + re.escape(end), text, re.DOTALL
    )
    if not match:
        return [f"{path.name}: lost its {begin} / {end} markers"], []
    rows = [
        line
        for line in match.group(1).splitlines()
        if line.startswith("| `")
    ]
    return [], rows


def check_dsl_kinds() -> List[str]:
    """docs/dsl.md kind table vs the query-kind registry."""
    from repro.engine import REGISTRY

    problems, rows = _marked_rows(
        DOCS_DSL, "<!-- kinds:begin -->", "<!-- kinds:end -->"
    )
    if problems:
        return problems
    documented = []
    for row in rows:
        cells = [cell.strip() for cell in row.strip("|").split("|")]
        documented.append(
            (
                cells[0].strip("`"),
                tuple(re.findall(r"`([^`]+)`", cells[1])),
                tuple(re.findall(r"`([^`]+)`", cells[2])),
                cells[3].strip("`"),
            )
        )
    registered = [
        (kind.name, kind.required_fields(), kind.accepts, kind.cli)
        for kind in REGISTRY
    ]
    if documented != registered:
        doc_names = [entry[0] for entry in documented]
        reg_names = [entry[0] for entry in registered]
        if doc_names != reg_names:
            problems.append(
                f"dsl.md kind table lists {doc_names} but the registry "
                f"has {reg_names}"
            )
        else:
            for doc, reg in zip(documented, registered):
                if doc != reg:
                    problems.append(
                        f"dsl.md kind {doc[0]!r} row drifted: "
                        f"documented {doc[1:]} vs registry {reg[1:]}"
                    )
    return problems


def check_server_endpoints() -> List[str]:
    """docs/server.md endpoint table vs ``server.ROUTES``."""
    from repro.service.server import ROUTES

    problems, rows = _marked_rows(
        DOCS_SERVER, "<!-- endpoints:begin -->", "<!-- endpoints:end -->"
    )
    if problems:
        return problems
    documented = []
    for row in rows:
        cells = [cell.strip() for cell in row.strip("|").split("|")]
        if len(cells) < 2:
            problems.append(f"server.md malformed endpoint row: {row!r}")
            continue
        documented.append((cells[0].strip("`"), cells[1].strip("`")))
    live = [(route.method, route.path) for route in ROUTES]
    if documented != live:
        problems.append(
            f"server.md endpoint table lists {documented} but the "
            f"server exposes {live}"
        )
    return problems


def check_server_error_kinds() -> List[str]:
    """docs/server.md error_kind table vs the ExecutionError taxonomy."""
    from repro.errors import ExecutionError

    problems, rows = _marked_rows(
        DOCS_SERVER,
        "<!-- error-kinds:begin -->",
        "<!-- error-kinds:end -->",
    )
    if problems:
        return problems
    documented = set()
    for row in rows:
        cells = [cell.strip() for cell in row.strip("|").split("|")]
        documented.add(cells[0].strip("`"))
    kinds = {ExecutionError.kind}
    stack = [ExecutionError]
    while stack:
        for sub in stack.pop().__subclasses__():
            kinds.add(sub.kind)
            stack.append(sub)
    missing = sorted(kinds - documented)
    stale = sorted(documented - kinds)
    if missing:
        problems.append(
            "server.md error_kind table is missing: " + ", ".join(missing)
        )
    if stale:
        problems.append(
            "server.md error_kind table documents kinds that no "
            "ExecutionError carries: " + ", ".join(stale)
        )
    return problems


def check_readme_subcommands() -> List[str]:
    """Every ``bfl`` subcommand must appear in README as ``bfl <name>``."""
    import argparse

    from repro.cli import build_parser

    if not README.is_file():
        return ["README.md is missing"]
    text = README.read_text(encoding="utf-8")
    parser = build_parser()
    subcommands: List[str] = []
    for action in parser._actions:  # noqa: SLF001 — argparse has no
        # public subcommand inventory; this is what it offers.
        if isinstance(action, argparse._SubParsersAction):
            subcommands = list(action.choices)
    problems = []
    for name in subcommands:
        if f"bfl {name}" not in text:
            problems.append(
                f"README.md never mentions `bfl {name}` (every "
                "subcommand must be documented)"
            )
    return problems


CHECKS = (
    check_dsl_kinds,
    check_server_endpoints,
    check_server_error_kinds,
    check_readme_subcommands,
)


def main() -> int:
    failed = 0
    for check in CHECKS:
        problems = check()
        status = "PASS" if not problems else "FAIL"
        print(f"{status}  {check.__name__}")
        for problem in problems:
            print(f"      {problem}")
        failed += bool(problems)
    if failed:
        print(f"docs drift gate: {failed} check(s) failed")
        return 1
    print("docs drift gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
