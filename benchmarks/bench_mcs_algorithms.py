"""Ablation A3 (DESIGN.md): the paper's primed-relation MCS construction
vs the restriction-based (Rauzy-style) construction for monotone inputs.

Both compute BT(MCS(phi)); the paper's construction doubles the variable
count (primed copies + relational quantification), the monotone one does a
linear conjunction of Restrict results.  Each timed iteration uses a fresh
manager so memoisation cannot flatter either arm; a final check proves the
two constructions build the identical BDD.
"""

import pytest

from repro.bdd import (
    BDDManager,
    minimal_assignments,
    minimal_assignments_monotone,
)
from repro.bdd.minimal import ensure_primed, prime_name
from repro.casestudy import build_covid_tree
from repro.ft import RandomTreeConfig, random_tree, tree_to_bdd

TREES = {
    "covid": build_covid_tree(),
    "random18": random_tree(
        11, RandomTreeConfig(n_basic_events=18, max_children=4, p_share=0.25)
    ),
    "random24": random_tree(
        13, RandomTreeConfig(n_basic_events=24, max_children=4, p_share=0.25)
    ),
}


def _fresh(tree):
    # Interleave primes with their base variables (see FormulaTranslator):
    # the relational construction is exponential without this.
    order = []
    for name in tree.basic_events:
        order.append(name)
        order.append(prime_name(name))
    manager = BDDManager(order)
    root = tree_to_bdd(tree, manager)
    scope = sorted(manager.support(root), key=manager.level_of)
    return manager, root, scope


@pytest.mark.parametrize("name", sorted(TREES))
def bench_mcs_primed_relation(benchmark, name):
    tree = TREES[name]

    def run():
        manager, root, scope = _fresh(tree)
        ensure_primed(manager, scope)
        return manager, minimal_assignments(manager, root, scope)

    manager, result = benchmark(run)
    assert result is not manager.false


@pytest.mark.parametrize("name", sorted(TREES))
def bench_mcs_restriction_monotone(benchmark, name):
    tree = TREES[name]

    def run():
        manager, root, scope = _fresh(tree)
        return manager, minimal_assignments_monotone(manager, root, scope)

    manager, result = benchmark(run)
    assert result is not manager.false


@pytest.mark.parametrize("name", sorted(TREES))
def bench_mcs_constructions_agree(benchmark, name):
    """Correctness arm: identical BDDs from both constructions."""
    tree = TREES[name]

    def run():
        manager, root, scope = _fresh(tree)
        ensure_primed(manager, scope)
        primed = minimal_assignments(manager, root, scope)
        direct = minimal_assignments_monotone(manager, root, scope)
        return primed, direct

    primed, direct = benchmark(run)
    assert primed is direct
