"""Incremental variant sweep vs per-variant rebuild (the what-if path).

The workload is a hospital *fleet* built from the paper's COVID-19
tree: ``BENCH_WARDS`` renamed copies of the Fig. 2 ward model under a
2-of-N VOT system gate (the fleet fails when two wards do).  A
~1k-variant what-if sweep then asks the study-shaped question "how
does the system risk move as we perturb ward 0?" — exactly the regime
the copy-on-write fork path exists for: every variant's edit is
confined to one ward, so seven-eighths of the model re-lowers for free
and the edited subtree reaches the top through one memoised compose.
Each variant is a short edit script drawn round-robin from three
families:

* ``weight-change`` — a basic event's failure probability moves;
* ``gate-swap`` — a gate's connective flips (AND/OR/VOT);
* ``subtree-replace`` — a gate's subtree is swapped for a small
  fragment sharing one existing event.

The *rebuild* arm answers each variant with a fresh
:class:`~repro.service.batch.AnalysisSession` (new kernel, full
``Psi_FT`` lowering).  The *incremental* arm forks every variant off
one warm base session (:meth:`AnalysisSession.fork_variant`): shared
kernel, adopted element BDDs, one memoised compose splice per variant.

Agreement is enforced on every variant — ``P(top)`` to 1e-12 and the
structure function on probe vectors — and the full MCS family of the
edited ward on a subsample (read through ``MCS(...)`` cubes: the
fleet-top family crosses every 2-of-N pair of ward cut sets and the
total-vector view expands don't-cares over all 100+ events, so either
would swamp *both* arms with identical checker work and dilute the
ratio); the speedup floor only gates on top of that.

Gated in CI via ``benchmarks/run_gates.py``: incremental must beat
rebuild by ``BENCH_MIN_INCREMENTAL_SPEEDUP`` (CI pins 5).

Env:
    BENCH_VARIANTS                   sweep size (default 1000)
    BENCH_WARDS                      covid copies in the fleet (default 8)
    BENCH_MIN_INCREMENTAL_SPEEDUP    speedup floor (default 1)

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_incremental.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_incremental.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import os
import time

from bench_json import record_run

from repro.casestudy import build_covid_tree
from repro.ft import FaultTree, GateSwap, SubtreeReplace, WeightChange, apply_edits
from repro.ft.elements import BasicEvent, Gate, GateType
from repro.checker.satisfy import satisfying_cubes
from repro.logic import MCS, Atom
from repro.service import AnalysisSession

UNIFORM = 0.1
MCS_SUBSAMPLE = 50  # full edited-ward MCS agreement every Nth variant
MCS_SCOPE = "w0_IWoS"  # ward 0's top: the subtree every edit lands in

FRAGMENT = (
    'toplevel "FX";\n'
    '"FX" or "FY" "{shared}";\n'
    '"FY" and "z1" "{shared}";\n'
    '"z1" prob=0.15;\n'
)


def build_fleet(wards: int) -> FaultTree:
    """``wards`` renamed covid copies under a 2-of-N VOT system gate."""
    covid = build_covid_tree()
    basic_events = []
    gates = []
    tops = []
    for ward in range(wards):
        def renamed(name: str) -> str:
            return f"w{ward}_{name}"

        for name in covid.basic_events:
            basic_events.append(BasicEvent(renamed(name)))
        for name in covid.gate_names:
            gate = covid.gate(name)
            gates.append(
                Gate(
                    renamed(name),
                    gate.gate_type,
                    tuple(renamed(child) for child in gate.children),
                    threshold=gate.threshold,
                )
            )
        tops.append(renamed(covid.top))
    gates.append(
        Gate("FLEET", GateType.VOT, tuple(tops), threshold=min(2, wards))
    )
    return FaultTree(basic_events, gates, "FLEET")


def variant_edits(tree, count: int) -> list:
    """Round-robin edit scripts over the three structural families,
    all confined to ward 0 (the single-subtree what-if regime)."""
    events = sorted(
        event for event in tree.basic_events if event.startswith("w0_")
    )
    gates = sorted(
        name
        for name in tree.gate_names
        if name.startswith("w0_") and name != tree.top
    )
    scripts = []
    for i in range(count):
        family = i % 3
        if family == 0:
            event = events[i % len(events)]
            scripts.append(
                [WeightChange(event, 0.01 + (i % 90) / 100.0)]
            )
        elif family == 1:
            gate = gates[i % len(gates)]
            arity = len(tree.gate(gate).children)
            kinds = ["and", "or"] + (["vot"] if arity >= 2 else [])
            kind = kinds[i % len(kinds)]
            if kind == "vot":
                scripts.append(
                    [GateSwap(gate, "vot", 1 + (i % arity))]
                )
            else:
                scripts.append([GateSwap(gate, kind)])
        else:
            gate = gates[i % len(gates)]
            shared = events[i % len(events)]
            scripts.append(
                [SubtreeReplace(gate, FRAGMENT.format(shared=shared))]
            )
    return scripts


def base_overrides(tree) -> dict:
    return {event: UNIFORM for event in tree.basic_events}


def rebuild_overrides(base_tree, variant_tree, edits) -> dict:
    """What a fresh session must weigh: the uniform base weights, minus
    weight-changed events (the edit's value lives in the tree now),
    restricted to surviving events.  Mirrors fork_variant inheritance."""
    weight_targets = {
        edit.event for edit in edits if isinstance(edit, WeightChange)
    }
    surviving = set(variant_tree.basic_events)
    return {
        event: UNIFORM
        for event in base_tree.basic_events
        if event not in weight_targets and event in surviving
    }


def mcs_family(session, vtree) -> tuple:
    """The edited ward's MCS family through the formula layer.

    Reads ``MCS(scope)`` as cubes — one minimal cut set per BDD 1-path
    — instead of :meth:`ChkEngine.minimal_cut_sets`, whose
    ``SatisfactionSet`` also materialises every *total* satisfying
    vector: with the element scoped to one ward the other wards' events
    are don't-cares and that expansion is exponential in the fleet
    size.
    """
    scope = MCS_SCOPE if MCS_SCOPE in vtree else vtree.top
    cubes = satisfying_cubes(session.checker.translator, MCS(Atom(scope)))
    family = {
        frozenset(name for name, value in cube.items() if value)
        for cube in cubes
    }
    return tuple(sorted(family, key=lambda s: (len(s), sorted(s))))


def probe_vectors(events) -> list:
    """A few deterministic status vectors exercising mixed failures."""
    vectors = []
    for k in (0, 1, 2):
        vectors.append(
            {event: (i + k) % 3 != 0 for i, event in enumerate(events)}
        )
    return vectors


def main() -> int:
    count = int(os.environ.get("BENCH_VARIANTS", "1000"))
    wards = int(os.environ.get("BENCH_WARDS", "8"))
    min_speedup = float(
        os.environ.get("BENCH_MIN_INCREMENTAL_SPEEDUP", "1")
    )
    tree = build_fleet(wards)
    scripts = variant_edits(tree, count)
    # Variant trees and probe vectors are materialised once, outside
    # both timed arms: each arm would otherwise pay identical
    # apply_edits/dict-building scaffolding, which only dilutes the
    # kernel comparison.
    trees = [apply_edits(tree, edits) for edits in scripts]
    probes = [
        probe_vectors(sorted(vtree.basic_events)) for vtree in trees
    ]
    print(
        f"sweep: {count} variants of a {wards}-ward covid fleet "
        f"({len(tree.basic_events)} events, "
        f"{len(tuple(tree.gate_names))} gates; edits target ward 0)"
    )

    # --- rebuild arm: fresh kernel per variant -----------------------
    rebuild_p = []
    rebuild_eval = []
    rebuild_mcs = {}
    start = time.perf_counter()
    for i, (edits, vtree) in enumerate(zip(scripts, trees)):
        session = AnalysisSession(
            f"r{i}",
            vtree,
            probabilities=rebuild_overrides(tree, vtree, edits),
        )
        top_ref = session.checker.translator.tree_translator.top()
        manager = session.checker.manager
        rebuild_eval.append(
            [manager.evaluate(top_ref, vector) for vector in probes[i]]
        )
        rebuild_p.append(
            session.prob_checker().probability(Atom(vtree.top))
        )
        if i % MCS_SUBSAMPLE == 0:
            rebuild_mcs[i] = mcs_family(session, vtree)
    rebuild_s = time.perf_counter() - start

    # --- incremental arm: one warm base, forked variants -------------
    start = time.perf_counter()
    base = AnalysisSession(
        "base", tree, probabilities=base_overrides(tree)
    )
    base.checker.translator.tree_translator.top()
    incremental_p = []
    incremental_eval = []
    incremental_mcs = {}
    for i, edits in enumerate(scripts):
        variant = base.fork_variant(f"v{i}", edits, tree=trees[i])
        vtree = variant.tree
        top_ref = variant.checker.translator.tree_translator.top()
        manager = variant.checker.manager
        incremental_eval.append(
            [manager.evaluate(top_ref, vector) for vector in probes[i]]
        )
        incremental_p.append(
            variant.prob_checker().probability(Atom(vtree.top))
        )
        if i % MCS_SUBSAMPLE == 0:
            incremental_mcs[i] = mcs_family(variant, vtree)
        if i % 200 == 199:
            # Dropped variant sessions release their pins; reclaim so a
            # long sweep holds the kernel flat.
            manager.collect()
    incremental_s = time.perf_counter() - start
    base.checker.manager.check_invariants()

    # --- agreement (always enforced, never gated away) ---------------
    disagreements = [
        i
        for i, (a, b) in enumerate(zip(rebuild_p, incremental_p))
        if abs(a - b) > 1e-12
    ]
    assert not disagreements, (
        f"P(top) disagrees on variants {disagreements[:5]} "
        f"(of {len(disagreements)})"
    )
    assert rebuild_eval == incremental_eval, (
        "structure-function probes disagree between arms"
    )
    assert rebuild_mcs == incremental_mcs, (
        "MCS families disagree on the subsample"
    )
    spread = max(rebuild_p) - min(rebuild_p)

    speedup = rebuild_s / incremental_s if incremental_s else float("inf")
    nodes = base.checker.manager.node_count()
    print(f"rebuild   ({count} kernels): {rebuild_s * 1000:9.1f} ms")
    print(f"incremental (one kernel):  {incremental_s * 1000:9.1f} ms")
    print(f"speedup:                   {speedup:9.2f}x")
    print(
        f"agreement: P(top) to 1e-12 on all {count}, probes on all, "
        f"edited-ward MCS on {len(rebuild_mcs)} subsampled variants"
    )
    print(
        f"P(top) spread across variants: {spread:.6f} "
        f"(shared kernel ends at {nodes} nodes)"
    )

    path = record_run(
        "incremental",
        {
            "variants": count,
            "wards": wards,
            "rebuild_ms": round(rebuild_s * 1000.0, 3),
            "incremental_ms": round(incremental_s * 1000.0, 3),
            "speedup": round(speedup, 2),
            "mcs_checked": len(rebuild_mcs),
            "probability_spread": round(spread, 6),
            "kernel_nodes": nodes,
        },
    )
    print(f"\nrecorded -> {path}")

    assert speedup >= min_speedup, (
        f"incremental sweep {speedup:.2f}x regressed below the "
        f"{min_speedup:g}x floor over rebuild"
    )
    print(f"OK: incremental sweep >= {min_speedup:g}x rebuild.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
