"""Figure 1 / Sec. II: the example tree's MCSs and MPSs.

Paper-reported content:
    MCS(CP/R) = {IW, H3}, {IT, H2}
    MPS(CP/R) = {IW, IT}, {IW, H2}, {H3, IT}, {H3, H2}

Both the BDD algorithms and the exponential enumeration baseline are
timed; each run asserts the sets match the paper before returning.
"""

import pytest

from repro.ft import (
    figure1_tree,
    minimal_cut_sets,
    minimal_cut_sets_enum,
    minimal_path_sets,
    minimal_path_sets_enum,
)

PAPER_MCS = sorted(
    [frozenset({"IW", "H3"}), frozenset({"IT", "H2"})],
    key=lambda s: (len(s), sorted(s)),
)
PAPER_MPS = sorted(
    [
        frozenset({"IW", "IT"}),
        frozenset({"IW", "H2"}),
        frozenset({"H3", "IT"}),
        frozenset({"H3", "H2"}),
    ],
    key=lambda s: (len(s), sorted(s)),
)


@pytest.fixture(scope="module")
def tree():
    return figure1_tree()


def bench_fig1_mcs_bdd(benchmark, tree):
    result = benchmark(minimal_cut_sets, tree)
    assert result == PAPER_MCS


def bench_fig1_mcs_enumeration_baseline(benchmark, tree):
    result = benchmark(minimal_cut_sets_enum, tree)
    assert result == PAPER_MCS


def bench_fig1_mps_bdd(benchmark, tree):
    result = benchmark(minimal_path_sets, tree)
    assert result == PAPER_MPS


def bench_fig1_mps_enumeration_baseline(benchmark, tree):
    result = benchmark(minimal_path_sets_enum, tree)
    assert result == PAPER_MPS
