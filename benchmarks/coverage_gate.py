"""Test-coverage gate: ``pytest --cov=repro`` with a line-rate floor.

Runs the full tier-1 suite under ``pytest-cov``, writes the
machine-readable report to ``coverage.json`` (uploaded as a CI
artifact next to the ``BENCH_*.json`` records), and fails when total
line coverage drops below ``COV_MIN_PERCENT``.

The gate is a *CI* gate: ``pytest-cov`` is an optional dependency, and
a local environment without it skips cleanly (exit 0 with a notice)
rather than failing or demanding an install — the correctness suite
itself is unaffected either way.

Env:
    COV_MIN_PERCENT   line-coverage floor in percent (default 70)
    COV_JSON          where to write the JSON report
                      (default: <repo>/coverage.json)

Run via the declarative table (the normal CI path)::

    PYTHONPATH=src python benchmarks/run_gates.py --only coverage

or directly::

    PYTHONPATH=src python benchmarks/coverage_gate.py
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent


def main() -> int:
    if importlib.util.find_spec("pytest_cov") is None:
        print(
            "coverage gate: pytest-cov is not installed in this "
            "environment — skipping (the gate only binds in CI, where "
            "it is pip-installed; nothing to do locally)."
        )
        return 0

    floor = float(os.environ.get("COV_MIN_PERCENT", "70"))
    report = Path(os.environ.get("COV_JSON", REPO / "coverage.json"))

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "--cov=repro",
            f"--cov-report=json:{report}",
            "--cov-report=term",
            str(REPO / "tests"),
        ],
        cwd=REPO,
        env=env,
    )
    if result.returncode != 0:
        print("coverage gate: the test run itself failed")
        return result.returncode

    try:
        data = json.loads(report.read_text())
        percent = float(data["totals"]["percent_covered"])
    except (OSError, KeyError, ValueError) as exc:
        print(f"coverage gate: cannot read {report}: {exc}")
        return 1

    print(
        f"coverage gate: {percent:.2f}% of repro lines covered "
        f"(floor {floor:g}%, report -> {report})"
    )
    if percent < floor:
        print(
            f"coverage gate: FAILED — {percent:.2f}% is below the "
            f"{floor:g}% floor"
        )
        return 1
    print("OK: coverage floor held.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
