"""Figure 3 + Examples 2 and 3: the OR-gate BDD walk-through.

Paper-reported content:
    Example 2: for chi = MCS(e_top) and b = (0, 1), the Algorithm-2 walk
    ends in the 1 terminal (b satisfies chi).
    Example 3: AllSat(BT(MCS(e_top))) = {(0, 1), (1, 0)}.
"""

import pytest

from repro.ft import figure3_or_tree
from repro.logic import MCS, Atom
from repro.checker import (
    FormulaTranslator,
    check,
    satisfying_vectors,
)

FORMULA = MCS(Atom("Top"))


@pytest.fixture(scope="module")
def tree():
    return figure3_or_tree()


def bench_example2_walk(benchmark, tree):
    translator = FormulaTranslator(tree)
    translator.bdd(FORMULA)  # translate once; time the Algorithm-2 walk
    vector = {"e1": False, "e2": True}
    result = benchmark(check, translator, FORMULA, vector)
    assert result is True


def bench_example2_translation(benchmark, tree):
    def translate():
        translator = FormulaTranslator(tree)
        return translator.bdd(FORMULA)

    root = benchmark(translate)
    assert root is not None


def bench_example3_allsat(benchmark, tree):
    translator = FormulaTranslator(tree)

    def run():
        return satisfying_vectors(translator, FORMULA)

    vectors = benchmark(run)
    as_bits = {(v["e1"], v["e2"]) for v in vectors}
    assert as_bits == {(False, True), (True, False)}
