"""`bfl serve` cache-tier latency + sustained throughput (the server gate).

The server's business case is the three-tier session lifecycle:

* **cold** — no pooled session, no store entry: the request pays the
  full tree translation (Algorithm 1) before it can answer;
* **warm** — the LRU pool holds a live session: the request is pure
  evaluation against hot caches;
* **rewarm** — a *fresh server process* whose snapshot store was
  populated by the previous one (the drain path): the request
  ``load_snapshot``-adopts the binary v2 kernel instead of rebuilding.

This benchmark measures all three through the real HTTP surface on a
translation-heavy random tree (the covid tree is too small to show the
gap), enforces that the three arms answer identically, and gates the
cold/rewarm ratio: a restarted server with a populated store must be at
least ``BENCH_MIN_WARM_SPEEDUP``x faster than a cold build (CI pins 10).
A sustained requests/sec figure over a mixed covid battery (warm pool,
keep-alive connection) turns the ROADMAP's "millions of users" into a
measured number.

Env:
    BENCH_MIN_WARM_SPEEDUP   cold/rewarm floor (default 1; CI pins 10)
    BENCH_SERVER_EVENTS      random-tree size (default 60 basic events)
    BENCH_SERVER_RPS_REQS    requests in the throughput run (default 200)
    BENCH_REPEATS            latency repeats per warm arm (default 5)

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_server.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_server.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import threading
import time

from bench_json import record_run

from repro.casestudy import build_covid_tree
from repro.ft.random_trees import RandomTreeConfig, random_tree
from repro.service import AnalysisServer, ServerConfig

UNIFORM = 0.01


class ServerHandle:
    """An in-process `bfl serve` instance on an ephemeral port."""

    def __init__(self, trees, store_path):
        self.server = AnalysisServer(
            trees,
            ServerConfig(port=0, store_path=store_path, pool_size=8),
        )
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.server.run,
            kwargs={
                "ready": lambda _s: ready.set(),
                "install_signal_handlers": False,
            },
            daemon=True,
        )
        self.thread.start()
        if not ready.wait(30):
            raise RuntimeError("server did not come up")
        self.connection = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=120
        )

    def post(self, path, payload):
        self.connection.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = self.connection.getresponse()
        data = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(
                f"{path} -> {response.status}: {data}"
            )
        return data

    def stop(self):
        self.connection.close()
        self.server.request_drain()
        self.thread.join(30)


def normalised_rows(report):
    """Result rows with timings zeroed (agreement comparisons)."""
    return [
        {**row, "elapsed_ms": 0.0} for row in report["results"]
    ]


def main() -> int:
    floor = float(os.environ.get("BENCH_MIN_WARM_SPEEDUP", "1"))
    events = int(os.environ.get("BENCH_SERVER_EVENTS", "70"))
    rps_requests = int(os.environ.get("BENCH_SERVER_RPS_REQS", "200"))
    repeats = int(os.environ.get("BENCH_REPEATS", "5"))

    # Seed 5 at the default size yields a ~73k-node kernel: a cold
    # build in the hundreds of milliseconds against a ~15 ms binary
    # snapshot load, so the gated ratio has real headroom.
    config = RandomTreeConfig(
        n_basic_events=events, max_children=5, max_depth=8, p_share=0.3
    )
    big = random_tree(5, config)
    covid = build_covid_tree()
    trees = {"default": covid, "big": big}
    battery = {
        "queries": [
            {"id": "b1", "formula": f"exists {big.top}", "tree": "big"},
            {
                "id": "b2",
                "kind": "probability",
                "formula": big.top,
                "tree": "big",
            },
        ],
        "uniform": UNIFORM,
    }
    store_path = os.path.join(
        tempfile.mkdtemp(prefix="bfl-bench-server-"), "store"
    )

    print("bfl serve cache-tier benchmark")
    print(
        f"  big tree: {len(big.basic_events)} basic events, "
        f"{len(big.elements)} elements"
    )

    # --- cold: fresh server, empty store -----------------------------
    cold_server = ServerHandle(trees, store_path)
    start = time.perf_counter()
    cold_report = cold_server.post("/battery", battery)
    cold_ms = (time.perf_counter() - start) * 1000.0

    # --- warm: the same server again (live pool hit) -----------------
    warm_ms = []
    warm_report = None
    for _ in range(repeats):
        start = time.perf_counter()
        warm_report = cold_server.post("/battery", battery)
        warm_ms.append((time.perf_counter() - start) * 1000.0)
    warm_ms = sorted(warm_ms)[len(warm_ms) // 2]
    # Drain persists the pooled sessions into the store — exactly what
    # a SIGTERM'd production server does.
    cold_server.stop()

    # --- rewarm: a NEW server over the populated store ---------------
    rewarm_server = ServerHandle(trees, store_path)
    rewarm_ms = []
    rewarm_report = None
    for attempt in range(repeats):
        if attempt > 0:
            # Measure the store path every time: evict the pooled
            # session so the request has to re-load the snapshot.
            for key in rewarm_server.server.pool.keys():
                rewarm_server.server.pool.discard(key)
        start = time.perf_counter()
        rewarm_report = rewarm_server.post("/battery", battery)
        rewarm_ms.append((time.perf_counter() - start) * 1000.0)
    rewarm_ms = sorted(rewarm_ms)[len(rewarm_ms) // 2]
    rewarms = rewarm_server.server._counters["rewarms"]

    # --- agreement: all three arms answer identically ----------------
    reference = normalised_rows(cold_report)
    agree = (
        normalised_rows(warm_report) == reference
        and normalised_rows(rewarm_report) == reference
        and all(row["ok"] for row in reference)
    )

    # --- sustained throughput on the warm pool (covid battery) -------
    mixed = {
        "queries": [
            {"id": "m1", "formula": "exists IWoS"},
            {"id": "m2", "kind": "mcs"},
            {"id": "m3", "kind": "probability", "formula": "IWoS"},
        ],
        "uniform": UNIFORM,
    }
    rewarm_server.post("/battery", mixed)  # build the covid session
    start = time.perf_counter()
    for _ in range(rps_requests):
        rewarm_server.post("/battery", mixed)
    rps_elapsed = time.perf_counter() - start
    rps = rps_requests / rps_elapsed
    qps = rps * len(mixed["queries"])
    rewarm_server.stop()

    cold_over_warm = cold_ms / warm_ms if warm_ms > 0 else float("inf")
    cold_over_rewarm = (
        cold_ms / rewarm_ms if rewarm_ms > 0 else float("inf")
    )
    print(f"  cold request (build from tree):   {cold_ms:9.1f} ms")
    print(f"  warm request (live pool hit):     {warm_ms:9.1f} ms")
    print(f"  rewarm request (snapshot store):  {rewarm_ms:9.1f} ms")
    print(f"  cold / warm:   {cold_over_warm:6.1f}x")
    print(f"  cold / rewarm: {cold_over_rewarm:6.1f}x  (floor {floor:g}x)")
    print(f"  store rewarms observed: {rewarms}")
    print(
        f"  sustained: {rps:7.1f} requests/sec "
        f"({qps:.1f} queries/sec, {rps_requests} keep-alive requests)"
    )
    print(f"  agreement across tiers: {'OK' if agree else 'MISMATCH'}")

    record_run(
        "server",
        {
            "events": events,
            "cold_ms": round(cold_ms, 2),
            "warm_ms": round(warm_ms, 2),
            "rewarm_ms": round(rewarm_ms, 2),
            "cold_over_warm": round(cold_over_warm, 2),
            "cold_over_rewarm": round(cold_over_rewarm, 2),
            "requests_per_sec": round(rps, 1),
            "queries_per_sec": round(qps, 1),
            "rps_requests": rps_requests,
            "floor": floor,
            "agreement": agree,
            "gated": floor > 1,
        },
    )

    if not agree:
        print("FAIL: cache tiers disagree")
        return 1
    if rewarms < 1:
        print("FAIL: the rewarm arm never touched the snapshot store")
        return 1
    if cold_over_rewarm < floor:
        print(
            f"FAIL: cold/rewarm {cold_over_rewarm:.1f}x is under the "
            f"{floor:g}x floor"
        )
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
