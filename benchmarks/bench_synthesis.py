"""Repair-candidate sweep: BDD quantification vs vector enumeration.

The workload is the study-shaped question behind the ``synthesize``
query kind: "across many candidate repair sets, which events *must*
fail, which must be repaired, and which are free?"  A sweep of
``BENCH_SYNTH_SETS`` (>= 200) candidate sets runs against two families:

* the paper's COVID-19 ward tree with the Sec. VII-flavoured property
  ``IWoS /\\ !IS`` (ward fails although no surface is infected);
* seeded random trees (``repro.ft.random_tree``) with ``top /\\ !e``
  properties, so the sweep also covers VOT gates and shared subtrees.

The *quantification* arm is the production path
(:func:`repro.checker.synthesis.synthesis_regions`): project the
property's BDD onto the candidates with existential quantification,
classify each candidate with two ``restrict`` calls — no vector
enumeration, warm translator cache across the whole sweep.  The
*enumeration* arm is the reference oracle
(:func:`synthesis_regions_enumeration`): all ``2^n`` status vectors
through the reference semantics.  Enumeration runs on a deterministic
sample of the sweep (``BENCH_SYNTH_ENUM_SAMPLE`` sets — full
enumeration of hundreds of 2^13 sweeps would dominate the benchmark
without changing the verdict); **agreement is asserted on every
enumerated set regardless of gating**, and the speedup floor compares
the two arms on exactly those sampled sets.

Gated in CI via ``benchmarks/run_gates.py``: quantification must beat
enumeration by ``BENCH_MIN_SYNTH_SPEEDUP`` (CI pins 5).

Env:
    BENCH_SYNTH_SETS          candidate sets in the sweep (default 220)
    BENCH_SYNTH_ENUM_SAMPLE   sets cross-checked by enumeration (default 20)
    BENCH_MIN_SYNTH_SPEEDUP   speedup floor (default 1)

Run directly for a self-checking report::

    PYTHONPATH=src python benchmarks/bench_synthesis.py

Direct runs append a machine-readable record to
``benchmarks/results/BENCH_synthesis.json`` keyed by ``BENCH_LABEL``.
"""

from __future__ import annotations

import os
import random
import time

from bench_json import record_run

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.checker.synthesis import (
    synthesis_regions,
    synthesis_regions_enumeration,
)
from repro.ft import RandomTreeConfig, random_tree
from repro.logic.ast_nodes import Atom, Not


def build_workload(total_sets: int):
    """``(label, tree, checker, formula, candidate_sets)`` per family.

    Candidate sets are drawn with a fixed seed: every run of this
    benchmark sweeps the identical workload.
    """
    rng = random.Random(20220627)  # the paper's DSN 2022 vintage
    families = []

    covid = build_covid_tree()
    families.append(
        (
            "covid",
            covid,
            Atom(covid.top) & Not(Atom("IS")),
        )
    )
    for seed in (11, 23):
        tree = random_tree(
            seed,
            RandomTreeConfig(
                n_basic_events=10,
                max_children=3,
                p_vot=0.3,
                p_share=0.3,
                max_depth=4,
            ),
        )
        avoid = sorted(tree.basic_events)[seed % 3]
        families.append(
            (f"random-{seed}", tree, Atom(tree.top) & Not(Atom(avoid)))
        )

    per_family = (total_sets + len(families) - 1) // len(families)
    workload = []
    for label, tree, formula in families:
        events = sorted(tree.basic_events)
        sets = [[name] for name in events]  # every single-event repair
        while len(sets) < per_family:
            width = rng.randint(2, min(6, len(events)))
            sets.append(sorted(rng.sample(events, width)))
        workload.append((label, tree, formula, sets[:per_family]))
    return workload


def main() -> int:
    total_sets = int(os.environ.get("BENCH_SYNTH_SETS", "220"))
    sample_size = int(os.environ.get("BENCH_SYNTH_ENUM_SAMPLE", "20"))
    floor = float(os.environ.get("BENCH_MIN_SYNTH_SPEEDUP", "1"))

    workload = build_workload(total_sets)
    swept = sum(len(sets) for _, _, _, sets in workload)
    print(
        f"synthesis sweep: {swept} candidate sets over "
        f"{len(workload)} families, enumeration cross-check on "
        f"~{sample_size} sets"
    )

    # --- quantification arm: the full sweep on warm translators -------
    checkers = {
        label: ModelChecker(tree) for label, tree, _, _ in workload
    }
    quant_results = {}
    t0 = time.perf_counter()
    for label, _, formula, sets in workload:
        translator = checkers[label].translator
        for index, candidates in enumerate(sets):
            quant_results[(label, index)] = synthesis_regions(
                translator, formula, candidates
            )
    quant_total_s = time.perf_counter() - t0

    # --- enumeration arm: deterministic sample, agreement enforced ----
    flat = [
        (label, tree, formula, index, candidates)
        for label, tree, formula, sets in workload
        for index, candidates in enumerate(sets)
    ]
    stride = max(1, len(flat) // sample_size)
    sampled = flat[::stride][:sample_size]

    enum_s = 0.0
    quant_sampled_s = 0.0
    disagreements = 0
    for label, tree, formula, index, candidates in sampled:
        translator = checkers[label].translator
        t0 = time.perf_counter()
        fast = synthesis_regions(translator, formula, candidates)
        quant_sampled_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        oracle = synthesis_regions_enumeration(tree, formula, candidates)
        enum_s += time.perf_counter() - t0
        if fast != oracle:
            disagreements += 1
            print(f"  DISAGREEMENT [{label} #{index}] {candidates}")
        if fast != quant_results[(label, index)]:
            disagreements += 1
            print(f"  NON-DETERMINISTIC [{label} #{index}] {candidates}")

    speedup = (
        enum_s / quant_sampled_s if quant_sampled_s > 0 else float("inf")
    )
    per_set_ms = quant_total_s / swept * 1000.0

    print(
        f"quantification: {swept} sets in {quant_total_s:.3f}s "
        f"({per_set_ms:.3f} ms/set)"
    )
    print(
        f"enumeration:    {len(sampled)} sets in {enum_s:.3f}s "
        f"(same sets via quantification: {quant_sampled_s:.3f}s)"
    )
    print(f"speedup on the enumerated sample: {speedup:.1f}x")

    gated = floor > 0
    ok = disagreements == 0 and (not gated or speedup >= floor)
    record_run(
        "synthesis",
        {
            "sets": swept,
            "families": [label for label, _, _, _ in workload],
            "enum_sample": len(sampled),
            "quant_total_s": round(quant_total_s, 6),
            "quant_ms_per_set": round(per_set_ms, 6),
            "enum_sample_s": round(enum_s, 6),
            "quant_sample_s": round(quant_sampled_s, 6),
            "speedup": round(speedup, 3),
            "min_speedup": floor,
            "agreement": disagreements == 0,
            "gated": gated,
            "ok": ok,
        },
    )

    if disagreements:
        print(f"FAIL: {disagreements} disagreement(s) with the oracle")
        return 1
    if gated and speedup < floor:
        print(f"FAIL: speedup {speedup:.1f}x below floor {floor:g}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
