"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a table or figure of the paper (or an ablation
DESIGN.md calls for) and *asserts the paper-reported shape* before timing,
so `pytest benchmarks/ --benchmark-only` doubles as a reproduction check.
"""

from __future__ import annotations

import pytest

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker


@pytest.fixture(scope="session")
def covid_tree():
    return build_covid_tree()


@pytest.fixture(scope="session")
def covid_checker(covid_tree):
    return ModelChecker(covid_tree)
