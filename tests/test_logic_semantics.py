"""The enumerative reference semantics (paper Sec. III-B)."""

import pytest

from repro.errors import LogicError, StatusVectorError
from repro.ft import FaultTreeBuilder, figure1_tree
from repro.logic import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Evidence,
    Exists,
    Forall,
    IDP,
    Not,
    ReferenceSemantics,
    Vot,
    parse,
)


@pytest.fixture(scope="module")
def fig1():
    return figure1_tree()


@pytest.fixture(scope="module")
def semantics(fig1):
    return ReferenceSemantics(fig1)


class TestLayer1:
    def test_atom_uses_structure_function(self, fig1, semantics):
        vector = fig1.vector_from_failed(["IW", "H3"])
        assert semantics.holds(Atom("CP"), vector)
        assert semantics.holds(Atom("CP/R"), vector)
        assert not semantics.holds(Atom("CR"), vector)

    def test_boolean_connectives(self, fig1, semantics):
        vector = fig1.vector_from_failed(["IW"])
        assert semantics.holds(parse("IW & !H3"), vector)
        assert semantics.holds(parse("IW | H3"), vector)
        assert semantics.holds(parse("H3 => IW"), vector)
        assert semantics.holds(parse("IW <!> H3"), vector)

    def test_evidence_overrides_vector(self, fig1, semantics):
        vector = fig1.vector_from_failed([])
        assert semantics.holds(parse("CP[IW := 1, H3 := 1]"), vector)

    def test_paper_remark_evidence_is_not_conjunction(self, fig1, semantics):
        # (not e)[e -> 0] is true everywhere; (not e) and (not e) is not.
        vector = fig1.vector_from_failed(["IW"])
        evidence = Evidence(Not(Atom("IW")), (("IW", False),))
        conjunction = And(Not(Atom("IW")), Not(Atom("IW")))
        assert semantics.holds(evidence, vector)
        assert not semantics.holds(conjunction, vector)

    def test_evidence_on_gate_rejected(self, fig1, semantics):
        vector = fig1.vector_from_failed([])
        with pytest.raises(LogicError):
            semantics.holds(parse("CP[CR := 1]"), vector)

    def test_unknown_atom_rejected(self, fig1, semantics):
        with pytest.raises(LogicError):
            semantics.holds(Atom("nope"), fig1.vector_from_failed([]))

    def test_vector_required_for_layer1(self, semantics):
        with pytest.raises(StatusVectorError):
            semantics.holds(Atom("IW"))

    def test_vot_counts_formulae(self, fig1, semantics):
        vector = fig1.vector_from_failed(["IW", "IT"])
        vot = Vot(">=", 2, (Atom("IW"), Atom("IT"), Atom("H2")))
        assert semantics.holds(vot, vector)
        assert not semantics.holds(
            Vot(">=", 3, (Atom("IW"), Atom("IT"), Atom("H2"))), vector
        )


class TestMCSMPS:
    def test_mcs_vectors_fig1(self, fig1, semantics):
        assert semantics.holds(
            MCS(Atom("CP/R")), fig1.vector_from_failed(["IW", "H3"])
        )
        assert not semantics.holds(
            MCS(Atom("CP/R")), fig1.vector_from_failed(["IW", "H3", "IT"])
        )
        assert not semantics.holds(
            MCS(Atom("CP/R")), fig1.vector_from_failed(["IW"])
        )

    def test_mps_vectors_fig1(self, fig1, semantics):
        assert semantics.holds(
            MPS(Atom("CP/R")), fig1.vector_from_operational(["IW", "IT"])
        )
        assert not semantics.holds(
            MPS(Atom("CP/R")),
            fig1.vector_from_operational(["IW", "IT", "H2"]),
        )

    def test_mcs_over_compound_formula(self, fig1, semantics):
        # Minimal vectors satisfying CP and CR: all four events failed.
        formula = MCS(And(Atom("CP"), Atom("CR")))
        everything = fig1.vector_from_failed(["IW", "H3", "IT", "H2"])
        assert semantics.holds(formula, everything)

    def test_nested_minimal_operators(self, fig1, semantics):
        # MCS(MPS(...)-free operand) nested inside evidence still evaluates.
        formula = Evidence(MCS(Atom("CP")), (("IT", True),))
        vector = fig1.vector_from_failed(["IW", "H3"])
        assert semantics.holds(formula, vector)


class TestLayer2:
    def test_exists_forall(self, semantics):
        assert semantics.holds(Exists(Atom("CP/R")))
        assert not semantics.holds(Forall(Atom("CP/R")))
        assert semantics.holds(Forall(parse("CP => CP/R")))

    def test_idp_disjoint_subtrees(self, semantics):
        assert semantics.holds(IDP(Atom("CP"), Atom("CR")))
        assert not semantics.holds(IDP(Atom("CP"), Atom("CP/R")))

    def test_sup(self, semantics):
        assert not semantics.holds(SUP("IW"))

    def test_sup_of_disconnected_influence(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("g", "a", "b")
            .and_gate("top", "g", "a")
            .build("top")
        )
        semantics = ReferenceSemantics(tree)
        # top == a regardless of b, so b is superfluous.
        assert semantics.holds(SUP("b"))
        assert not semantics.holds(SUP("a"))


class TestIBE:
    def test_ibe_of_gate_is_its_relevant_leaves(self, semantics):
        assert semantics.influencing_basic_events(Atom("CP")) == frozenset(
            {"IW", "H3"}
        )

    def test_ibe_of_constant_is_empty(self, semantics):
        assert semantics.influencing_basic_events(parse("true")) == frozenset()

    def test_ibe_of_tautology_is_empty(self, semantics):
        assert semantics.influencing_basic_events(
            parse("IW | !IW")
        ) == frozenset()

    def test_ibe_cache_returns_same_result(self, semantics):
        first = semantics.influencing_basic_events(Atom("CP/R"))
        second = semantics.influencing_basic_events(Atom("CP/R"))
        assert first == second == frozenset({"IW", "H3", "IT", "H2"})


class TestSatisfyingVectors:
    def test_fig1_mcs_satisfying_vectors(self, fig1, semantics):
        vectors = semantics.satisfying_vectors(MCS(Atom("CP/R")))
        failed = {
            frozenset(n for n, v in vector.items() if v) for vector in vectors
        }
        assert failed == {
            frozenset({"IW", "H3"}),
            frozenset({"IT", "H2"}),
        }

    def test_too_many_basic_events_rejected(self):
        from repro.ft import RandomTreeConfig, random_tree

        big = random_tree(1, RandomTreeConfig(n_basic_events=23))
        with pytest.raises(LogicError):
            ReferenceSemantics(big)
