"""The BFL DSL: parsing, precedence, errors, and print/parse round-trips."""

import pytest
from hypothesis import given, settings

from repro.errors import BFLSyntaxError
from repro.ft import figure1_tree
from repro.logic import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    Vot,
    format_formula,
    format_statement,
    parse,
    parse_formula,
    parse_request,
)

from bfl_strategies import formulas_for


class TestBasics:
    def test_atom(self):
        assert parse("IW") == Atom("IW")

    def test_quoted_atom_with_slash(self):
        assert parse('"CP/R"') == Atom("CP/R")

    def test_bare_name_with_slash(self):
        assert parse("CP/R") == Atom("CP/R")

    def test_constants(self):
        assert parse("true") == Constant(True)
        assert parse("FALSE") == Constant(False)

    def test_not_variants(self):
        assert parse("!A") == Not(Atom("A"))
        assert parse("~A") == Not(Atom("A"))

    def test_and_or_variants(self):
        assert parse("A & B") == And(Atom("A"), Atom("B"))
        assert parse("A && B") == And(Atom("A"), Atom("B"))
        assert parse("A | B") == Or(Atom("A"), Atom("B"))
        assert parse("A || B") == Or(Atom("A"), Atom("B"))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse("A | B & C") == Or(Atom("A"), And(Atom("B"), Atom("C")))

    def test_or_binds_tighter_than_implies(self):
        assert parse("A | B => C") == Implies(
            Or(Atom("A"), Atom("B")), Atom("C")
        )

    def test_implies_is_right_associative(self):
        assert parse("A => B => C") == Implies(
            Atom("A"), Implies(Atom("B"), Atom("C"))
        )

    def test_equiv_lowest(self):
        assert parse("A => B <=> C") == Equiv(
            Implies(Atom("A"), Atom("B")), Atom("C")
        )

    def test_nequiv(self):
        assert parse("A <!> B") == NotEquiv(Atom("A"), Atom("B"))

    def test_not_binds_tightest(self):
        assert parse("!A & B") == And(Not(Atom("A")), Atom("B"))

    def test_parentheses_override(self):
        assert parse("A & (B | C)") == And(Atom("A"), Or(Atom("B"), Atom("C")))


class TestOperators:
    def test_mcs_mps(self):
        assert parse("MCS(A & B)") == MCS(And(Atom("A"), Atom("B")))
        assert parse("mps(A)") == MPS(Atom("A"))

    def test_evidence_assign_variants(self):
        expected = Evidence(Atom("A"), (("H1", False),))
        assert parse("A[H1 := 0]") == expected
        assert parse("A[H1 -> 0]") == expected
        assert parse("A[H1 |-> 0]") == expected

    def test_evidence_multiple_assignments(self):
        assert parse("A[H1 := 0, H2 := 1]") == Evidence(
            Atom("A"), (("H1", False), ("H2", True))
        )

    def test_evidence_chains(self):
        formula = parse("A[H1 := 0][H2 := 1]")
        assert formula == Evidence(
            Evidence(Atom("A"), (("H1", False),)), (("H2", True),)
        )

    def test_vot_default_geq(self):
        formula = parse("VOT(>= 2; A, B, C)")
        assert formula == Vot(">=", 2, (Atom("A"), Atom("B"), Atom("C")))

    @pytest.mark.parametrize("op", ["<", "<=", "=", ">=", ">"])
    def test_vot_all_operators(self, op):
        formula = parse(f"VOT({op} 1; A, B)")
        assert isinstance(formula, Vot)
        assert formula.operator == op

    def test_vot_over_formulae(self):
        formula = parse("VOT(>= 1; A & B, !C)")
        assert formula.operands == (And(Atom("A"), Atom("B")), Not(Atom("C")))


class TestLayer2:
    def test_exists_forall(self):
        assert parse("exists (A & B)") == Exists(And(Atom("A"), Atom("B")))
        assert parse("forall A => B") == Forall(Implies(Atom("A"), Atom("B")))

    def test_idp(self):
        assert parse("IDP(CIO, CIS)") == IDP(Atom("CIO"), Atom("CIS"))

    def test_sup(self):
        assert parse("SUP(PP)") == SUP("PP")

    def test_layer2_inside_formula_rejected(self):
        with pytest.raises(BFLSyntaxError):
            parse("A & exists B")

    def test_parse_formula_rejects_queries(self):
        with pytest.raises(BFLSyntaxError):
            parse_formula("forall A")

    def test_parse_request_detects_satset_brackets(self):
        statement, satset = parse_request("[[ MCS(IWoS) & H4 ]]")
        assert satset
        assert statement == And(MCS(Atom("IWoS")), Atom("H4"))
        statement, satset = parse_request("MCS(IWoS)")
        assert not satset


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "A &",
            "(A",
            "A[H1]",
            "A[H1 := 2]",
            "MCS A",
            "VOT(2; A)",  # missing comparison is allowed? no: default needs NUMBER after '('
            "A @ B",
            'IDP(A)',
            "SUP()",
        ],
    )
    def test_rejected_inputs(self, text):
        with pytest.raises(BFLSyntaxError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(BFLSyntaxError) as excinfo:
            parse("A &\n& B")
        assert excinfo.value.line == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(BFLSyntaxError):
            parse("A B")


class TestPaperFormulae:
    """Every BFL formula printed in the paper parses."""

    @pytest.mark.parametrize(
        "text",
        [
            "forall (IS => MoT)",
            "forall (MoT => (H1 | H2 | H3 | H4 | H5))",
            "forall (H4 => IWoS)",
            "forall (VOT(>= 2; H1, H2, H3, H4, H5) => IWoS)",
            "MCS(IWoS) & H4",
            "MPS(IWoS)[H1 := 0, H2 := 0, H3 := 0, H4 := 0, H5 := 0]",
            "IDP(CIO, CIS)",
            "SUP(PP)",
            'forall (CP => "CP/R")',
            "exists (CP & CR)",
            "MCS(e1) & MCS(e3)",
            "MPS(e1) & MPS(e3)",
        ],
    )
    def test_parses(self, text):
        parse(text)


class TestRoundTrip:
    @given(formula=formulas_for(figure1_tree(), allow_minimal_ops=True))
    @settings(max_examples=120, deadline=None)
    def test_format_parse_round_trip(self, formula):
        assert parse(format_formula(formula)) == formula

    def test_statement_round_trip(self):
        for text in [
            "forall (A => B)",
            "exists (MCS(A))",
            "IDP(A, B & C)",
            "SUP(PP)",
        ]:
            statement = parse(text)
            assert parse(format_statement(statement)) == statement

    def test_quoting_of_awkward_names(self):
        formula = Atom("weird name")
        assert format_formula(formula) == '"weird name"'
        assert parse(format_formula(formula)) == formula

    def test_keyword_like_names_quoted(self):
        formula = Atom("mcs")
        assert parse(format_formula(formula)) == formula
