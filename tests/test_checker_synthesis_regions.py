"""Repair-region synthesis: BDD quantification vs the enumeration oracle.

``synthesis_regions`` answers SYNTHESIZE queries by projecting the
property's BDD onto the candidate events (existential quantification +
per-candidate restricts — no vector enumeration).
``synthesis_regions_enumeration`` recomputes the same decomposition from
the reference semantics over all ``2^n`` vectors.  The hypothesis suite
here cross-validates the two on random trees, random layer-1 formulae
and random candidate subsets; the deterministic tests pin the covid-tree
behaviour, the ``SYNTHESIZE(...)`` statement form, and the error paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from bfl_strategies import formulas_for, small_trees
from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.checker.synthesis import (
    SynthesisRegions,
    synthesis_regions,
    synthesis_regions_enumeration,
)
from repro.errors import LogicError, SynthesisError
from repro.logic.ast_nodes import Atom, Synthesize
from repro.logic.parser import (
    BFLSyntaxError,
    format_statement,
    parse_request,
)


# ----------------------------------------------------------------------
# Hypothesis: quantification == enumeration
# ----------------------------------------------------------------------


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(tree=small_trees(max_basic_events=5), data=st.data())
def test_regions_match_enumeration(tree, data):
    formula = data.draw(formulas_for(tree), label="formula")
    names = sorted(tree.basic_events)
    candidates = data.draw(
        st.one_of(
            st.none(),
            st.lists(st.sampled_from(names), unique=True, max_size=len(names)),
        ),
        label="candidates",
    )
    checker = ModelChecker(tree)
    fast = synthesis_regions(checker.translator, formula, candidates)
    oracle = synthesis_regions_enumeration(tree, formula, candidates)
    assert fast == oracle


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(tree=small_trees(max_basic_events=5), data=st.data())
def test_region_partition_invariants(tree, data):
    """must-1, must-0 and don't-care partition the candidates, and the
    choice count is consistent with the partition."""
    formula = data.draw(formulas_for(tree), label="formula")
    checker = ModelChecker(tree)
    regions = synthesis_regions(checker.translator, formula)
    parts = (
        set(regions.must_1) | set(regions.must_0) | set(regions.dont_care)
    )
    if regions.satisfiable:
        assert parts == set(regions.candidates)
        assert not set(regions.must_1) & set(regions.must_0)
        assert 1 <= regions.choices <= 2 ** len(regions.candidates)
        # every forced candidate halves the reachable assignment space
        forced = len(regions.must_1) + len(regions.must_0)
        assert regions.choices <= 2 ** (len(regions.candidates) - forced)
    else:
        assert parts == set()
        assert regions.choices == 0


# ----------------------------------------------------------------------
# Deterministic pins on the paper's covid tree
# ----------------------------------------------------------------------


class TestCovidRegions:
    def test_restricted_candidates(self):
        checker = ModelChecker(build_covid_tree())
        regions = checker.synthesize(
            "IWoS /\\ !IS", candidates=["H1", "H2", "IS"]
        )
        assert regions.satisfiable
        assert regions.must_1 == ("H1",)
        assert regions.must_0 == ("IS",)
        assert regions.dont_care == ("H2",)
        assert regions.choices == 2

    def test_default_candidates_are_all_basic_events(self):
        tree = build_covid_tree()
        regions = ModelChecker(tree).synthesize("IWoS")
        assert set(regions.candidates) == set(tree.basic_events)
        # every way the hospital fails has both H1 and VW failed
        assert set(regions.must_1) == {"H1", "VW"}
        assert regions.must_0 == ()

    def test_statement_form_equals_candidates_argument(self):
        checker = ModelChecker(build_covid_tree())
        via_text = checker.synthesize("SYNTHESIZE(IWoS /\\ !IS; H1, H2, IS)")
        via_arg = checker.synthesize(
            "IWoS /\\ !IS", candidates=["H1", "H2", "IS"]
        )
        assert via_text == via_arg

    def test_unsatisfiable_property(self):
        regions = ModelChecker(build_covid_tree()).synthesize("IWoS & !IWoS")
        assert regions == SynthesisRegions(
            candidates=regions.candidates,
            satisfiable=False,
            must_1=(),
            must_0=(),
            dont_care=(),
            choices=0,
        )

    def test_to_dict_shape(self):
        regions = ModelChecker(build_covid_tree()).synthesize(
            "IWoS", candidates=["H1", "VW"]
        )
        payload = regions.to_dict()
        assert payload == {
            "candidates": ["H1", "VW"],
            "satisfiable": True,
            "must_1": ["H1", "VW"],
            "must_0": [],
            "dont_care": [],
            "choices": 1,
        }


# ----------------------------------------------------------------------
# The SYNTHESIZE statement form
# ----------------------------------------------------------------------


class TestSynthesizeParsing:
    def test_round_trip_without_candidates(self):
        statement, _ = parse_request("SYNTHESIZE(IWoS & !IS)")
        assert isinstance(statement, Synthesize)
        assert statement.candidates == ()
        assert parse_request(format_statement(statement))[0] == statement

    def test_round_trip_with_candidates(self):
        statement, _ = parse_request("synthesize(MCS(IWoS); H1, H2)")
        assert isinstance(statement, Synthesize)
        assert statement.candidates == ("H1", "H2")
        assert parse_request(format_statement(statement))[0] == statement

    def test_duplicate_candidates_rejected(self):
        with pytest.raises(BFLSyntaxError, match="distinct"):
            parse_request("SYNTHESIZE(IWoS; H1, H1)")

    def test_layer2_body_rejected(self):
        with pytest.raises(BFLSyntaxError):
            parse_request("SYNTHESIZE(forall IWoS)")

    def test_nested_statement_rejected(self):
        with pytest.raises(BFLSyntaxError):
            parse_request("exists SYNTHESIZE(IWoS)")


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------


class TestSynthesisErrors:
    def test_unknown_candidate(self):
        checker = ModelChecker(build_covid_tree())
        with pytest.raises(SynthesisError, match="unknown"):
            checker.synthesize("IWoS", candidates=["NOPE"])

    def test_gate_as_candidate(self):
        checker = ModelChecker(build_covid_tree())
        with pytest.raises(SynthesisError, match="basic events"):
            checker.synthesize("IWoS", candidates=["MoT"])

    def test_duplicate_candidate_argument(self):
        checker = ModelChecker(build_covid_tree())
        with pytest.raises(SynthesisError, match="distinct"):
            synthesis_regions(checker.translator, Atom("IWoS"), ["H1", "H1"])

    def test_text_and_argument_candidates_clash(self):
        checker = ModelChecker(build_covid_tree())
        with pytest.raises(LogicError, match="not both"):
            checker.synthesize("SYNTHESIZE(IWoS; H1)", candidates=["H2"])
