"""Complement-edge kernel guarantees: O(1) negation, canonical form,
iterative inspection, and cross-validation against the reference
semantics.

These tests pin down the contract introduced by the integer-handle
rewrite of ``repro.bdd``:

* ``negate`` is a complement-bit flip — zero unique-table insertions and
  zero node-count growth, no matter how often it runs;
* every *stored* node has a regular (uncomplemented) high edge, children
  are distinct, and levels strictly increase towards the leaves
  (``BDDManager.check_invariants``);
* ``sat_count`` / ``support`` / ``iter_nodes`` are iterative and survive
  BDDs far deeper than Python's recursion limit;
* random BFL formulae translated onto the new kernel agree with the
  enumerative reference semantics vector-for-vector.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Ref
from repro.bdd.ref import Node
from repro.checker import FormulaTranslator, check
from repro.logic import ReferenceSemantics

from bfl_strategies import formulas_for, small_trees, vectors_for


@pytest.fixture()
def manager():
    return BDDManager(["a", "b", "c", "d"])


def _sample_function(manager):
    a, b, c, d = (manager.var(n) for n in "abcd")
    return manager.or_(
        manager.and_(a, manager.xor(b, c)), manager.and_(c, d)
    )


class TestO1Negation:
    def test_negate_performs_no_unique_table_insertions(self, manager):
        f = _sample_function(manager)
        before_nodes = manager.node_count()
        before_tables = manager.cache_stats()
        g = f
        for _ in range(1000):
            g = manager.negate(g)
        after_tables = manager.cache_stats()
        # Zero node-count growth across repeated negations ...
        assert manager.node_count() == before_nodes
        assert after_tables["unique_table_size"] == before_tables["unique_table_size"]
        assert after_tables["peak_live_nodes"] == before_tables["peak_live_nodes"]
        # ... and no memo-table traffic either: only the flip counter moves.
        for key in ("apply_cache_size", "ite_cache_size", "restrict_cache_size"):
            assert after_tables[key] == before_tables[key]
        assert after_tables["negations"] - before_tables["negations"] == 1000

    def test_negation_is_an_involutive_bit_flip(self, manager):
        f = _sample_function(manager)
        g = manager.negate(f)
        assert g is not f
        assert g.uid == f.uid ^ 1
        assert manager.negate(g) is f
        assert (~f) is g  # Ref.__invert__ sugar

    def test_negation_shares_every_node(self, manager):
        """f and ~f are the same DAG: the complement halves live nodes on
        negation-heavy workloads (the old kernel duplicated the DAG)."""
        f = _sample_function(manager)
        before = manager.node_count()
        manager.negate(f)
        assert manager.node_count() == before
        assert f.index == manager.negate(f).index

    def test_de_morgan_is_free_of_new_nodes(self, manager):
        a, b = manager.var("a"), manager.var("b")
        conj = manager.and_(a, b)
        before = manager.node_count()
        # nor/nand/or of already-built operands only flip bits around the
        # existing AND nodes.
        assert manager.apply("nand", a, b) is manager.negate(conj)
        assert manager.node_count() == before


class TestCanonicalForm:
    def test_stored_high_edges_are_regular(self, manager):
        f = _sample_function(manager)
        manager.negate(f)
        manager.ite(f, manager.var("b"), manager.nvar("d"))
        manager.check_invariants()

    def test_public_mk_normalises_complemented_high(self, manager):
        b = manager.var("b")
        node = manager.mk(0, manager.true, manager.negate(b))
        # The canonical store keeps the high edge regular; the semantic
        # view through Ref still shows the requested cofactors.
        assert node.complemented
        assert node.low is manager.true
        assert node.high is manager.negate(b)
        manager.check_invariants()

    def test_terminal_edges_share_the_stored_terminal(self, manager):
        assert manager.true.index == 0
        assert manager.false.index == 0
        assert manager.false.uid == manager.true.uid ^ 1
        assert manager.true.value is True
        assert manager.false.value is False

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_op_programs_keep_invariants(self, data):
        names = ["v1", "v2", "v3", "v4", "v5"]
        m = BDDManager(names)
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(
                        ["and", "or", "xor", "xnor", "nand", "nor", "implies"]
                    ),
                    st.sampled_from(names),
                    st.booleans(),
                ),
                max_size=10,
            )
        )
        expr = m.var(names[0])
        for op, name, neg in ops:
            literal = m.var(name)
            if neg:
                literal = m.negate(literal)
            expr = m.apply(op, expr, literal)
        m.check_invariants()
        # The semantic DAG seen through Ref never exposes a complemented
        # high edge pair that collides: distinct reachable refs denote
        # distinct functions.
        uids = [node.uid for node in expr.iter_nodes()]
        assert len(uids) == len(set(uids))


class TestIterativeInspection:
    """sat_count/support/iter_nodes on BDDs deeper than the recursion
    limit (chains built through the non-recursive ``mk``)."""

    DEPTH = 4000

    def _chain(self):
        names = [f"x{i}" for i in range(self.DEPTH)]
        m = BDDManager(names)
        node = m.true
        for level in range(self.DEPTH - 1, -1, -1):
            node = m.mk(level, m.false, node)  # AND of all variables
        return m, node

    def test_sat_count_survives_deep_chains(self):
        m, node = self._chain()
        assert m.sat_count(node) == 1
        # The complement counts by subtraction, still iteratively.
        assert m.sat_count(m.negate(node)) == 2**self.DEPTH - 1

    def test_support_survives_deep_chains(self):
        m, node = self._chain()
        assert len(m.support(node)) == self.DEPTH

    def test_iter_nodes_survives_deep_chains(self):
        m, node = self._chain()
        assert node.count_nodes() == self.DEPTH + 2

    def test_evaluate_survives_deep_chains(self):
        m, node = self._chain()
        assignment = {f"x{i}": True for i in range(self.DEPTH)}
        assert m.evaluate(node, assignment) is True
        assignment["x3999"] = False
        assert m.evaluate(node, assignment) is False


class TestNodeAliasMigration:
    def test_node_is_ref(self):
        assert Node is Ref

    def test_old_surface_still_walks(self, manager):
        f = _sample_function(manager)
        node = f
        env = {"a": True, "b": True, "c": False, "d": False}
        while not node.is_terminal:
            name = manager.name_of(node.level)
            node = node.high if env[name] else node.low
        assert node.value is manager.evaluate(f, env)


class TestCrossValidation:
    """Random BFL formulae on the complement-edge kernel vs the
    truth-table reference semantics, with kernel invariants checked on
    every translated formula."""

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_formula_truth_tables_agree(self, data, tree):
        translator = FormulaTranslator(tree)
        semantics = ReferenceSemantics(tree)
        formula = data.draw(formulas_for(tree))
        names = list(tree.basic_events)
        for bits in itertools.product((False, True), repeat=len(names)):
            vector = dict(zip(names, bits))
            assert check(translator, formula, vector) == semantics.holds(
                formula, vector
            )
        translator.manager.check_invariants()

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_negation_agrees_and_stays_free(self, data, tree):
        from repro.logic.ast_nodes import Not

        translator = FormulaTranslator(tree)
        formula = data.draw(formulas_for(tree, allow_minimal_ops=False))
        root = translator.bdd(formula)
        nodes_before = translator.manager.node_count()
        negated = translator.bdd(Not(formula))
        assert translator.manager.node_count() == nodes_before
        assert negated is translator.manager.negate(root)
        vector = data.draw(vectors_for(tree))
        assert translator.manager.evaluate(negated, vector) is (
            not translator.manager.evaluate(root, vector)
        )
