"""BFL AST: construction helpers, traversal, validation, layer separation."""

import pytest

from repro.errors import LayerError
from repro.logic import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    Vot,
    atom,
    atoms,
    conj,
    disj,
    require_layer1,
)


class TestConstruction:
    def test_operator_overloading(self):
        a, b = atom("A"), atom("B")
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)
        assert (a >> b) == Implies(a, b)

    def test_named_combinators(self):
        a, b = atom("A"), atom("B")
        assert a.implies(b) == Implies(a, b)
        assert a.equiv(b) == Equiv(a, b)
        assert a.nequiv(b) == NotEquiv(a, b)

    def test_string_coercion_in_combinators(self):
        assert (atom("A") & "B") == And(Atom("A"), Atom("B"))
        with pytest.raises(TypeError):
            atom("A") & 42

    def test_given_builds_evidence(self):
        formula = atom("CP").given(H1=0, H2=1)
        assert formula == Evidence(Atom("CP"), (("H1", False), ("H2", True)))

    def test_atoms_helper(self):
        assert atoms("A", "B") == (Atom("A"), Atom("B"))

    def test_conj_disj(self):
        a, b, c = atoms("A", "B", "C")
        assert conj(a, b, c) == And(a, And(b, c))
        assert disj(a, b) == Or(a, b)
        assert conj() == Constant(True)
        assert disj() == Constant(False)

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_evidence_requires_assignments(self):
        with pytest.raises(ValueError):
            Evidence(Atom("A"), ())


class TestVotValidation:
    def test_valid_vot(self):
        v = Vot(">=", 2, atoms("A", "B", "C"))
        assert v.threshold == 2

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Vot("!=", 1, atoms("A"))

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Vot(">=", 4, atoms("A", "B"))

    def test_no_operands_rejected(self):
        with pytest.raises(ValueError):
            Vot(">=", 0, ())


class TestStructure:
    def test_atoms_collects_evidence_targets(self):
        formula = Evidence(And(Atom("A"), Atom("B")), (("C", True),))
        assert formula.atoms() == frozenset({"A", "B", "C"})

    def test_walk_is_preorder(self):
        a, b = atoms("A", "B")
        formula = And(Not(a), b)
        nodes = list(formula.walk())
        assert nodes[0] == formula
        assert Not(a) in nodes and b in nodes

    def test_formulae_are_hashable_cache_keys(self):
        first = MCS(And(Atom("A"), Atom("B")))
        second = MCS(And(Atom("A"), Atom("B")))
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_children(self):
        v = Vot(">=", 1, atoms("A", "B"))
        assert v.children() == atoms("A", "B")
        assert Atom("A").children() == ()
        assert MPS(Atom("A")).children() == (Atom("A"),)


class TestLayers:
    def test_require_layer1_accepts_formulae(self):
        formula = MCS(Atom("A"))
        assert require_layer1(formula) is formula

    @pytest.mark.parametrize(
        "query",
        [
            Exists(Atom("A")),
            Forall(Atom("A")),
            IDP(Atom("A"), Atom("B")),
            SUP("A"),
        ],
    )
    def test_require_layer1_rejects_queries(self, query):
        with pytest.raises(LayerError):
            require_layer1(query)

    def test_sup_requires_element(self):
        with pytest.raises(ValueError):
            SUP("")
