"""The `bfl serve` daemon: HTTP surface, cache tiers, parity, lifecycle.

The server's core claim is *parity by construction*: every battery is
evaluated by a real :class:`BatchAnalyzer` that adopts pooled sessions,
so HTTP answers must be query-for-query identical to a sequential batch
run — cold, warm (live pool) and rewarm (snapshot store after a
restart) alike.  The tests here drive a real listener over real
sockets; only timings are normalised before comparison.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from bfl_strategies import small_trees
from repro.service import (
    AnalysisServer,
    BatchAnalyzer,
    ServerConfig,
    SnapshotStore,
    TokenBucket,
)
from repro.service.server import ROUTES
from repro.testing.chaos import corrupt_store_entry

UNIFORM = 0.01

#: One query per registered kind (tests/test_engine_registry.py pins
#: the registry to exactly these nine).
ALL_KINDS = [
    {"id": "k-check", "kind": "check", "formula": "forall (IS => MoT)"},
    {"id": "k-sat", "kind": "satisfaction-set", "formula": "MCS(MoT) & IS"},
    {"id": "k-mcs", "kind": "mcs"},
    {"id": "k-mps", "kind": "mps"},
    {
        "id": "k-cex",
        "kind": "counterexample",
        "formula": "MCS(IWoS)",
        "failed": ["IW", "H3", "IT"],
    },
    {
        "id": "k-idp",
        "kind": "independence",
        "formula": "CIO",
        "other": "CIS",
    },
    {"id": "k-prob", "kind": "probability", "formula": "IWoS"},
    {
        "id": "k-sweep",
        "kind": "probability-sweep",
        "formula": "IWoS",
        "profiles": [{}, {"H1": 0.9}],
    },
    {
        "id": "k-synth",
        "kind": "synthesize",
        "formula": "IWoS /\\ !IS",
        "candidates": ["H1", "H2", "IS"],
    },
]


def normalised(rows):
    """Result rows with per-query timings zeroed."""
    return [{**row, "elapsed_ms": 0.0} for row in rows]


class ServerHarness:
    """A real AnalysisServer on an ephemeral port, in a thread."""

    def __init__(self, trees, config=None, **kwargs):
        self.server = AnalysisServer(
            trees, config or ServerConfig(port=0), **kwargs
        )
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.server.run,
            kwargs={
                "ready": lambda _s: ready.set(),
                "install_signal_handlers": False,
            },
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(30), "server did not come up"

    def request(self, method, path, payload=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=60
        )
        try:
            body = None if payload is None else json.dumps(payload)
            connection.request(method, path, body=body)
            response = connection.getresponse()
            data = json.loads(response.read())
            return response.status, data, dict(response.getheaders())
        finally:
            connection.close()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)

    def stop(self):
        self.server.request_drain()
        self.thread.join(30)
        assert not self.thread.is_alive()


@contextmanager
def running(trees, config=None, **kwargs):
    harness = ServerHarness(trees, config, **kwargs)
    try:
        yield harness
    finally:
        harness.stop()


@pytest.fixture(scope="module")
def covid_server(covid):
    harness = ServerHarness(covid)
    yield harness
    harness.stop()


class TestHTTPSurface:
    def test_healthz(self, covid_server):
        status, data, _ = covid_server.get("/healthz")
        assert status == 200
        assert data["status"] == "ok"
        assert data["scenarios"] == 1

    def test_unknown_path_404_lists_endpoints(self, covid_server):
        status, data, _ = covid_server.get("/nope")
        assert status == 404
        assert data["error_kind"] == "not-found"
        assert data["endpoints"] == [
            f"{route.method} {route.path}" for route in ROUTES
        ]

    def test_wrong_method_405_with_allow(self, covid_server):
        status, data, headers = covid_server.get("/battery")
        assert status == 405
        assert data["error_kind"] == "method-not-allowed"
        assert headers["Allow"] == "POST"
        status, data, _ = covid_server.request("POST", "/stats", {})
        assert status == 405

    def test_malformed_json_400(self, covid_server):
        connection = http.client.HTTPConnection(
            "127.0.0.1", covid_server.server.port, timeout=60
        )
        try:
            connection.request("POST", "/battery", body="{not json")
            response = connection.getresponse()
            data = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert data["error_kind"] == "bad-request"

    def test_server_state_fields_rejected(self, covid_server):
        status, data, _ = covid_server.post(
            "/battery", {"queries": ["exists IWoS"], "workers": 4}
        )
        assert status == 400
        assert "workers" in data["error"]
        assert "fixed at startup" in data["error"]

    def test_battery_without_queries_400(self, covid_server):
        status, data, _ = covid_server.post("/battery", {"uniform": 0.5})
        assert status == 400
        assert "queries" in data["error"]

    def test_bad_query_spec_400(self, covid_server):
        status, data, _ = covid_server.post(
            "/battery", {"queries": [{"kind": "no-such-kind"}]}
        )
        assert status == 400

    def test_scenarios_payload(self, covid_server, covid):
        status, data, _ = covid_server.get("/scenarios")
        assert status == 200
        (entry,) = data["scenarios"]
        assert entry["name"] == "default"
        assert entry["top"] == covid.top
        assert len(entry["fingerprint"]) == 64
        assert entry["stored"] is False  # no store configured

    def test_stats_payload_shape(self, covid_server):
        status, data, _ = covid_server.get("/stats")
        assert status == 200
        assert data["server"]["requests"]["total"] >= 1
        assert data["pool"]["capacity"] == 8
        assert data["store"] is None


class TestParity:
    def test_all_kinds_battery_matches_sequential_batch(
        self, covid_server, covid
    ):
        status, data, _ = covid_server.post(
            "/battery", {"queries": ALL_KINDS, "uniform": UNIFORM}
        )
        assert status == 200
        assert all(row["ok"] for row in data["results"])
        sequential = BatchAnalyzer(covid, uniform=UNIFORM).run(ALL_KINDS)
        assert normalised(data["results"]) == normalised(
            sequential.to_dict()["results"]
        )
        # A second, warm request answers identically (live pool hit).
        _, warm, _ = covid_server.post(
            "/battery", {"queries": ALL_KINDS, "uniform": UNIFORM}
        )
        assert normalised(warm["results"]) == normalised(data["results"])

    def test_query_endpoint_bare_and_wrapped(self, covid_server, covid):
        status, data, _ = covid_server.post("/query", "exists IWoS")
        assert status == 200
        assert data["result"]["ok"] is True
        assert data["result"]["holds"] is True
        status, data, _ = covid_server.post(
            "/query",
            {
                "query": {"kind": "probability", "formula": "IWoS"},
                "uniform": UNIFORM,
            },
        )
        assert status == 200
        expected = (
            BatchAnalyzer(covid, uniform=UNIFORM)
            .run([{"kind": "probability", "formula": "IWoS"}])
            .to_dict()["results"][0]
        )
        assert normalised([data["result"]]) == normalised([expected])

    def test_concurrent_batteries_share_one_session(self, covid):
        battery = {"queries": ALL_KINDS, "uniform": UNIFORM}
        with running(covid) as harness:
            results, errors = [], []

            def fire():
                try:
                    results.append(harness.post("/battery", battery))
                except Exception as exc:  # noqa: BLE001 — collected
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert not errors
            assert len(results) == 4
            reference = normalised(results[0][1]["results"])
            for status, data, _ in results:
                assert status == 200
                assert normalised(data["results"]) == reference
            pool = harness.server.pool.stats()
            # All four batteries used the same weights, hence one key.
            assert pool["sessions"] == 1
            assert pool["hits"] >= 1


class TestCacheTiers:
    def test_rewarm_round_trip_matches_cold(self, covid, tmp_path):
        store_path = str(tmp_path / "kernels")
        battery = {"queries": ALL_KINDS, "uniform": UNIFORM}
        config = ServerConfig(port=0, store_path=store_path)

        with running(covid, config) as first:
            _, cold, _ = first.post("/battery", battery)
            fingerprint = first.get("/scenarios")[1]["scenarios"][0][
                "fingerprint"
            ]
        # Drain persisted the pooled session into the store.
        store = SnapshotStore(store_path)
        assert fingerprint in store

        with running(covid, ServerConfig(port=0, store_path=store_path)) as second:
            _, scenarios, _ = second.get("/scenarios")
            assert scenarios["scenarios"][0]["stored"] is True
            _, rewarm, _ = second.post("/battery", battery)
            assert second.server._counters["rewarms"] >= 1
            _, stats, _ = second.get("/stats")
            assert stats["store"]["hits"] >= 1
        assert normalised(rewarm["results"]) == normalised(cold["results"])
        assert all(row["ok"] for row in rewarm["results"])

    def test_corrupt_store_entry_degrades_to_cold_build(
        self, covid, tmp_path
    ):
        store_path = str(tmp_path / "kernels")
        battery = {"queries": [{"kind": "mcs"}, "exists IWoS"]}
        with running(covid, ServerConfig(port=0, store_path=store_path)) as first:
            _, cold, _ = first.post("/battery", battery)
            fingerprint = first.get("/scenarios")[1]["scenarios"][0][
                "fingerprint"
            ]

        store = SnapshotStore(store_path)
        corrupt_store_entry(store, fingerprint, seed=7)

        with running(covid, ServerConfig(port=0, store_path=store_path)) as second:
            _, report, _ = second.post("/battery", battery)
            # Same answers — the corrupt snapshot cost a rebuild, not
            # correctness — and the degradation is reported.
            assert normalised(report["results"]) == normalised(
                cold["results"]
            )
            warnings = report["stats"].get("warnings", [])
            assert any(
                w["kind"] == "snapshot-integrity" for w in warnings
            )

    @settings(max_examples=5, deadline=None)
    @given(tree=small_trees(), data=st.data())
    def test_rewarm_differential_on_random_trees(
        self, tree, data, tmp_path_factory
    ):
        """Cold server, drained store, rewarmed server and a plain
        sequential BatchAnalyzer all agree on random trees."""
        store_path = str(
            tmp_path_factory.mktemp("rewarm-store") / "kernels"
        )
        battery = {
            "queries": [
                {"id": "q1", "kind": "mcs"},
                {"id": "q2", "kind": "mps"},
                {"id": "q3", "formula": f"exists {tree.top}"},
            ]
        }
        expected = normalised(
            BatchAnalyzer(tree).run(battery["queries"]).to_dict()["results"]
        )
        with running(tree, ServerConfig(port=0, store_path=store_path)) as first:
            _, cold, _ = first.post("/battery", battery)
        with running(tree, ServerConfig(port=0, store_path=store_path)) as second:
            _, rewarm, _ = second.post("/battery", battery)
            assert second.server._counters["rewarms"] >= 1
        assert normalised(cold["results"]) == expected
        assert normalised(rewarm["results"]) == expected


class TestGovernedRequests:
    def test_deadline_tripped_query_is_a_structured_row(self, covid):
        with running(covid) as harness:
            status, data, _ = harness.post(
                "/battery",
                {
                    "queries": [{"id": "doomed", "kind": "mcs"}],
                    "deadline_ms": 1e-6,
                },
            )
            # Query failure is NOT an HTTP failure.
            assert status == 200
            (row,) = data["results"]
            assert row["ok"] is False
            assert row["error_kind"] == "deadline"

    def test_chaos_budget_trip_through_server(self, covid, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps(
                {"budget_trip_queries": ["victim"], "trip_step_budget": 1}
            ),
        )
        with running(covid) as harness:
            status, data, _ = harness.post(
                "/battery",
                {
                    "queries": [
                        {"id": "victim", "kind": "mcs"},
                        {"id": "bystander", "formula": "exists IWoS"},
                    ]
                },
            )
        assert status == 200
        by_id = {row["id"]: row for row in data["results"]}
        assert by_id["victim"]["ok"] is False
        assert by_id["victim"]["error_kind"] == "resource-limit"
        assert by_id["bystander"]["ok"] is True

    def test_bad_request_option_is_400(self, covid):
        with running(covid) as harness:
            status, data, _ = harness.post(
                "/battery",
                {"queries": ["exists IWoS"], "probabilities": "nope"},
            )
            assert status == 400


class TestAdmission:
    def test_rate_limit_429_with_retry_hint(self, covid):
        config = ServerConfig(port=0, rate_limit=0.001, rate_burst=1)
        with running(covid, config) as harness:
            status, _, _ = harness.get("/scenarios")
            assert status == 200  # consumed the only token
            status, data, headers = harness.get("/scenarios")
            assert status == 429
            assert data["error_kind"] == "rate-limited"
            assert data["retry_after_ms"] > 0
            assert int(headers["Retry-After"]) >= 1
            # /healthz stays exempt for liveness probes.
            status, _, _ = harness.get("/healthz")
            assert status == 200
            counters = harness.server._counters
            assert counters["rejected_rate_limited"] >= 1

    def test_draining_server_rejects_new_work(self, covid):
        with running(covid) as harness:
            harness.server._draining = True
            try:
                status, data, _ = harness.get("/healthz")
                assert status == 503
                assert data["status"] == "draining"
                status, data, _ = harness.post(
                    "/battery", {"queries": ["exists IWoS"]}
                )
                assert status == 503
                assert data["error_kind"] == "server-busy"
                assert data["draining"] is True
            finally:
                harness.server._draining = False

    def test_token_bucket_refills_at_rate(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=lambda: clock[0])
        ok, _ = bucket.try_acquire()
        assert ok
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(500.0)
        clock[0] += 0.5  # one token refilled
        ok, _ = bucket.try_acquire()
        assert ok

    def test_token_bucket_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestCLIEndToEnd:
    def test_bfl_serve_subprocess_drains_on_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src"
        )
        env.pop("REPRO_CHAOS", None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--store",
                str(tmp_path / "kernels"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://127.0.0.1:" in line
            port = int(line.split("http://127.0.0.1:", 1)[1].split()[0])
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=30
            )
            try:
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
            finally:
                connection.close()
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "drained, exiting" in out


class TestDocsGate:
    """The docs drift gate, runnable from the suite as well as CI."""

    @pytest.fixture(autouse=True)
    def _benchmarks_on_path(self):
        benchmarks = str(
            Path(__file__).resolve().parent.parent / "benchmarks"
        )
        sys.path.insert(0, benchmarks)
        yield
        sys.path.remove(benchmarks)

    def test_all_docs_checks_pass(self):
        import docs_gate

        for check in docs_gate.CHECKS:
            assert check() == [], check.__name__


class TestBatchPin:
    """Pin: the session-pool extraction must not change BatchAnalyzer.

    The covid battery (one query per registered kind) must produce
    byte-identical reports sequentially and sharded over two workers.
    """

    def test_sequential_and_two_workers_byte_identical(self, covid):
        sequential = BatchAnalyzer(covid, uniform=UNIFORM).run(ALL_KINDS)
        sharded = BatchAnalyzer(covid, uniform=UNIFORM, workers=2).run(
            ALL_KINDS
        )
        assert json.dumps(
            normalised(sequential.to_dict()["results"]), sort_keys=True
        ) == json.dumps(
            normalised(sharded.to_dict()["results"]), sort_keys=True
        )
