"""Minimal/maximal satisfying-vector constructions (the MCS/MPS engine).

Cross-validates the paper's primed-relation construction against the
restriction-based monotone construction and against brute force.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import (
    BDDManager,
    all_models,
    is_monotone,
    maximal_assignments,
    maximal_assignments_monotone,
    minimal_assignments,
    minimal_assignments_monotone,
    prime_name,
)
from repro.bdd.minimal import ensure_primed

NAMES = ["p", "q", "r"]


def _brute_minimal(models, scope):
    keys = [frozenset(n for n in scope if m[n]) for m in models]
    return {
        m_key
        for m_key in keys
        if not any(other < m_key for other in keys)
    }


def _brute_maximal(models, scope):
    keys = [frozenset(n for n in scope if m[n]) for m in models]
    return {
        m_key
        for m_key in keys
        if not any(other > m_key for other in keys)
    }


def _monotone_function(manager, seed):
    """Random AND/OR combination of positive literals (hence monotone)."""
    import random

    rng = random.Random(seed)
    result = manager.var(rng.choice(NAMES))
    for _ in range(4):
        literal = manager.var(rng.choice(NAMES))
        op = rng.choice(["and", "or"])
        result = manager.apply(op, result, literal)
    return result


class TestPrimedNames:
    def test_prime_name_suffix(self):
        assert prime_name("IW") == "IW__prime"

    def test_ensure_primed_declares_once(self):
        manager = BDDManager(NAMES)
        mapping = ensure_primed(manager, NAMES)
        again = ensure_primed(manager, NAMES)
        assert mapping == again
        assert manager.variables.count(prime_name("p")) == 1


class TestMinimal:
    def test_or_gate_minimal_vectors(self):
        manager = BDDManager(["a", "b"])
        f = manager.or_(manager.var("a"), manager.var("b"))
        minimal = minimal_assignments(manager, f, ["a", "b"])
        models = all_models(manager, minimal, ["a", "b"])
        sets = {frozenset(n for n, v in m.items() if v) for m in models}
        assert sets == {frozenset({"a"}), frozenset({"b"})}

    def test_and_gate_single_minimal_vector(self):
        manager = BDDManager(["a", "b"])
        f = manager.and_(manager.var("a"), manager.var("b"))
        minimal = minimal_assignments(manager, f, ["a", "b"])
        models = all_models(manager, minimal, ["a", "b"])
        assert models == [{"a": True, "b": True}]

    def test_empty_scope_is_identity(self):
        manager = BDDManager(["a"])
        f = manager.var("a")
        assert minimal_assignments(manager, f, []) is f

    def test_unsatisfiable_stays_unsatisfiable(self):
        manager = BDDManager(["a"])
        f = manager.false
        assert minimal_assignments(manager, f, ["a"]) is manager.false

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_primed_equals_monotone_fast_path(self, seed):
        manager = BDDManager(NAMES)
        f = _monotone_function(manager, seed)
        assert is_monotone(manager, f)
        general = minimal_assignments(manager, f, NAMES)
        fast = minimal_assignments_monotone(manager, f, NAMES)
        assert general is fast

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_primed_matches_brute_force(self, seed):
        manager = BDDManager(NAMES)
        f = _monotone_function(manager, seed)
        minimal = minimal_assignments(manager, f, NAMES)
        got = {
            frozenset(n for n, v in m.items() if v)
            for m in all_models(manager, minimal, NAMES)
        }
        expected = _brute_minimal(all_models(manager, f, NAMES), NAMES)
        assert got == expected


class TestMaximal:
    def test_maximal_vectors_of_negated_and(self):
        manager = BDDManager(["a", "b"])
        f = manager.negate(manager.and_(manager.var("a"), manager.var("b")))
        maximal = maximal_assignments(manager, f, ["a", "b"])
        models = all_models(manager, maximal, ["a", "b"])
        sets = {frozenset(n for n, v in m.items() if v) for m in models}
        # Maximal non-(a and b) vectors: {a}, {b}.
        assert sets == {frozenset({"a"}), frozenset({"b"})}

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_maximal_matches_brute_force(self, seed):
        manager = BDDManager(NAMES)
        f = manager.negate(_monotone_function(manager, seed))
        maximal = maximal_assignments(manager, f, NAMES)
        got = {
            frozenset(n for n, v in m.items() if v)
            for m in all_models(manager, maximal, NAMES)
        }
        expected = _brute_maximal(all_models(manager, f, NAMES), NAMES)
        assert got == expected

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_maximal_fast_path_agrees(self, seed):
        manager = BDDManager(NAMES)
        base = _monotone_function(manager, seed)
        f = manager.negate(base)
        general = maximal_assignments(manager, f, NAMES)
        fast = maximal_assignments_monotone(manager, f, NAMES)
        assert general is fast


class TestIsMonotone:
    def test_positive_function_is_monotone(self):
        manager = BDDManager(NAMES)
        f = manager.or_(manager.var("p"), manager.and_(manager.var("q"), manager.var("r")))
        assert is_monotone(manager, f)

    def test_negation_is_not_monotone(self):
        manager = BDDManager(NAMES)
        assert not is_monotone(manager, manager.nvar("p"))

    def test_constants_are_monotone(self):
        manager = BDDManager(NAMES)
        assert is_monotone(manager, manager.true)
        assert is_monotone(manager, manager.false)

    def test_xor_is_not_monotone(self):
        manager = BDDManager(NAMES)
        assert not is_monotone(manager, manager.xor(manager.var("p"), manager.var("q")))


class TestMinsolSinglePass:
    """The memoised Rauzy-style recursion must build *canonically the
    same BDD* as the restrict+conjoin constructions it replaced — for any
    input (the derivation never uses monotonicity), any scope subset, and
    scopes with variables outside the function's support."""

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_minimal_matches_restrict_oracle(self, seed):
        from repro.bdd import minimal_assignments_monotone_restrict

        manager = BDDManager(NAMES)
        f = _monotone_function(manager, seed)
        for scope in (NAMES, NAMES[:2], NAMES[1:], []):
            assert minimal_assignments_monotone(
                manager, f, scope
            ) is minimal_assignments_monotone_restrict(manager, f, scope)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_maximal_matches_restrict_oracle(self, seed):
        from repro.bdd import maximal_assignments_monotone_restrict

        manager = BDDManager(NAMES)
        f = manager.negate(_monotone_function(manager, seed))
        for scope in (NAMES, NAMES[:2], NAMES[2:], []):
            assert maximal_assignments_monotone(
                manager, f, scope
            ) is maximal_assignments_monotone_restrict(manager, f, scope)

    def test_non_monotone_inputs_still_match_the_oracle(self):
        from repro.bdd import (
            maximal_assignments_monotone_restrict,
            minimal_assignments_monotone_restrict,
        )

        manager = BDDManager(NAMES)
        f = manager.xor(manager.var("p"), manager.var("q"))
        assert minimal_assignments_monotone(
            manager, f, NAMES
        ) is minimal_assignments_monotone_restrict(manager, f, NAMES)
        assert maximal_assignments_monotone(
            manager, f, NAMES
        ) is maximal_assignments_monotone_restrict(manager, f, NAMES)

    def test_duplicate_scope_names_are_tolerated(self):
        from repro.bdd import minimal_assignments_monotone_restrict

        manager = BDDManager(NAMES)
        f = manager.or_(manager.var("p"), manager.var("q"))
        duplicated = ["p", "p", "q", "q", "q"]
        assert minimal_assignments_monotone(
            manager, f, duplicated
        ) is minimal_assignments_monotone_restrict(manager, f, duplicated)
        from repro.bdd import maximal_assignments_monotone_restrict

        g = manager.negate(f)
        assert maximal_assignments_monotone(
            manager, g, duplicated
        ) is maximal_assignments_monotone_restrict(manager, g, duplicated)

    def test_scope_variables_outside_support_are_pinned(self):
        manager = BDDManager(NAMES)
        f = manager.var("p")
        minimal = minimal_assignments_monotone(manager, f, NAMES)
        models = all_models(manager, minimal, NAMES)
        # q/r are don't-cares of f; minimality clears them.
        assert models == [{"p": True, "q": False, "r": False}]
