"""Tree simplification (structure-function preservation) and the
scenario API (the paper intro's bullet-list use cases)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.casestudy import build_covid_tree
from repro.checker import ScenarioAnalyzer
from repro.ft import (
    FaultTreeBuilder,
    figure1_tree,
    simplification_stats,
    simplify,
    structure_function,
)

from bfl_strategies import small_trees


class TestSimplify:
    def test_single_child_gates_absorbed(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("wrap", "a")
            .and_gate("top", "wrap", "b")
            .build("top")
        )
        simplified = simplify(tree)
        assert "wrap" not in simplified.gate_names
        assert set(simplified.children("top")) == {"a", "b"}

    def test_same_type_nesting_flattened(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .or_gate("inner", "a", "b")
            .or_gate("top", "inner", "c")
            .build("top")
        )
        simplified = simplify(tree)
        assert set(simplified.children("top")) == {"a", "b", "c"}
        assert simplified.gate_names == ("top",)

    def test_mixed_types_not_flattened(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .and_gate("inner", "a", "b")
            .or_gate("top", "inner", "c")
            .build("top")
        )
        simplified = simplify(tree)
        assert "inner" in simplified.gate_names

    def test_shared_gates_not_flattened(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .or_gate("shared", "a", "b")
            .or_gate("left", "shared", "c")
            .and_gate("top", "left", "shared")
            .build("top")
        )
        simplified = simplify(tree)
        assert "shared" in simplified.gate_names

    def test_keep_protects_gates(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .or_gate("inner", "a", "b")
            .or_gate("top", "inner", "c")
            .build("top")
        )
        simplified = simplify(tree, keep=["inner"])
        assert "inner" in simplified.gate_names

    def test_unknown_keep_rejected(self):
        with pytest.raises(ValueError):
            simplify(figure1_tree(), keep=["ghost"])

    def test_vot_untouched(self):
        from repro.ft import example_vot_tree

        tree = example_vot_tree()
        simplified = simplify(tree)
        assert simplified.gate("V").threshold == 2

    def test_covid_tree_flattens_cvt(self):
        tree = build_covid_tree()
        simplified = simplify(tree)
        # CVT = OR(UT) is single-child, MoT is OR -> UT hangs off MoT.
        assert "CVT" not in simplified.gate_names
        assert "UT" in simplified.children("MoT")
        stats = simplification_stats(tree, simplified)
        assert stats["gates_removed"] >= 1

    @given(tree=small_trees(max_basic_events=5))
    @settings(max_examples=50, deadline=None)
    def test_structure_function_preserved(self, tree):
        simplified = simplify(tree)
        names = tree.basic_events
        for bits in itertools.product([False, True], repeat=len(names)):
            vector = dict(zip(names, bits))
            assert structure_function(simplified, vector) == (
                structure_function(tree, vector)
            )

    @given(tree=small_trees(max_basic_events=5))
    @settings(max_examples=30, deadline=None)
    def test_surviving_gates_preserve_their_function(self, tree):
        simplified = simplify(tree)
        names = tree.basic_events
        shared_gates = set(simplified.gate_names) & set(tree.gate_names)
        for bits in itertools.product([False, True], repeat=len(names)):
            vector = dict(zip(names, bits))
            for gate in shared_gates:
                assert structure_function(
                    simplified, vector, gate
                ) == structure_function(tree, vector, gate)


class TestScenarioAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return ScenarioAnalyzer(build_covid_tree())

    def test_necessary_events_are_the_singleton_mpss(self, analyzer):
        assert analyzer.necessary_events() == ["H1", "VW"]

    def test_no_single_point_of_failure(self, analyzer):
        assert analyzer.single_points_of_failure() == []

    def test_always_causes_failure_on_a_full_mcs(self, analyzer):
        result = analyzer.always_causes_failure(
            "IW", "H3", "IT", "H1", "H4", "VW"
        )
        assert result.holds
        assert "forall" in result.statement

    def test_partial_set_does_not_always_fail(self, analyzer):
        assert not analyzer.always_causes_failure("IW", "H3")

    def test_can_cause_failure(self, analyzer):
        assert analyzer.can_cause_failure("IW", "H3")
        # H1 operational makes the TLE unreachable, so requiring both is
        # unsatisfiable through evidence-free conjunction:
        assert analyzer.can_cause_failure("H1")

    def test_failure_bounds(self, analyzer):
        # Property 4 re-expressed through the scenario API.
        assert not analyzer.failure_bound_implies(
            ">=", 2, ["H1", "H2", "H3", "H4", "H5"]
        )
        # At most zero human errors can never fail the TLE (H1 in every
        # cut set): Vot<=0 means no human error failed.
        assert analyzer.failure_bound_implies(
            "<=", 0, ["H1", "H2", "H3", "H4", "H5"], negate_target=True
        )

    def test_cut_sets_given_matches_paper_p5_projection(self, analyzer):
        # Condition on H4 and H1 failed: the remaining minimal completions
        # are the P5 sets minus the evidence events.
        sets = analyzer.cut_sets_given(failed=["H4", "H1"])
        assert frozenset({"IT", "H2", "VW"}) in sets

    def test_path_sets_given(self, analyzer):
        # With H1 forced failed, {H1} is no longer an MPS; {VW} remains.
        sets = analyzer.path_sets_given(failed=["H1"])
        assert frozenset({"VW"}) in sets
        assert frozenset({"H1"}) not in sets

    def test_independent_and_superfluous_passthrough(self, analyzer):
        assert not analyzer.independent("CIO", "CIS")
        assert not analyzer.superfluous("PP")
        assert analyzer.independent("CP", "CR").statement == "IDP(CP, CR)"

    def test_target_override(self):
        analyzer = ScenarioAnalyzer(build_covid_tree(), element="MoT")
        assert analyzer.always_causes_failure("UT").holds


class TestCheckerInvarianceUnderSimplify:
    """Model-checking verdicts are invariant under simplification for
    formulae that only mention surviving elements."""

    @given(tree=small_trees(max_basic_events=4))
    @settings(max_examples=30, deadline=None)
    def test_mcs_of_top_invariant(self, tree):
        from repro.checker import ModelChecker

        simplified = simplify(tree)
        before = ModelChecker(tree).minimal_cut_sets()
        after = ModelChecker(simplified).minimal_cut_sets(simplified.top)
        assert before == after

    @given(tree=small_trees(max_basic_events=4))
    @settings(max_examples=30, deadline=None)
    def test_mps_of_top_invariant(self, tree):
        from repro.checker import ModelChecker

        simplified = simplify(tree)
        before = ModelChecker(tree).minimal_path_sets()
        after = ModelChecker(simplified).minimal_path_sets(simplified.top)
        assert before == after
