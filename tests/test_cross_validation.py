"""Cross-validation: the BDD model checker (Sec. V) against the
enumerative reference semantics (Sec. III-B), on random trees and random
formulae, under both minimality scopes.

These are the strongest correctness guarantees in the suite: any
disagreement between the two independent implementations of BFL's
semantics fails here.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic import (
    Exists,
    Forall,
    IDP,
    MinimalityScope,
    ReferenceSemantics,
)
from repro.checker import FormulaTranslator, ModelChecker, check, satisfying_vectors

from bfl_strategies import formulas_for, small_trees, vectors_for

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
@pytest.mark.parametrize("scope", list(MinimalityScope))
def test_layer1_check_agrees(data, tree, scope):
    translator = FormulaTranslator(tree, scope=scope)
    semantics = ReferenceSemantics(tree, scope=scope)
    formula = data.draw(formulas_for(tree))
    vector = data.draw(vectors_for(tree))
    assert check(translator, formula, vector) == semantics.holds(
        formula, vector
    )


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
@pytest.mark.parametrize("scope", list(MinimalityScope))
def test_satisfying_vectors_agree(data, tree, scope):
    translator = FormulaTranslator(tree, scope=scope)
    semantics = ReferenceSemantics(tree, scope=scope)
    formula = data.draw(formulas_for(tree))
    bdd_vectors = {
        tuple(sorted(v.items()))
        for v in satisfying_vectors(translator, formula)
    }
    ref_vectors = {
        tuple(sorted(v.items()))
        for v in semantics.satisfying_vectors(formula)
    }
    assert bdd_vectors == ref_vectors


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
def test_layer2_quantifiers_agree(data, tree):
    checker = ModelChecker(tree)
    semantics = ReferenceSemantics(tree)
    formula = data.draw(formulas_for(tree))
    assert checker.check(Exists(formula)) == semantics.holds(Exists(formula))
    assert checker.check(Forall(formula)) == semantics.holds(Forall(formula))


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
def test_idp_agrees(data, tree):
    checker = ModelChecker(tree)
    semantics = ReferenceSemantics(tree)
    left = data.draw(formulas_for(tree, allow_minimal_ops=False))
    right = data.draw(formulas_for(tree, allow_minimal_ops=False))
    assert checker.check(IDP(left, right)) == semantics.holds(IDP(left, right))


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
def test_monotone_fast_path_agrees_with_reference(data, tree):
    translator = FormulaTranslator(tree, monotone_fast_path=True)
    semantics = ReferenceSemantics(tree)
    formula = data.draw(formulas_for(tree))
    vector = data.draw(vectors_for(tree))
    assert check(translator, formula, vector) == semantics.holds(
        formula, vector
    )
