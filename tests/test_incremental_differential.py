"""Differential oracle for the incremental what-if path.

Random base trees get random *edit scripts* (gate swap, subtree
replace, event add/remove, weight change); after **every** edit the
incremental arm — chained :meth:`AnalysisSession.fork_variant` sessions
sharing one kernel, adopted element BDDs, compose-spliced tops — must
answer exactly like a fresh from-scratch session on the same edited
tree:

* ``evaluate`` on every status vector (also cross-checked against the
  enumerative structure function, an oracle independent of the whole
  BDD stack);
* MCS and MPS families;
* satisfying vectors of an Evidence formula over surviving events;
* ``P(top)`` and a conditional ``P(top | e)`` under shared weights.

The ``memory`` arm replays the same scripts with the kernel's GC and
in-place sifting exercised *between* edits — adopted refs, memoised
abstract roots and the compose cache must all survive reclamation and
level rewiring.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from bfl_strategies import small_trees
from repro.checker import satisfying_vectors
from repro.ft import (
    EditError,
    EventAdd,
    EventRemove,
    FaultTree,
    GateSwap,
    SubtreeReplace,
    WeightChange,
    apply_edits,
    structure_function,
)
from repro.logic import Atom, Evidence
from repro.service import AnalysisSession
from repro.service.queries import sets_view

_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)


def _default_weight(event: str) -> float:
    """Deterministic per-event weight (no tree carries probabilities)."""
    return 0.05 + (hash(event) % 17) / 20.0


def _draw_edit(data, tree: FaultTree, step: int):
    gates = sorted(tree.gate_names)
    events = sorted(tree.basic_events)
    removable = [
        event
        for event in events
        if len(events) > 2
        and all(
            len(tree.gate(parent).children) >= 2
            for parent in tree.parents(event)
        )
    ]
    kinds = ["gate-swap", "weight-change", "event-add", "subtree-replace"]
    if removable:
        kinds.append("event-remove")
    kind = data.draw(st.sampled_from(kinds), label=f"edit{step}")
    if kind == "gate-swap":
        gate = data.draw(st.sampled_from(gates), label="swap-target")
        arity = len(tree.gate(gate).children)
        gate_type = data.draw(
            st.sampled_from(["and", "or", "vot"] if arity >= 2 else ["and", "or"]),
            label="swap-type",
        )
        if gate_type == "vot":
            threshold = data.draw(
                st.integers(min_value=1, max_value=arity), label="swap-k"
            )
            return GateSwap(gate, "vot", threshold)
        return GateSwap(gate, gate_type)
    if kind == "weight-change":
        event = data.draw(st.sampled_from(events), label="weight-target")
        probability = data.draw(
            st.sampled_from([0.05, 0.35, 0.9]), label="weight"
        )
        return WeightChange(event, probability)
    if kind == "event-add":
        gate = data.draw(st.sampled_from(gates), label="add-target")
        return EventAdd(gate, f"x{step}", probability=0.2)
    if kind == "event-remove":
        return EventRemove(
            data.draw(st.sampled_from(removable), label="remove-target")
        )
    target = data.draw(st.sampled_from(gates), label="replace-target")
    shared = data.draw(st.sampled_from(events), label="replace-shared")
    root = f"F{step}"
    fresh = f"y{step}"
    shape = data.draw(st.sampled_from(["or", "and", "nested"]), label="shape")
    if shape == "nested":
        inner = f"G{step}"
        fragment = (
            f'toplevel "{root}";\n'
            f'"{root}" or "{inner}" "{shared}";\n'
            f'"{inner}" and "{fresh}" "{shared}";\n'
            f'"{fresh}" prob=0.15;\n'
        )
    else:
        fragment = (
            f'toplevel "{root}";\n'
            f'"{root}" {shape} "{fresh}" "{shared}";\n'
            f'"{fresh}" prob=0.15;\n'
        )
    return SubtreeReplace(target, fragment)


def _compare(variant: AnalysisSession, tree: FaultTree) -> None:
    """Assert the incremental session answers like a fresh rebuild."""
    fresh = AnalysisSession(
        "fresh", tree, probabilities=dict(variant._prob_overrides)
    )
    events = sorted(tree.basic_events)
    top = tree.top

    inc_top = variant.checker.translator.tree_translator.top()
    ref_top = fresh.checker.translator.tree_translator.top()
    inc_manager = variant.checker.manager
    ref_manager = fresh.checker.manager
    for bits in itertools.product([False, True], repeat=len(events)):
        vector = dict(zip(events, bits))
        want = structure_function(tree, vector)
        assert inc_manager.evaluate(inc_top, vector) == want
        assert ref_manager.evaluate(ref_top, vector) == want

    assert sets_view(variant.checker.minimal_cut_sets()) == sets_view(
        fresh.checker.minimal_cut_sets()
    )
    assert sets_view(variant.checker.minimal_path_sets()) == sets_view(
        fresh.checker.minimal_path_sets()
    )

    evidence = Evidence(Atom(top), ((events[0], True),))
    inc_vectors = {
        tuple(sorted(v.items()))
        for v in satisfying_vectors(variant.checker.translator, evidence)
    }
    ref_vectors = {
        tuple(sorted(v.items()))
        for v in satisfying_vectors(fresh.checker.translator, evidence)
    }
    assert inc_vectors == ref_vectors

    inc_p = variant.prob_checker().probability(Atom(top))
    ref_p = fresh.prob_checker().probability(Atom(top))
    assert inc_p == pytest.approx(ref_p, abs=1e-12)
    inc_c = variant.prob_checker().conditional(Atom(top), Atom(events[0]))
    ref_c = fresh.prob_checker().conditional(Atom(top), Atom(events[0]))
    assert inc_c == pytest.approx(ref_c, abs=1e-12)


def _run_script(data, tree: FaultTree, memory: bool) -> None:
    weights = {event: _default_weight(event) for event in tree.basic_events}
    base = AnalysisSession("base", tree, probabilities=weights)
    # Warm the base so forks actually have element BDDs to adopt and an
    # abstract root to splice against.
    base.checker.translator.tree_translator.top()
    current = base
    current_tree = tree
    steps = data.draw(st.integers(min_value=1, max_value=3), label="steps")
    for step in range(steps):
        edit = _draw_edit(data, current_tree, step)
        try:
            new_tree = apply_edits(current_tree, [edit])
        except EditError:
            continue  # e.g. a replace collides with an earlier fragment
        variant = current.fork_variant(f"v{step}", [edit])
        assert variant.checker.manager is base.checker.manager
        assert variant.variant_of == current.name
        _compare(variant, new_tree)
        if memory:
            manager = variant.checker.manager
            manager.collect()
            if step % 2 == 1:
                manager.sift_inplace(max_rounds=1)
            manager.check_invariants()
            # Post-GC/sift the same session must still agree.
            _compare(variant, new_tree)
        current = variant
        current_tree = new_tree


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
def test_incremental_matches_rebuild(data, tree):
    _run_script(data, tree, memory=False)


@given(data=st.data(), tree=small_trees(max_basic_events=4))
@settings(**_SETTINGS)
def test_incremental_matches_rebuild_under_gc_and_sift(data, tree):
    _run_script(data, tree, memory=True)


def test_fork_weight_change_drops_stale_override() -> None:
    """A weight-change edit must win over an inherited override."""
    from repro.ft import RandomTreeConfig, random_tree

    tree = random_tree(3, RandomTreeConfig(n_basic_events=3, max_depth=2))
    event = sorted(tree.basic_events)[0]
    base = AnalysisSession(
        "base",
        tree,
        probabilities={name: 0.5 for name in tree.basic_events},
    )
    variant = base.fork_variant("v", [WeightChange(event, 0.125)])
    fresh = AnalysisSession(
        "fresh",
        variant.tree,
        probabilities=dict(variant._prob_overrides),
    )
    assert variant.prob_checker().probability(
        Atom(event)
    ) == pytest.approx(0.125)
    assert fresh.prob_checker().probability(
        Atom(event)
    ) == pytest.approx(0.125)
