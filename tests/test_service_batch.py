"""The batch analysis service: parity with ModelChecker, cache behaviour,
and the ``bfl batch`` CLI round-trip."""

from __future__ import annotations

import json

import pytest

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.cli import main
from repro.ft import figure1_tree
from repro.service import BatchAnalyzer, QuerySpec
from repro.service.queries import QuerySpecError, specs_from_any

BATTERY = [
    "forall (IS => MoT)",
    "exists (MCS(IWoS) & H1)",
    "exists (MCS(IWoS) & H2)",
    "forall (MCS(SH) => (VW & H1))",
    "exists (MPS(MoT) & !UT)",
    "exists (MCS(IWoS) & VOT(>= 3; H1, H2, H3, H4, H5))",
]


@pytest.fixture()
def analyzer(covid):
    return BatchAnalyzer(covid)


class TestParityWithModelChecker:
    def test_layer2_checks_match_sequential_on_covid(self, analyzer, covid):
        report = analyzer.run(BATTERY)
        assert report.ok
        sequential = [ModelChecker(covid).check(f) for f in BATTERY]
        assert [r.holds for r in report.results] == sequential

    def test_layer1_checks_with_vectors(self, analyzer, covid):
        report = analyzer.run(
            [
                {"kind": "check", "formula": "MCS(IWoS)", "failed": ["H1", "VW"]},
                {"kind": "check", "formula": "IS => MoT", "bits": [0] * 13},
            ]
        )
        assert report.ok
        checker = ModelChecker(covid)
        assert report[0].holds is checker.check("MCS(IWoS)", failed=["H1", "VW"])
        assert report[1].holds is checker.check("IS => MoT", bits=[0] * 13)

    def test_mcs_mps_and_satisfaction_sets(self, analyzer, covid):
        report = analyzer.run(
            [
                {"id": "cuts", "kind": "mcs"},
                {"id": "paths", "kind": "mps"},
                {"id": "sat", "formula": "[[ MCS(MoT) & IS ]]"},
            ]
        )
        assert report.ok
        checker = ModelChecker(covid)
        assert [set(s) for s in report["cuts"].sets] == [
            set(s) for s in checker.minimal_cut_sets()
        ]
        assert [set(s) for s in report["paths"].sets] == [
            set(s) for s in checker.minimal_path_sets()
        ]
        assert report["sat"].kind == "satisfaction-set"
        assert [set(s) for s in report["sat"].sets] == [
            set(s) for s in checker.satisfaction_set("MCS(MoT) & IS").failed_sets()
        ]
        assert report["sat"].vector_count == len(
            checker.satisfaction_set("MCS(MoT) & IS")
        )

    def test_counterexample_and_independence(self, analyzer, covid):
        report = analyzer.run(
            [
                {
                    "id": "cex",
                    "kind": "counterexample",
                    "formula": "MCS(IWoS)",
                    "failed": ["IW", "H3", "IT"],
                },
                {
                    "id": "idp",
                    "kind": "independence",
                    "formula": "CIO",
                    "other": "CIS",
                },
            ]
        )
        assert report.ok
        checker = ModelChecker(covid)
        cex = checker.counterexample("MCS(IWoS)", failed=["IW", "H3", "IT"])
        assert report["cex"].counterexample["vector"] == cex.vector
        assert report["cex"].counterexample["def7_compliant"] == cex.def7_compliant
        idp = checker.independence("CIO", "CIS")
        assert report["idp"].holds is idp.independent
        assert report["idp"].independence["shared"] == sorted(idp.shared)

    def test_multi_scenario_routing(self, covid):
        analyzer = BatchAnalyzer({"covid": covid, "fig1": figure1_tree()})
        report = analyzer.run(
            [
                {"id": "a", "kind": "mcs", "tree": "fig1"},
                {"id": "b", "kind": "mcs", "tree": "covid"},
            ]
        )
        assert report.ok
        assert [set(s) for s in report["a"].sets] == [
            set(s) for s in ModelChecker(figure1_tree()).minimal_cut_sets()
        ]
        assert len(report["b"].sets) == 12  # the paper's 12 COVID MCSs


class TestSharingAndStats:
    def test_structural_dedup_counts_equal_asts(self, analyzer):
        report = analyzer.run(
            ["exists MCS(IWoS)", "exists  MCS( IWoS )", "exists MCS(IWoS)"]
        )
        stats = report.stats["queries"]
        assert stats["statements"] == 3
        assert stats["unique_statements"] == 1
        assert stats["structural_dedup"] == 2
        assert len({r.holds for r in report.results}) == 1

    def test_cache_statistics_are_monotone_across_batches(self, analyzer):
        first = analyzer.run(BATTERY)
        manager = analyzer.session().checker.manager
        after_first = manager.op_stats.snapshot()
        second = analyzer.run(BATTERY)
        after_second = manager.op_stats.snapshot()
        for key, value in after_first.items():
            assert after_second[key] >= value
        # The repeat battery is answered entirely from caches.
        scenario = second.stats["scenarios"]["default"]
        assert scenario["translation"]["formula_misses"] == 0
        assert scenario["translation"]["formula_hits"] > 0
        assert scenario["parse"]["misses"] == 0
        assert first.ok and second.ok
        assert [r.holds for r in first.results] == [
            r.holds for r in second.results
        ]

    def test_shared_subformulas_hit_translation_cache(self, analyzer):
        report = analyzer.run(
            ["exists (MCS(IWoS) & H1)", "exists (MCS(IWoS) & H2)"]
        )
        scenario = report.stats["scenarios"]["default"]
        # MCS(IWoS) and its operand are translated once, then hit.
        assert scenario["translation"]["formula_hits"] >= 1

    def test_per_query_timing_recorded(self, analyzer):
        report = analyzer.run(BATTERY)
        assert all(r.elapsed_ms >= 0.0 for r in report.results)
        assert report.elapsed_ms > 0.0
        assert report.stats["phases"]["translate_ms"] >= 0.0


class TestErrorHandling:
    def test_bad_syntax_is_isolated_to_its_query(self, analyzer):
        report = analyzer.run(["exists MCS(IWoS)", "bogus ( syntax"])
        assert not report.ok
        assert report[0].ok and report[1].ok is False
        assert report[1].error

    def test_unknown_scenario_reported_per_query(self, analyzer):
        report = analyzer.run([{"kind": "mcs", "tree": "nope"}])
        assert not report.ok
        assert "unknown scenario" in report[0].error

    def test_layer1_check_without_vector_errors(self, analyzer):
        report = analyzer.run(["IS & MoT"])
        assert not report.ok
        assert report[0].error

    def test_malformed_specs_raise(self):
        with pytest.raises(QuerySpecError):
            specs_from_any([{"kind": "frobnicate", "formula": "A"}])
        with pytest.raises(QuerySpecError):
            specs_from_any([{"formula": "A", "wat": 1}])
        with pytest.raises(QuerySpecError):
            QuerySpec(id="x", kind="mcs", failed=("A",), bits=(1,))

    def test_check_many_returns_none_on_error(self, analyzer):
        values = analyzer.check_many(["exists MCS(IWoS)", "bogus ("])
        assert values[0] is True and values[1] is None


class TestBatchCli:
    def _query_file(self, tmp_path, payload):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_round_trip(self, tmp_path, capsys, covid):
        path = self._query_file(
            tmp_path,
            {
                "tree": "covid",
                "queries": [
                    {"id": "p1", "formula": "forall (IS => MoT)"},
                    {"id": "cuts", "kind": "mcs"},
                    {"formula": "[[ MCS(MoT) & IS ]]"},
                ],
            },
        )
        assert main(["batch", path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert len(report["results"]) == 3
        by_id = {r["id"]: r for r in report["results"]}
        assert by_id["p1"]["holds"] is False
        assert len(by_id["cuts"]["sets"]) == 12
        assert by_id["q3"]["sets"] == [["H1", "H5", "IS"]]
        assert report["stats"]["scenarios"]["default"]["bdd_nodes"] > 0

    def test_output_file_and_failing_query_exit_code(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        path = self._query_file(
            tmp_path,
            {"queries": [{"id": "bad", "formula": "broken ("}]},
        )
        assert main(["batch", path, "--output", str(out), "--pretty"]) == 1
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["ok"] is False
        assert report["results"][0]["error"]

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps({"nope": []}), encoding="utf-8")
        assert main(["batch", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unreadable_or_invalid_json_exits_2(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "missing.json")]) == 2
        assert "cannot read query file" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["batch", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_scope_trees_and_method_exit_2(self, tmp_path, capsys):
        cases = [
            {"scope": "bogus", "queries": []},
            {"trees": "not-a-mapping", "queries": []},
            {
                "queries": [
                    {
                        "kind": "counterexample",
                        "formula": "IWoS",
                        "failed": ["H1"],
                        "method": "typo",
                    }
                ]
            },
        ]
        for payload in cases:
            path = self._query_file(tmp_path, payload)
            assert main(["batch", path]) == 2
            assert "error:" in capsys.readouterr().err


class TestSpecValidation:
    def test_layer2_check_with_vector_is_per_query_error(self, analyzer):
        report = analyzer.run(
            [{"kind": "check", "formula": "forall (IS => MoT)", "failed": ["H1"]}]
        )
        assert not report.ok
        assert "layer-2" in report[0].error

    def test_unknown_view_and_method_rejected(self):
        with pytest.raises(QuerySpecError):
            QuerySpec(id="x", formula="A", view="Operational")
        with pytest.raises(QuerySpecError):
            QuerySpec(id="x", formula="A", method="typo")

    def test_operational_view_selected(self, analyzer):
        report = analyzer.run(
            [{"id": "s", "formula": "[[ MPS(IWoS) ]]", "view": "operational"}]
        )
        assert report.ok
        checker = ModelChecker(build_covid_tree())
        assert [set(s) for s in report["s"].sets] == [
            set(s)
            for s in checker.satisfaction_set("MPS(IWoS)").operational_sets()
        ]
