"""Rendering: ASCII trees, failure propagation, counterexample views, DOT."""

import pytest

from repro.bdd import BDDManager, to_dot
from repro.casestudy import build_covid_tree
from repro.ft import figure1_tree, table1_tree, tree_to_bdd
from repro.checker import ModelChecker
from repro.viz import (
    counterexample_view,
    propagation_view,
    render_tree,
    tree_to_dot,
)


@pytest.fixture(scope="module")
def fig1():
    return figure1_tree()


class TestRenderTree:
    def test_plain_structure(self, fig1):
        text = render_tree(fig1)
        assert "CP/R (OR)" in text
        assert "CP (AND)" in text
        assert "IW (BE)" in text

    def test_vector_marks(self, fig1):
        text = render_tree(fig1, fig1.vector_from_failed(["IW", "H3"]))
        assert "CP (AND) [X]" in text
        assert "CR (AND) [ ]" in text
        assert "IW (BE) [X]" in text

    def test_subtree_rendering(self, fig1):
        text = render_tree(fig1, root="CP")
        assert "CP/R" not in text
        assert "IW (BE)" in text

    def test_descriptions_flag(self, fig1):
        text = render_tree(fig1, show_descriptions=True)
        assert "Infected worker joining the team" in text

    def test_repeated_events_marked(self):
        covid = build_covid_tree()
        text = render_tree(covid)
        assert " *" in text  # H1/IW/IT/PP occur repeatedly

    def test_vot_gate_label(self):
        from repro.ft import example_vot_tree

        assert "V (VOT(2/3))" in render_tree(example_vot_tree())


class TestPropagationView:
    def test_failure_chain_reported(self, fig1):
        text = propagation_view(fig1, fig1.vector_from_failed(["IW", "H3"]))
        assert "failed basic events: {H3, IW}" in text
        assert "CP/R: FAILS" in text
        assert "failure propagates" in text

    def test_operational_top(self, fig1):
        text = propagation_view(fig1, fig1.vector_from_failed(["IW"]))
        assert "stays operational" in text


class TestCounterexampleView:
    def test_changed_bits_and_gate_flips(self):
        tree = table1_tree()
        checker = ModelChecker(tree)
        cex = checker.counterexample("MCS(e1)", bits=(0, 1, 0))
        text = counterexample_view(tree, cex)
        assert "changed basic events: e2: 0->1" in text
        assert "every change necessary (Def. 7): yes" in text
        assert "--- example b ---" in text
        assert "--- counterexample b' ---" in text

    def test_no_change_case(self):
        tree = table1_tree()
        checker = ModelChecker(tree)
        cex = checker.counterexample("MCS(e1)", bits=(1, 1, 0))
        text = counterexample_view(tree, cex)
        assert "already satisfies" in text


class TestTreeDot:
    def test_shapes_and_edges(self, fig1):
        dot = tree_to_dot(fig1)
        assert "digraph" in dot
        assert "shape=house" in dot  # OR gate
        assert "shape=invhouse" in dot  # AND gates
        assert '"CP/R" -> "CP";' in dot

    def test_status_colouring(self, fig1):
        dot = tree_to_dot(fig1, fig1.vector_from_failed(["IW", "H3"]))
        assert "indianred1" in dot
        assert "palegreen" in dot

    def test_vot_label(self):
        from repro.ft import example_vot_tree

        dot = tree_to_dot(example_vot_tree())
        assert "VOT(2/3)" in dot
        assert "shape=diamond" in dot

    def test_descriptions(self, fig1):
        dot = tree_to_dot(fig1, show_descriptions=True)
        assert "Infected worker joining the team" in dot


class TestBDDDot:
    def test_structure(self, fig1):
        manager = BDDManager(fig1.basic_events)
        root = tree_to_bdd(fig1, manager)
        dot = to_dot(manager, root)
        assert "digraph" in dot
        assert 'label="IW"' in dot
        assert "style=dashed" in dot and "style=solid" in dot

    def test_highlighted_walk(self, fig1):
        manager = BDDManager(fig1.basic_events)
        root = tree_to_bdd(fig1, manager)
        vector = fig1.vector_from_failed(["IW", "H3"])
        dot = to_dot(manager, root, highlight_paths=[vector])
        assert "color=red" in dot
