"""Algorithms 2 and 3, including the paper's Examples 2 and 3."""

import pytest

from repro.errors import StatusVectorError
from repro.ft import figure3_or_tree
from repro.logic import MCS, Atom, parse_formula
from repro.checker import (
    FormulaTranslator,
    check,
    count_satisfying_vectors,
    satisfying_cubes,
    satisfying_vectors,
    walk,
)


@pytest.fixture()
def translator():
    return FormulaTranslator(figure3_or_tree())


class TestExample2:
    """Paper Example 2: OR tree, chi = MCS(e_top), b = (0, 1) satisfies."""

    def test_b_01_is_an_mcs_vector(self, translator):
        assert check(translator, MCS(Atom("Top")), {"e1": False, "e2": True})

    def test_b_11_is_not_minimal(self, translator):
        assert not check(translator, MCS(Atom("Top")), {"e1": True, "e2": True})

    def test_b_00_is_not_a_cut_set(self, translator):
        assert not check(
            translator, MCS(Atom("Top")), {"e1": False, "e2": False}
        )


class TestExample3:
    """Paper Example 3: AllSat(MCS(e_top)) = {(0,1), (1,0)}."""

    def test_all_satisfying_vectors(self, translator):
        vectors = satisfying_vectors(translator, MCS(Atom("Top")))
        as_tuples = {(v["e1"], v["e2"]) for v in vectors}
        assert as_tuples == {(False, True), (True, False)}

    def test_count(self, translator):
        assert count_satisfying_vectors(translator, MCS(Atom("Top"))) == 2

    def test_cubes_view(self, translator):
        cubes = satisfying_cubes(translator, MCS(Atom("Top")))
        assert len(cubes) == 2


class TestWalk:
    def test_walk_needs_every_branching_variable(self, translator):
        root = translator.bdd(Atom("Top"))
        with pytest.raises(StatusVectorError):
            walk(translator.manager, root, {"e1": False})

    def test_walk_ignores_irrelevant_variables(self, translator):
        root = translator.bdd(Atom("e1"))
        assert walk(translator.manager, root, {"e1": True})

    def test_check_validates_the_vector(self, translator):
        with pytest.raises(StatusVectorError):
            check(translator, Atom("Top"), {"e1": True})

    def test_terminal_formulas(self, translator):
        assert check(
            translator, parse_formula("true"), {"e1": False, "e2": False}
        )
        assert not check(
            translator, parse_formula("false"), {"e1": True, "e2": True}
        )
