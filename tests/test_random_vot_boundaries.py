"""Regression tests: random trees must exercise VOT arity boundaries.

A VOT gate with threshold ``k == 1`` is OR-equivalent and with
``k == n`` (its arity) AND-equivalent.  Those degenerate forms are the
classic off-by-one sites in threshold lowering, yet a uniform threshold
draw on 2-3 children almost never lands on them — so the property suite
silently skipped them.  ``RandomTreeConfig.vot_boundary_bias`` pins the
draw to the boundaries; these tests prove the generator produces both
forms, that the shared hypothesis strategy covers them, and that their
semantics match the equivalent OR/AND gate everywhere (structure
function and BDD alike).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import find, settings

from bfl_strategies import small_trees
from repro.bdd import BDDManager
from repro.ft import (
    FaultTree,
    GateSwap,
    GateType,
    RandomTreeConfig,
    apply_edits,
    random_tree,
    structure_function,
    tree_to_bdd,
)

BIASED = RandomTreeConfig(
    n_basic_events=6, max_children=3, p_vot=1.0, vot_boundary_bias=1.0
)


def _vot_thresholds(tree: FaultTree) -> list:
    return [
        (tree.gate(name).threshold, len(tree.gate(name).children))
        for name in tree.gate_names
        if tree.gate(name).gate_type is GateType.VOT
    ]


def test_bias_validation() -> None:
    with pytest.raises(ValueError):
        RandomTreeConfig(vot_boundary_bias=1.5)
    with pytest.raises(ValueError):
        RandomTreeConfig(vot_boundary_bias=-0.1)


def test_full_bias_generates_both_boundaries() -> None:
    seen_or, seen_and = False, False
    for seed in range(40):
        tree = random_tree(seed, BIASED)
        for name in tree.gate_names:
            gate = tree.gate(name)
            if gate.gate_type is not GateType.VOT:
                continue
            threshold, arity = gate.threshold, len(gate.children)
            if name != tree.top:
                # The top gate may absorb unused basic events after its
                # threshold is drawn, widening its arity past the pin.
                assert threshold in (1, arity), (
                    "bias 1.0 must pin every VOT threshold to a boundary"
                )
            seen_or = seen_or or threshold == 1
            seen_and = seen_and or (threshold == arity and arity > 1)
    assert seen_or and seen_and


def test_default_bias_unchanged() -> None:
    # bias defaults to 0.0: the seeded stream (and thus every recorded
    # benchmark tree) is identical to the pre-knob generator.
    legacy = RandomTreeConfig(n_basic_events=6, max_children=3, p_vot=1.0)
    biased_off = RandomTreeConfig(
        n_basic_events=6, max_children=3, p_vot=1.0, vot_boundary_bias=0.0
    )
    for seed in (0, 7, 99):
        a, b = random_tree(seed, legacy), random_tree(seed, biased_off)
        assert a.elements == b.elements
        assert _vot_thresholds(a) == _vot_thresholds(b)


@pytest.mark.parametrize("boundary", ["or", "and"])
def test_strategy_covers_boundary(boundary: str) -> None:
    """The shared ``small_trees`` strategy can produce each boundary."""

    def has_boundary(tree: FaultTree) -> bool:
        for threshold, arity in _vot_thresholds(tree):
            if boundary == "or" and threshold == 1:
                return True
            if boundary == "and" and arity > 1 and threshold == arity:
                return True
        return False

    found = find(
        small_trees(),
        has_boundary,
        settings=settings(max_examples=500, database=None),
    )
    assert has_boundary(found)


@pytest.mark.parametrize("seed", range(12))
def test_boundary_vot_matches_and_or(seed: int) -> None:
    """VOT(1/n) == OR and VOT(n/n) == AND on every status vector and
    as BDDs (the gate-swap edit supplies the equivalent plain gate)."""
    tree = random_tree(seed, BIASED)
    sites = [
        name
        for name in tree.gate_names
        if tree.gate(name).gate_type is GateType.VOT
        and tree.gate(name).threshold
        in (1, len(tree.gate(name).children))
    ]
    if not sites:
        pytest.skip("seed drew no boundary VOT gate")
    events = sorted(tree.basic_events)
    for site in sites:
        gate = tree.gate(site)
        kind = "or" if gate.threshold == 1 else "and"
        swapped = apply_edits(tree, [GateSwap(site, kind)])
        for bits in itertools.product([False, True], repeat=len(events)):
            vector = dict(zip(events, bits))
            assert structure_function(tree, vector) == structure_function(
                swapped, vector
            )
    manager = BDDManager(events)
    assert tree_to_bdd(tree, manager) == tree_to_bdd(
        apply_edits(
            tree,
            [
                GateSwap(
                    site,
                    "or" if tree.gate(site).threshold == 1 else "and",
                )
                for site in sites
            ],
        ),
        manager,
    )
