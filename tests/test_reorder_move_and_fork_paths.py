"""Tests for the fork fast paths: ``BDDManager.move_to_level``, the
edit-driven dirty set, and sibling-translator adoption.

These three pieces exist for one reason — keeping a copy-on-write
variant fork proportional to the *edit*, not the tree:

* ``move_to_level`` parks a just-declared placeholder (or basic event)
  where its subtree lives, so the splice compose grafts instead of
  recombining through every level in between;
* ``changed_elements_from_edits`` reads the dirty set off the edit
  script instead of diffing record tables;
* ``adopt_from`` bulk-seeds a child translator from its parent without
  copying or re-checking the shared manager's handles.

Each is checked against the slow, general machinery it shortcuts.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.errors import SnapshotError, VariableError
from repro.ft import (
    GateSwap,
    WeightChange,
    apply_edits,
    changed_elements,
    changed_elements_from_edits,
)
from repro.ft.to_bdd import TreeTranslator, hole_variable
from bfl_strategies import small_trees

_SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VARS = ("a", "b", "c", "d", "e")


def _random_bdd(manager: BDDManager, rng: random.Random, depth: int = 4):
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.1:
            return manager.constant(rng.random() < 0.5)
        ref = manager.var(rng.choice(VARS))
        return manager.negate(ref) if rng.random() < 0.5 else ref
    left = _random_bdd(manager, rng, depth - 1)
    right = _random_bdd(manager, rng, depth - 1)
    out = manager.apply(rng.choice(("and", "or", "xor")), left, right)
    return manager.negate(out) if rng.random() < 0.3 else out


def _assignments():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


# ----------------------------------------------------------------------
# move_to_level
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    name=st.sampled_from(VARS),
    target=st.integers(min_value=0, max_value=len(VARS) - 1),
)
@settings(**_SETTINGS)
def test_move_to_level_preserves_functions(seed, name, target):
    """Every live handle denotes the same function after any move."""
    manager = BDDManager(VARS)
    rng = random.Random(seed)
    roots = [_random_bdd(manager, rng) for _ in range(3)]
    tables = [
        [manager.evaluate(root, a) for a in _assignments()]
        for root in roots
    ]
    manager.move_to_level(name, target)
    assert manager.level_of(name) == target
    assert (
        [[manager.evaluate(root, a) for a in _assignments()]
         for root in roots]
        == tables
    )
    manager.check_invariants()


def test_move_to_level_reorders_and_validates():
    manager = BDDManager(VARS)
    manager.move_to_level("e", 0)
    assert manager.variables == ("e", "a", "b", "c", "d")
    manager.move_to_level("e", 4)
    assert manager.variables == ("a", "b", "c", "d", "e")
    with pytest.raises(VariableError):
        manager.move_to_level("nope", 0)
    with pytest.raises(VariableError):
        manager.move_to_level("a", len(VARS))
    with pytest.raises(VariableError):
        manager.move_to_level("a", -1)


def test_move_to_level_noop_keeps_memo_tables():
    manager = BDDManager(VARS)
    ab = manager.apply("and", manager.var("a"), manager.var("b"))
    cd = manager.apply("or", manager.var("c"), manager.var("d"))
    manager.apply("xor", ab, cd)
    before = manager.cache_stats()["apply_cache_size"]
    assert before > 0
    manager.move_to_level("a", manager.level_of("a"))
    assert manager.cache_stats()["apply_cache_size"] == before
    manager.move_to_level("a", 3)
    assert manager.cache_stats()["apply_cache_size"] == 0


@given(data=small_trees())
@settings(**_SETTINGS)
def test_splice_parks_hole_above_site_support(data):
    """After a splice, the placeholder sits at or above the site's
    support, and the spliced top still equals the direct lowering."""
    tree = data
    manager = BDDManager(tree.basic_events)
    translator = TreeTranslator(tree, manager)
    reference = translator.top()
    sites = [name for name in tree.gate_names if name != tree.top]
    if not sites:
        return
    site = sorted(sites)[0]
    spliced = translator.splice(site, translator.element(site))
    assert spliced == reference
    hole = hole_variable(site)
    support = manager.support(translator.element(site))
    if support:
        assert manager.level_of(hole) <= min(
            manager.level_of(v) for v in support
        )
    manager.check_invariants()


# ----------------------------------------------------------------------
# changed_elements_from_edits
# ----------------------------------------------------------------------


@given(data=small_trees(), seed=st.integers(0, 2**31 - 1))
@settings(**_SETTINGS)
def test_dirty_from_edits_covers_record_diff(data, seed):
    """The edit-driven dirty set contains the record-diff one (the
    direction the translator caches rely on)."""
    tree = data
    rng = random.Random(seed)
    gates = sorted(tree.gate_names)
    events = sorted(tree.basic_events)
    edits = []
    for _ in range(rng.randint(1, 3)):
        if rng.random() < 0.5 and gates:
            gate = rng.choice(gates)
            arity = len(tree.gate(gate).children)
            if rng.random() < 0.5 and arity >= 1:
                edits.append(GateSwap(gate, "vot", rng.randint(1, arity)))
            else:
                edits.append(GateSwap(gate, rng.choice(("and", "or"))))
        else:
            edits.append(WeightChange(rng.choice(events), 0.42))
    new_tree = apply_edits(tree, edits)
    exact = changed_elements(tree, new_tree)
    estimated = changed_elements_from_edits(tree, new_tree, edits)
    assert exact <= estimated
    # The over-approximation is bounded by the edit targets' ancestor
    # closure — never the whole tree for a local edit script.
    seeds = {e.gate for e in edits if isinstance(e, GateSwap)}
    allowed = set(seeds)
    stack = list(seeds)
    while stack:
        for parent in new_tree.parents(stack.pop()):
            if parent not in allowed:
                allowed.add(parent)
                stack.append(parent)
    assert estimated <= allowed


def test_dirty_from_edits_noop_swap_is_conservative_only():
    """A no-op GateSwap dirties its target (allowed) but nothing else
    beyond the ancestor closure."""
    from repro.ft import figure1_tree

    tree = figure1_tree()
    gate = next(
        name for name in tree.gate_names if name != tree.top
    )
    swap = GateSwap(gate, tree.gate(gate).gate_type)
    new_tree = apply_edits(tree, [swap])
    assert changed_elements(tree, new_tree) == frozenset()
    estimated = changed_elements_from_edits(tree, new_tree, [swap])
    assert gate in estimated


# ----------------------------------------------------------------------
# adopt_from
# ----------------------------------------------------------------------


def test_adopt_from_matches_filtered_adopt():
    from repro.ft import figure1_tree

    tree = figure1_tree()
    manager = BDDManager(tree.basic_events)
    parent = TreeTranslator(tree, manager)
    parent.top()

    child = TreeTranslator(tree, manager)
    skip = frozenset({tree.top})
    child.adopt_from(parent, skip=skip)
    expected = {
        name: ref
        for name, ref in parent.export_cache().items()
        if name not in skip
    }
    assert dict(child.export_cache()) == expected

    other = TreeTranslator(tree, BDDManager(tree.basic_events))
    with pytest.raises(SnapshotError):
        other.adopt_from(parent)


def test_adopt_from_skips_foreign_names():
    """Names absent from the adopting tree are dropped silently (the
    fork path adopts from a tree the edit may have shrunk)."""
    from repro.ft import figure1_tree
    from repro.ft.elements import BasicEvent, Gate, GateType

    tree = figure1_tree()
    manager = BDDManager(tree.basic_events)
    parent = TreeTranslator(tree, manager)
    parent.top()
    events = sorted(tree.basic_events)[:2]
    small = __import__("repro.ft.tree", fromlist=["FaultTree"]).FaultTree(
        [BasicEvent(name) for name in events],
        [Gate("small_top", GateType.OR, tuple(events))],
        "small_top",
    )
    child = TreeTranslator(small, manager)
    child.adopt_from(parent)
    assert set(child.cached_elements) <= set(small.elements)
