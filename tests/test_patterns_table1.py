"""Golden tests for Table I: patterns, example vectors, counterexamples.

One deliberate finding is recorded here: for ``MCS(e1)`` with
``b = (1,1,1)``, Algorithm 4 (as written in the paper, under the e2<e4<e5
order) yields ``(1,1,0)`` while Table I prints ``(1,0,1)``.  Both are
Def. 7-compliant counterexamples over the same two MCSs; the table's entry
corresponds to flipping e4 rather than e5.  We pin our deterministic output
*and* check the paper's vector is among the exhaustive Def. 7 witnesses.
See EXPERIMENTS.md.
"""

import pytest

from repro.ft import table1_tree
from repro.checker import (
    ModelChecker,
    classify,
    exhaustive_counterexamples,
)
from repro.logic import parse_formula


@pytest.fixture(scope="module")
def checker():
    return ModelChecker(table1_tree())


def _bits(tree, vector):
    return tuple(int(vector[name]) for name in tree.basic_events)


class TestPatternClassification:
    @pytest.mark.parametrize(
        "text,pattern",
        [
            ("MCS(e1)", "pattern1"),
            ("MPS(e1)", "pattern2"),
            ("MCS(e1) & MCS(e3)", "pattern3"),
            ("MPS(e1) & MPS(e3)", "pattern4"),
        ],
    )
    def test_table1_formulae_classify(self, text, pattern):
        assert classify(parse_formula(text)) == [pattern]


class TestTable1Rows:
    """Each row: b does not satisfy chi; the counterexample does."""

    CASES = [
        # (formula, example bits, paper's counterexample bits)
        ("MCS(e1)", (0, 1, 0), (1, 1, 0)),
        ("MCS(e1)", (1, 1, 1), (1, 0, 1)),
        ("MPS(e1)", (1, 0, 1), (1, 0, 0)),
        ("MPS(e1)", (0, 0, 0), (0, 1, 1)),
        ("MCS(e1) & MCS(e3)", (0, 1, 0), (1, 1, 0)),
        ("MPS(e1) & MPS(e3)", (1, 0, 1), (1, 0, 0)),
    ]

    @pytest.mark.parametrize("text,example,paper_cex", CASES)
    def test_example_vector_does_not_satisfy(self, checker, text, example, paper_cex):
        assert not checker.check(text, bits=example)

    @pytest.mark.parametrize("text,example,paper_cex", CASES)
    def test_paper_counterexample_satisfies(self, checker, text, example, paper_cex):
        assert checker.check(text, bits=paper_cex)

    @pytest.mark.parametrize("text,example,paper_cex", CASES)
    def test_paper_counterexample_is_def7_compliant(
        self, checker, text, example, paper_cex
    ):
        tree = checker.tree
        witnesses = exhaustive_counterexamples(
            checker.translator,
            parse_formula(text),
            tree.vector_from_bits(example),
        )
        assert tree.vector_from_bits(paper_cex) in [
            w.vector for w in witnesses
        ]

    @pytest.mark.parametrize("text,example,paper_cex", CASES)
    def test_algorithm4_output_is_valid(self, checker, text, example, paper_cex):
        cex = checker.counterexample(text, bits=example)
        assert checker.check(text, vector=cex.vector)
        assert cex.def7_compliant


class TestExactVectors:
    """Pin Algorithm 4's deterministic outputs under the e2<e4<e5 order."""

    EXPECTED = {
        ("MCS(e1)", (0, 1, 0)): (1, 1, 0),  # matches Table I
        ("MCS(e1)", (1, 1, 1)): (1, 1, 0),  # Table I prints (1,0,1) — the
        # other MCS witness; see the module docstring and EXPERIMENTS.md.
        ("MPS(e1)", (1, 0, 1)): (1, 0, 0),  # matches Table I
        ("MPS(e1)", (0, 0, 0)): (0, 1, 1),  # matches Table I
        ("MCS(e1) & MCS(e3)", (0, 1, 0)): (1, 1, 0),  # matches Table I
        ("MPS(e1) & MPS(e3)", (1, 0, 1)): (1, 0, 0),  # matches Table I
    }

    @pytest.mark.parametrize("key,expected", sorted(EXPECTED.items()))
    def test_algorithm4_deterministic_output(self, checker, key, expected):
        text, example = key
        cex = checker.counterexample(text, bits=example)
        assert _bits(checker.tree, cex.vector) == expected

    def test_five_of_six_rows_match_table1_exactly(self, checker):
        matches = 0
        for text, example, paper_cex in TestTable1Rows.CASES:
            cex = checker.counterexample(text, bits=example)
            if _bits(checker.tree, cex.vector) == paper_cex:
                matches += 1
        assert matches == 5


class TestPattern34Semantics:
    """Table I's pattern-3/4 rows force the SUPPORT minimality scope
    (DESIGN.md deviation 2): under FULL scope the conjunctions are
    unsatisfiable."""

    def test_pattern3_satisfiable_under_support_scope(self, checker):
        assert checker.check("exists (MCS(e1) & MCS(e3))")

    def test_pattern3_unsatisfiable_under_full_scope(self):
        from repro.logic import MinimalityScope

        full = ModelChecker(table1_tree(), scope=MinimalityScope.FULL)
        assert not full.check("exists (MCS(e1) & MCS(e3))")

    def test_pattern4_satisfiable_under_support_scope(self, checker):
        assert checker.check("exists (MPS(e1) & MPS(e3))")
