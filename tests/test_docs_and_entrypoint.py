"""Keep the documentation honest: README snippets, docs claims, and the
installed ``bfl`` console entry point."""

import pathlib
import shutil
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs_as_documented(self):
        from repro import ModelChecker, build_covid_tree

        checker = ModelChecker(build_covid_tree())
        assert checker.check("forall (IS => MoT)") is False
        sets = checker.satisfaction_set("MCS(MoT) & IS").failed_sets()
        assert sets == [frozenset({"H1", "H5", "IS"})]
        assert len(checker.minimal_path_sets()) == 12
        description = checker.independence("CIO", "CIS").describe()
        assert "H1" in description
        cex = checker.counterexample(
            "MCS(IWoS)", failed=["IW", "H3", "IT"]
        )
        assert cex.vector is not None

    def test_scenario_snippet_runs_as_documented(self):
        from repro import build_covid_tree
        from repro.checker import ScenarioAnalyzer

        scenarios = ScenarioAnalyzer(build_covid_tree())
        assert scenarios.necessary_events() == ["H1", "VW"]
        assert scenarios.cut_sets_given(failed=["H1", "VW"])
        assert not scenarios.failure_bound_implies(
            ">=", 2, ["H1", "H2", "H3", "H4", "H5"]
        )

    def test_top_level_exports_match_readme(self):
        import repro

        for name in (
            "ModelChecker",
            "build_covid_tree",
            "FaultTreeBuilder",
            "parse",
            "MinimalityScope",
        ):
            assert hasattr(repro, name), name


class TestDocsFilesExist:
    @pytest.mark.parametrize(
        "path",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/dsl.md",
            "docs/algorithms.md",
        ],
    )
    def test_documentation_present_and_nonempty(self, path):
        full = ROOT / path
        assert full.is_file()
        assert len(full.read_text(encoding="utf-8")) > 500

    def test_design_records_the_verified_paper(self):
        text = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "Paper text verified" in text

    def test_experiments_covers_all_nine_properties(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for pid in [f"P{i}" for i in range(1, 10)]:
            assert f"| {pid}" in text, pid


class TestConsoleEntryPoint:
    @pytest.mark.skipif(
        shutil.which("bfl") is None, reason="console script not on PATH"
    )
    def test_bfl_script_runs(self):
        result = subprocess.run(
            ["bfl", "--version"], capture_output=True, text=True, timeout=60
        )
        assert result.returncode == 0
        assert "bfl" in result.stdout

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "mcs", "--element", "SH"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "{H1, VW}" in result.stdout
