"""Dual trees: the classical MCS/MPS duality (DESIGN.md deviation 1)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.ft import (
    FaultTreeBuilder,
    dual_tree,
    example_vot_tree,
    figure1_tree,
    minimal_cut_sets,
    minimal_path_sets,
    structure_function,
)

from bfl_strategies import small_trees


def _as_sets(items):
    return sorted(items, key=lambda s: (len(s), sorted(s)))


class TestDualConstruction:
    def test_gate_types_swap(self):
        tree = figure1_tree()
        dual = dual_tree(tree)
        assert dual.gate_type("CP/R").value == "and"
        assert dual.gate_type("CP").value == "or"

    def test_vot_threshold_maps_to_n_minus_k_plus_1(self):
        tree = example_vot_tree()  # VOT(2/3)
        dual = dual_tree(tree)
        assert dual.gate("V").threshold == 2  # 3 - 2 + 1

    def test_double_dual_is_identity(self):
        tree = figure1_tree()
        double = dual_tree(dual_tree(tree))
        for name in tree.gate_names:
            assert double.gate(name) == tree.gate(name)


class TestDualSemantics:
    def test_dual_structure_function(self):
        tree = figure1_tree()
        dual = dual_tree(tree)
        names = tree.basic_events
        for bits in itertools.product([False, True], repeat=len(names)):
            vector = dict(zip(names, bits))
            complement = {name: not value for name, value in vector.items()}
            assert structure_function(dual, vector) is (
                not structure_function(tree, complement)
            )

    def test_mcs_of_dual_is_mps_of_original_fig1(self):
        tree = figure1_tree()
        dual = dual_tree(tree)
        assert _as_sets(minimal_cut_sets(dual)) == _as_sets(
            minimal_path_sets(tree)
        )

    @given(tree=small_trees())
    @settings(max_examples=40, deadline=None)
    def test_mcs_of_dual_is_mps_of_original_random(self, tree):
        dual = dual_tree(tree)
        assert _as_sets(minimal_cut_sets(dual)) == _as_sets(
            minimal_path_sets(tree)
        )

    @given(tree=small_trees())
    @settings(max_examples=40, deadline=None)
    def test_mps_of_dual_is_mcs_of_original_random(self, tree):
        dual = dual_tree(tree)
        assert _as_sets(minimal_path_sets(dual)) == _as_sets(
            minimal_cut_sets(tree)
        )
