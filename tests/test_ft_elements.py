"""Validation rules on basic events and gates (paper Def. 1)."""

import pytest

from repro.errors import GateArityError
from repro.ft import BasicEvent, Gate, GateType


class TestBasicEvent:
    def test_minimal_construction(self):
        be = BasicEvent("IW")
        assert be.name == "IW"
        assert be.description == ""
        assert be.probability is None

    def test_description_and_probability(self):
        be = BasicEvent("IW", "Infected worker", probability=0.25)
        assert be.description == "Infected worker"
        assert be.probability == 0.25

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            BasicEvent("")

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probability_out_of_range_rejected(self, bad):
        with pytest.raises(ValueError):
            BasicEvent("IW", probability=bad)

    def test_is_immutable(self):
        be = BasicEvent("IW")
        with pytest.raises(AttributeError):
            be.name = "other"


class TestGate:
    def test_and_gate(self):
        gate = Gate("CP", GateType.AND, ("IW", "H3"))
        assert gate.arity == 2
        assert gate.describe_type() == "AND"

    def test_or_gate_single_child_allowed(self):
        # Def. 1 only requires ch(e) non-empty; CVT in Fig. 2 has one child.
        gate = Gate("CVT", GateType.OR, ("UT",))
        assert gate.arity == 1

    def test_no_children_rejected(self):
        with pytest.raises(GateArityError):
            Gate("G", GateType.OR, ())

    def test_duplicate_children_rejected(self):
        with pytest.raises(GateArityError):
            Gate("G", GateType.AND, ("a", "a"))

    def test_vot_needs_threshold(self):
        with pytest.raises(GateArityError):
            Gate("V", GateType.VOT, ("a", "b"))

    @pytest.mark.parametrize("k", [0, 4])
    def test_vot_threshold_range(self, k):
        with pytest.raises(GateArityError):
            Gate("V", GateType.VOT, ("a", "b", "c"), threshold=k)

    def test_vot_describe_type(self):
        gate = Gate("V", GateType.VOT, ("a", "b", "c"), threshold=2)
        assert gate.describe_type() == "VOT(2/3)"

    def test_threshold_on_non_vot_rejected(self):
        with pytest.raises(GateArityError):
            Gate("G", GateType.AND, ("a", "b"), threshold=1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Gate("", GateType.OR, ("a",))
