"""Galileo format: parsing, serialisation, round-trips and error reporting."""

import pytest

from repro.casestudy import build_covid_tree
from repro.errors import GalileoFormatError
from repro.ft import GateType, dumps, loads
from repro.ft.galileo import dump, load


SAMPLE = """
// COVID excerpt
toplevel "CP/R";
"CP/R" or "CP" "CR";
"CP" and "IW" "H3";
"CR" and "IT" "H2";
"IW" prob=0.1;
"H3";
"IT";
"H2";
"""


class TestParsing:
    def test_basic_document(self):
        tree = loads(SAMPLE)
        assert tree.top == "CP/R"
        assert tree.gate_type("CP/R") is GateType.OR
        assert tree.children("CP") == ("IW", "H3")
        assert tree.basic_event("IW").probability == 0.1

    def test_unquoted_names(self):
        tree = loads("toplevel top; top and a b; a; b;")
        assert tree.top == "top"
        assert set(tree.basic_events) == {"a", "b"}

    def test_vot_gate(self):
        tree = loads("toplevel v; v 2of3 a b c; a; b; c;")
        gate = tree.gate("v")
        assert gate.gate_type is GateType.VOT
        assert gate.threshold == 2

    def test_implicit_basic_events(self):
        tree = loads("toplevel g; g and x y;")
        assert set(tree.basic_events) == {"x", "y"}

    def test_comments_stripped(self):
        text = (
            "// line comment\n"
            "toplevel g; # hash comment\n"
            "/* block\ncomment */ g or a; a;"
        )
        tree = loads(text)
        assert tree.top == "g"

    def test_other_attributes_ignored(self):
        tree = loads("toplevel g; g or a; a lambda=0.5 dorm=0.1;")
        assert tree.basic_event("a").probability is None


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "g or a; a;",  # missing toplevel
            "toplevel g; toplevel h; g or a; a;",  # duplicate toplevel
            "toplevel g; g or;",  # gate without children
            "toplevel v; v 2of3 a b; a; b;",  # VOT arity mismatch
            "toplevel g; g or a; a prob=xx;",  # bad probability
            "toplevel g; g or a; a; a;",  # duplicate basic event
            "toplevel;",  # malformed toplevel
            "toplevel g; g or a; what is this;",  # unrecognised statement
        ],
    )
    def test_rejected_documents(self, text):
        with pytest.raises(GalileoFormatError):
            loads(text)


class TestRoundTrip:
    def test_fig1_round_trip(self):
        from repro.ft import figure1_tree

        tree = figure1_tree()
        reparsed = loads(dumps(tree))
        assert reparsed.top == tree.top
        assert set(reparsed.basic_events) == set(tree.basic_events)
        for name in tree.gate_names:
            assert reparsed.children(name) == tree.children(name)
            assert reparsed.gate_type(name) == tree.gate_type(name)

    def test_covid_round_trip(self):
        tree = build_covid_tree()
        reparsed = loads(dumps(tree))
        assert reparsed.top == tree.top
        assert set(reparsed.elements) == set(tree.elements)
        for name in tree.gate_names:
            assert reparsed.children(name) == tree.children(name)

    def test_vot_round_trip(self):
        from repro.ft import example_vot_tree

        tree = example_vot_tree()
        reparsed = loads(dumps(tree))
        assert reparsed.gate("V").threshold == 2

    def test_probability_round_trip(self):
        tree = loads("toplevel g; g or a b; a prob=0.25; b;")
        reparsed = loads(dumps(tree))
        assert reparsed.basic_event("a").probability == 0.25
        assert reparsed.basic_event("b").probability is None

    def test_file_io(self, tmp_path):
        tree = build_covid_tree()
        path = tmp_path / "covid.dft"
        dump(tree, str(path))
        reparsed = load(str(path))
        assert reparsed.top == "IWoS"
