"""The ``bfl`` command line tool, driven through ``main(argv)``."""

import pytest

from repro.cli import main
from repro.ft import dumps, figure1_tree


@pytest.fixture()
def fig1_file(tmp_path):
    path = tmp_path / "fig1.dft"
    path.write_text(dumps(figure1_tree()), encoding="utf-8")
    return str(path)


class TestCheck:
    def test_layer2_query_holds(self, capsys):
        assert main(["check", "forall (CP => IWoS | !IWoS)"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_layer2_query_fails_with_exit_code(self, capsys):
        assert main(["check", "forall (IS => MoT)"]) == 1
        assert "does NOT hold" in capsys.readouterr().out

    def test_layer1_with_failed_events(self, capsys, fig1_file):
        code = main(
            ["check", "--tree", fig1_file, "MCS(CP/R)", "--failed", "IW,H3"]
        )
        assert code == 0

    def test_layer1_with_bits(self, fig1_file):
        assert main(["check", "--tree", fig1_file, "MCS(CP/R)", "--bits", "1,1,0,0"]) == 0

    def test_satset_brackets(self, capsys):
        assert main(["check", "[[ MCS(MoT) & IS ]]"]) == 0
        out = capsys.readouterr().out
        assert "{H1, H5, IS}" in out

    def test_error_reported_cleanly(self, capsys):
        assert main(["check", "this is ! not (("]) == 2
        assert "error:" in capsys.readouterr().err


class TestAllSat:
    def test_failed_view(self, capsys):
        assert main(["allsat", "MCS(IWoS) & H4"]) == 0
        out = capsys.readouterr().out
        assert "{H1, H2, H4, IT, VW}" in out

    def test_operational_view(self, capsys, fig1_file):
        assert (
            main(
                [
                    "allsat",
                    "--tree",
                    fig1_file,
                    "MPS(CP/R)",
                    "--view",
                    "operational",
                ]
            )
            == 0
        )
        assert "{IT, IW}" in capsys.readouterr().out


class TestMinimalSets:
    def test_mcs_default_element(self, capsys, fig1_file):
        assert main(["mcs", "--tree", fig1_file]) == 0
        out = capsys.readouterr().out
        assert "2 minimal cut sets for CP/R" in out
        assert "{H3, IW}" in out

    def test_mps_with_element(self, capsys):
        assert main(["mps", "--element", "MoT"]) == 0
        out = capsys.readouterr().out
        assert "minimal path sets for MoT" in out

    def test_covid_mps_count(self, capsys):
        assert main(["mps"]) == 0
        assert "12 minimal path sets" in capsys.readouterr().out


class TestCounterexample:
    def test_cex_output(self, capsys, fig1_file):
        code = main(
            [
                "cex",
                "--tree",
                fig1_file,
                "MCS(CP/R)",
                "--failed",
                "IW,H3,IT",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "changed basic events" in out

    def test_cex_closest_method(self, capsys, fig1_file):
        code = main(
            [
                "cex",
                "--tree",
                fig1_file,
                "MCS(CP/R)",
                "--bits",
                "0,0,0,0",
                "--method",
                "closest",
            ]
        )
        assert code == 0

    def test_unsatisfiable_formula_errors(self, capsys, fig1_file):
        code = main(
            ["cex", "--tree", fig1_file, "CP & !CP", "--bits", "0,0,0,0"]
        )
        assert code == 2


class TestShowAndDot:
    def test_show(self, capsys):
        assert main(["show"]) == 0
        assert "IWoS (AND)" in capsys.readouterr().out

    def test_show_with_failures(self, capsys, fig1_file):
        assert main(["show", "--tree", fig1_file, "--failed", "IW"]) == 0
        assert "[X]" in capsys.readouterr().out

    def test_dot(self, capsys):
        assert main(["dot", "--descriptions"]) == 0
        out = capsys.readouterr().out
        assert "digraph" in out and "Mode of transmission" in out


class TestReport:
    def test_covid_report(self, capsys):
        assert main(["covid-report"]) == 0
        out = capsys.readouterr().out
        assert "ALL MATCH" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestQuantitativeCommands:
    def test_prob_value(self, capsys):
        assert main(["prob", "IWoS", "--uniform", "0.1"]) == 0
        assert "P = " in capsys.readouterr().out

    def test_prob_query_holds(self, capsys):
        assert main(["prob", "P(IWoS) <= 0.01", "--uniform", "0.1"]) == 0

    def test_prob_query_fails_exit_code(self, capsys):
        assert main(["prob", "P(IWoS) >= 0.5", "--uniform", "0.1"]) == 1

    def test_prob_with_overrides(self, capsys, fig1_file):
        code = main(
            [
                "prob",
                "--tree",
                fig1_file,
                "CP",
                "--probabilities",
                "IW=0.5,H3=0.5,IT=0.1,H2=0.1",
            ]
        )
        assert code == 0
        assert "P = 0.25" in capsys.readouterr().out

    def test_importance_table(self, capsys):
        assert main(["importance", "--uniform", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Birnbaum" in out and "H1" in out

    def test_modules(self, capsys):
        assert main(["modules"]) == 0
        out = capsys.readouterr().out
        assert "IWoS" in out and "module" in out
