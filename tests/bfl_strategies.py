"""Shared hypothesis strategies for the test suite.

Kept in a module of its own (rather than ``conftest.py``) because test
modules import these helpers directly: pytest imports every ``conftest.py``
under the top-level module name ``conftest``, so ``from conftest import ...``
in ``tests/`` can resolve to ``benchmarks/conftest.py`` depending on
collection order.  A uniquely named module has no such ambiguity.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ft import FaultTree, RandomTreeConfig, random_tree
from repro.logic.ast_nodes import (
    MCS,
    MPS,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Formula,
    Implies,
    Not,
    NotEquiv,
    Or,
    Vot,
)


def small_trees(max_basic_events: int = 5) -> st.SearchStrategy[FaultTree]:
    """Random well-formed fault trees small enough for enumeration."""

    def build(params) -> FaultTree:
        seed, n_be, max_children, p_vot, p_share, boundary = params
        config = RandomTreeConfig(
            n_basic_events=n_be,
            max_children=max_children,
            p_vot=p_vot,
            p_share=p_share,
            max_depth=3,
            vot_boundary_bias=boundary,
        )
        return random_tree(seed, config)

    return st.tuples(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=max_basic_events),
        st.integers(min_value=2, max_value=3),
        st.sampled_from([0.0, 0.2, 0.5]),
        st.sampled_from([0.0, 0.25, 0.5]),
        # Degenerate VOT forms (k == 1 ~ OR, k == n ~ AND) are vanishingly
        # rare under a uniform threshold draw on 2-3 children; bias the
        # generator so the suite actually covers the arity boundaries.
        st.sampled_from([0.0, 0.5, 1.0]),
    ).map(build)


def vectors_for(tree: FaultTree) -> st.SearchStrategy[dict]:
    """Status vectors over the tree's basic events."""
    names = list(tree.basic_events)
    return st.tuples(*[st.booleans() for _ in names]).map(
        lambda bits: dict(zip(names, bits))
    )


def formulas_for(
    tree: FaultTree,
    max_depth: int = 3,
    allow_minimal_ops: bool = True,
) -> st.SearchStrategy[Formula]:
    """Random BFL formulae over the tree's elements.

    MCS/MPS operators are included (depth-limited) unless disabled; their
    reference evaluation is exponential, so keep trees small.
    """
    element_atoms = st.sampled_from(
        [Atom(name) for name in tree.elements]
    )
    constants = st.sampled_from([Constant(True), Constant(False)])
    leaves = st.one_of(element_atoms, element_atoms, constants)

    def extend(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
        be_names = list(tree.basic_events)
        evidence = st.builds(
            lambda operand, pairs: Evidence(operand, tuple(pairs)),
            children,
            st.lists(
                st.tuples(st.sampled_from(be_names), st.booleans()),
                min_size=1,
                max_size=2,
            ),
        )
        binary = st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Implies, children, children),
            st.builds(Equiv, children, children),
            st.builds(NotEquiv, children, children),
        )
        vot = st.builds(
            lambda ops, op, k: Vot(op, min(k, len(ops)), tuple(ops)),
            st.lists(children, min_size=1, max_size=3),
            st.sampled_from(["<", "<=", "=", ">=", ">"]),
            st.integers(min_value=0, max_value=3),
        )
        options = [st.builds(Not, children), binary, evidence, vot]
        if allow_minimal_ops:
            options.append(st.builds(MCS, children))
            options.append(st.builds(MPS, children))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_depth * 2)
