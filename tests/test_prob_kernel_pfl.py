"""PR 4: the in-kernel weighted-evaluation engine and the PFL surface.

Covers the deep-BDD probability regression (pinned at the same depth the
kernel ``sat_count`` tests use), the complement-edge cache sharing, the
probability cache's GC/reordering lifecycle, hypothesis cross-validation
against enumeration and the recursive baseline, the PFL parser/AST, and
the batch-service / CLI integration.
"""

import json
import math
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.cli import main
from repro.errors import FaultTreeError, LogicError, MissingWeightError, ReproError
from repro.ft import FaultTreeBuilder, figure1_tree, random_tree, tree_to_bdd
from repro.ft.random_trees import RandomTreeConfig
from repro.logic import atom
from repro.logic.ast_nodes import Atom, Or, ProbabilityQuery
from repro.logic.parser import format_statement, parse
from repro.logic.semantics import ReferenceSemantics
from repro.prob import (
    MissingProbabilityError,
    ProbabilityChecker,
    ZeroProbabilityEvidenceError,
    bdd_probability,
    conditional_probability,
    enumeration_probability,
    parse_prob_query,
    recursive_probability,
)
from repro.service import BatchAnalyzer

from bfl_strategies import formulas_for, small_trees

UNIFORM = 0.1


def _uniform(tree, p=UNIFORM):
    return {name: p for name in tree.basic_events}


def _sample_manager():
    m = BDDManager(["a", "b", "c"])
    f = m.or_(m.var("a"), m.and_(m.var("b"), m.var("c")))
    w = {"a": 0.1, "b": 0.2, "c": 0.3}
    return m, f, w


# ----------------------------------------------------------------------
# Satellite: the deep-BDD RecursionError regression
# ----------------------------------------------------------------------

class TestDeepChainProbability:
    """The crash that motivated the kernel pass: a depth-4000 chain (the
    depth the PR 2 ``sat_count``/``support`` tests pin) overflowed the
    recursive walk."""

    DEPTH = 4000

    def _chain(self):
        names = [f"x{i}" for i in range(self.DEPTH)]
        m = BDDManager(names)
        node = m.true
        for level in range(self.DEPTH - 1, -1, -1):
            node = m.mk(level, m.false, node)  # AND of all variables
        return m, node, names

    def test_bdd_probability_survives_deep_chains(self):
        m, node, names = self._chain()
        weights = {name: 0.999 for name in names}
        value = bdd_probability(m, node, weights)
        assert math.isclose(value, 0.999 ** self.DEPTH, rel_tol=1e-9)
        # The complement is one bit flip and one subtraction.
        assert bdd_probability(m, m.negate(node), weights) == pytest.approx(
            1.0 - value
        )

    def test_recursive_baseline_documents_the_bug(self):
        m, node, names = self._chain()
        if sys.getrecursionlimit() >= self.DEPTH:
            pytest.skip("recursion limit raised beyond the chain depth")
        with pytest.raises(RecursionError):
            recursive_probability(m, node, {name: 0.5 for name in names})


# ----------------------------------------------------------------------
# Tentpole: the kernel weighted pass and its manager-level cache
# ----------------------------------------------------------------------

class TestKernelWeightedPass:
    def test_matches_closed_form(self):
        m, f, w = _sample_manager()
        assert m.probability(f, w) == pytest.approx(1 - 0.9 * (1 - 0.06))

    def test_terminals_need_no_weights(self):
        m = BDDManager(["a"])
        assert m.probability(m.true, {}) == 1.0
        assert m.probability(m.false, {}) == 0.0

    def test_missing_weight_rejected(self):
        m = BDDManager(["a"])
        with pytest.raises(MissingWeightError):
            m.probability(m.var("a"), {})
        with pytest.raises(MissingProbabilityError):
            bdd_probability(m, m.var("a"), {})

    def test_complement_shares_every_cache_entry(self):
        """Satellite: f and ~f used to be memoised as distinct entries;
        keying on the regular index makes the negation free."""
        m, f, w = _sample_manager()
        pf = m.probability(f, w)
        misses = m.op_stats.prob_misses
        size = m.cache_stats()["prob_cache_size"]
        pnf = m.probability(m.negate(f), w)
        assert pnf == pytest.approx(1.0 - pf)
        assert m.op_stats.prob_misses == misses  # nothing recomputed
        assert m.cache_stats()["prob_cache_size"] == size  # nothing added

    def test_repeated_queries_hit_the_manager_cache(self):
        m, f, w = _sample_manager()
        m.probability(f, w)
        hits, misses = m.op_stats.prob_hits, m.op_stats.prob_misses
        again = m.probability(f, w)
        assert m.op_stats.prob_misses == misses
        assert m.op_stats.prob_hits == hits + 1
        assert again == pytest.approx(m.probability(f, w))

    def test_weight_profile_change_invalidates(self):
        m, f, w = _sample_manager()
        first = m.probability(f, w)
        flat = m.probability(f, {"a": 0.5, "b": 0.5, "c": 0.5})
        assert flat == pytest.approx(1 - 0.5 * (1 - 0.25))
        assert m.probability(f, w) == pytest.approx(first)

    def test_alternating_profiles_keep_their_caches(self):
        """Mixed batteries (base profile interleaved with per-query
        settings) must not thrash: each profile keeps its own cache up
        to a small LRU bound."""
        m, f, w = _sample_manager()
        overridden = dict(w, a=0.7)
        m.probability(f, w)
        m.probability(f, overridden)
        misses = m.op_stats.prob_misses
        for _ in range(3):  # alternate: everything is already valued
            m.probability(f, w)
            m.probability(f, overridden)
        assert m.op_stats.prob_misses == misses
        assert m.cache_stats()["prob_profiles"] == 2

    def test_profile_lru_is_bounded(self):
        m, f, w = _sample_manager()
        for i in range(10):
            m.probability(f, dict(w, a=i / 10.0))
        from repro.bdd.manager import _PROB_PROFILE_LIMIT

        assert m.cache_stats()["prob_profiles"] <= _PROB_PROFILE_LIMIT

    def test_failed_query_neither_evicts_nor_registers_profiles(self):
        """A MissingWeightError must not push an empty profile into the
        LRU (evicting a warm one) — the failure happens before any
        value is computed."""
        from repro.bdd.manager import _PROB_PROFILE_LIMIT

        m, f, w = _sample_manager()
        for i in range(_PROB_PROFILE_LIMIT):
            m.probability(f, dict(w, a=(i + 1) / 10.0))
        warm = m.cache_stats()
        with pytest.raises(MissingWeightError):
            m.probability(f, {"a": 0.5})  # b, c unweighted
        assert m.cache_stats()["prob_profiles"] == warm["prob_profiles"]
        assert m.cache_stats()["prob_cache_size"] == warm["prob_cache_size"]
        # ... and the warm profiles themselves stay fully valued.
        misses = m.op_stats.prob_misses
        m.probability(f, dict(w, a=_PROB_PROFILE_LIMIT / 10.0))
        assert m.op_stats.prob_misses == misses  # still fully cached

    def test_restricted_queries_share_subgraph_values(self):
        """The importance-measure hot path: restrictions differ near the
        root but agree below, so only new nodes are valued."""
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        weights = _uniform(tree)
        manager.probability(root, weights)
        misses_before = manager.op_stats.prob_misses
        for name in tree.basic_events:
            manager.probability(manager.restrict(root, name, True), weights)
            manager.probability(manager.restrict(root, name, False), weights)
        fresh_cost = misses_before  # one full pass values every node
        marginal = manager.op_stats.prob_misses - misses_before
        assert marginal < 2 * len(tree.basic_events) * fresh_cost
        assert manager.op_stats.prob_hits > 0


class TestProbCacheLifecycle:
    def test_cache_stats_exposes_the_probability_cache(self):
        m, f, w = _sample_manager()
        assert m.cache_stats()["prob_cache_size"] == 0
        m.probability(f, w)
        stats = m.cache_stats()
        assert stats["prob_cache_size"] > 0
        assert stats["prob_hits"] == m.op_stats.prob_hits
        assert stats["prob_misses"] == m.op_stats.prob_misses

    def test_collect_drops_the_cache_when_nodes_are_reclaimed(self):
        m, f, w = _sample_manager()
        value = m.probability(f, w)
        garbage = m.and_(f, m.xor(m.var("a"), m.var("c")))
        m.probability(garbage, w)
        del garbage
        reclaimed = m.collect()
        assert reclaimed > 0
        assert m.cache_stats()["prob_cache_size"] == 0
        assert m.probability(f, w) == pytest.approx(value)
        m.check_invariants()

    def test_swap_drops_the_cache_and_preserves_the_value(self):
        m, f, w = _sample_manager()
        value = m.probability(f, w)
        m.swap(0)
        assert m.cache_stats()["prob_cache_size"] == 0
        assert m.probability(f, w) == pytest.approx(value)
        m.check_invariants()

    def test_sift_inplace_drops_the_cache_and_preserves_the_value(self):
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        weights = _uniform(tree)
        value = manager.probability(root, weights)
        manager.sift_inplace(max_rounds=1)
        assert manager.cache_stats()["prob_cache_size"] == 0
        assert manager.probability(root, weights) == pytest.approx(value)
        manager.check_invariants()


class TestHypothesisCrossValidation:
    @given(
        seed=st.integers(0, 10**6),
        p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_kernel_pass_matches_enumeration_under_gc_and_sifting(
        self, seed, p
    ):
        tree = random_tree(seed, RandomTreeConfig(n_basic_events=5))
        overrides = _uniform(tree, p)
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        reference = enumeration_probability(tree, overrides=overrides)
        assert bdd_probability(manager, root, overrides) == pytest.approx(
            reference, abs=1e-12
        )
        # The value must survive a collection and an in-place sift (the
        # cache is dropped; the function each Ref denotes is not).
        manager.collect()
        assert bdd_probability(manager, root, overrides) == pytest.approx(
            reference, abs=1e-12
        )
        manager.sift_inplace(max_rounds=1)
        assert bdd_probability(manager, root, overrides) == pytest.approx(
            reference, abs=1e-12
        )
        manager.check_invariants()

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_formula_probability_matches_weighted_reference(self, data, tree):
        """P([[phi]]) for random BFL formulae: kernel pass vs weighted
        vector enumeration vs the recursive baseline."""
        formula = data.draw(formulas_for(tree, max_depth=2))
        overrides = _uniform(tree, 0.3)
        checker = ProbabilityChecker(tree, overrides=overrides)
        value = checker.probability(formula)
        semantics = ReferenceSemantics(tree)
        reference = 0.0
        for vector in semantics.iter_vectors():
            if not semantics.holds(formula, vector):
                continue
            weight = 1.0
            for name, bit in vector.items():
                weight *= overrides[name] if bit else 1.0 - overrides[name]
            reference += weight
        assert value == pytest.approx(reference, abs=1e-9)
        root = checker.translator.bdd(formula)
        baseline = recursive_probability(
            checker.translator.manager, root, overrides
        )
        assert value == pytest.approx(baseline, abs=1e-12)


# ----------------------------------------------------------------------
# PFL queries: parser, AST, checker
# ----------------------------------------------------------------------

class TestPFLParser:
    def test_simple_bound(self):
        query = parse("P(MoT) >= 0.3")
        assert query == ProbabilityQuery(
            formula=Atom("MoT"), comparator=">=", bound=0.3
        )

    def test_conditional_bar(self):
        query = parse("P(MoT | H1 & VW) < 0.5")
        assert isinstance(query, ProbabilityQuery)
        assert query.condition is not None
        assert query.comparator == "<"

    def test_double_bar_is_disjunction_inside_p(self):
        query = parse("P(a || b)")
        assert query.condition is None
        assert isinstance(query.formula, Or)

    def test_parenthesised_bar_is_disjunction(self):
        query = parse("P((a | b) | c)")
        assert isinstance(query.formula, Or)
        assert query.condition == Atom("c")

    def test_bar_outside_p_stays_disjunction(self):
        assert isinstance(parse("a | b"), Or)
        inner = parse("P(MCS(a | b))")
        assert isinstance(inner.formula.operand, Or)

    def test_probability_settings(self):
        query = parse("P(IWoS)[H1 := 0.25, VW := 1] > 0")
        assert query.settings == (("H1", 0.25), ("VW", 1.0))

    def test_value_query_without_bound(self):
        query = parse("P(MoT | H1)")
        assert query.comparator is None and query.bound is None

    def test_round_trips_through_format(self):
        for text in (
            "P(MoT) >= 0.3",
            "P(MoT | H1 & VW) < 0.5",
            "P((a | b) | c)[H1 := 0.25] >= 0.001",
            "P(MCS(IWoS) & H4)",
            "P(a => b | c) = 0.5",
        ):
            statement = parse(text)
            assert parse(format_statement(statement)) == statement

    def test_bound_outside_unit_interval_rejected(self):
        with pytest.raises(ReproError):
            parse("P(a) >= 1.5")

    def test_nested_p_rejected(self):
        with pytest.raises(ReproError):
            parse("exists (P(a) >= 0.5)")
        with pytest.raises(ReproError):
            parse("P(P(a) >= 0.5) >= 0.5")

    def test_element_named_p_still_usable(self):
        assert parse("P & b") == parse("P && b")
        assert parse('"P"') == Atom("P")

    def test_parse_prob_query_compat(self):
        query = parse_prob_query("P(MoT & !H1) >= 0.25")
        assert query.comparator == ">=" and query.bound == 0.25
        with pytest.raises(ValueError):
            parse_prob_query("P(MoT)")  # no comparator
        with pytest.raises(ValueError):
            parse_prob_query("P(MoT | H1) >= 0.25")  # conditional
        # The historical contract: malformed *text* is also ValueError
        # (BFLSyntaxError is chained as the cause, not raised).
        with pytest.raises(ValueError):
            parse_prob_query("P(MoT >= 0.3")
        with pytest.raises(ValueError):
            parse_prob_query("P() >= 0.1")
        # Semantically invalid queries carry the real diagnostic.
        with pytest.raises(ValueError, match="outside"):
            parse_prob_query("P(MoT) >= 2")


class TestProbabilityQueryAst:
    def test_comparator_and_bound_come_together(self):
        with pytest.raises(ValueError):
            ProbabilityQuery(formula=Atom("a"), comparator=">=")
        with pytest.raises(ValueError):
            ProbabilityQuery(formula=Atom("a"), bound=0.5)

    def test_settings_validated(self):
        with pytest.raises(ValueError):
            ProbabilityQuery(formula=Atom("a"), settings=(("e", 1.5),))

    def test_layer2_operand_rejected(self):
        from repro.logic.ast_nodes import Exists

        with pytest.raises(LogicError):
            ProbabilityQuery(formula=Exists(Atom("a")))


class TestProbabilityCheckerPFL:
    @pytest.fixture(scope="class")
    def checker(self):
        tree = build_covid_tree()
        return ProbabilityChecker(tree, overrides=_uniform(tree))

    def test_conditional_matches_definition(self, checker):
        outcome = checker.evaluate("P(MoT | H1 & VW)")
        joint = checker.probability("MoT & H1 & VW")
        evidence = checker.probability("H1 & VW")
        assert outcome.value == pytest.approx(joint / evidence)
        assert outcome.condition_probability == pytest.approx(evidence)

    def test_settings_override_per_query(self, checker):
        # {H1} is an MPS: forcing p(H1) = 0 kills the top event.
        outcome = checker.evaluate("P(IWoS)[H1 := 0]")
        assert outcome.value == 0.0
        # ... without disturbing later queries.
        assert checker.probability("IWoS") > 0.0

    def test_unknown_setting_rejected(self, checker):
        with pytest.raises(MissingProbabilityError):
            checker.evaluate("P(IWoS)[ghost := 0.5]")

    def test_verdict(self, checker):
        assert checker.check("P(MoT) > 0") is True
        assert checker.check("P(MoT) >= 0.99") is False

    def test_zero_probability_evidence(self, checker):
        with pytest.raises(ZeroProbabilityEvidenceError):
            checker.evaluate("P(MoT | IWoS & !IWoS)")

    def test_shared_translator_reuses_the_manager(self):
        from repro.checker import ModelChecker

        tree = build_covid_tree()
        qualitative = ModelChecker(tree)
        quantitative = ProbabilityChecker(
            overrides=_uniform(tree), translator=qualitative.translator
        )
        assert quantitative.translator.manager is qualitative.manager
        qualitative.check("exists (MCS(MoT) & H1)")
        hits_before = qualitative.manager.op_stats.prob_hits
        quantitative.evaluate("P(MoT) >= 0")
        quantitative.evaluate("P(MoT) >= 0")
        assert qualitative.manager.op_stats.prob_hits > hits_before

    def test_mismatched_tree_and_translator_rejected(self):
        from repro.checker import ModelChecker

        covid = build_covid_tree()
        other = figure1_tree()
        with pytest.raises(ValueError):
            ProbabilityChecker(
                other, translator=ModelChecker(covid).translator
            )


class TestZeroProbabilityEvidenceError:
    def test_hierarchy(self):
        assert issubclass(ZeroProbabilityEvidenceError, FaultTreeError)
        # Callers of the historical contract keep working.
        assert issubclass(ZeroProbabilityEvidenceError, ZeroDivisionError)

    def test_conditional_probability_raises_it(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        with pytest.raises(ZeroProbabilityEvidenceError):
            conditional_probability(
                manager, root, manager.false, _uniform(tree)
            )


class TestGivenValidation:
    """Satellite: ``given(H1=2)`` used to be silently coerced to 1."""

    def test_booleans_and_bits_accepted(self):
        evidence = atom("a").given(H1=1, H2=False, H3=True, H4=0)
        assert evidence.assignments == (
            ("H1", True), ("H2", False), ("H3", True), ("H4", False)
        )

    @pytest.mark.parametrize("value", [2, -1, 0.5, "1", None])
    def test_non_boolean_values_rejected(self, value):
        with pytest.raises(ValueError):
            atom("a").given(H1=value)


# ----------------------------------------------------------------------
# Batch service and CLI
# ----------------------------------------------------------------------

class TestBatchProbability:
    def test_mixed_battery_with_shared_manager(self):
        tree = build_covid_tree()
        analyzer = BatchAnalyzer(tree, uniform=UNIFORM)
        report = analyzer.run([
            "exists (MCS(MoT) & H1)",
            "P(MoT) >= 0",
            {"id": "cond", "formula": "P(MoT | H1 & VW) < 0.5"},
            {"id": "val", "kind": "probability", "formula": "MCS(IWoS) & H4"},
        ])
        assert report.ok
        standalone = ProbabilityChecker(tree, overrides=_uniform(tree))
        assert report["q2"].probability == pytest.approx(
            standalone.probability("MoT")
        )
        assert report["cond"].condition_probability == pytest.approx(
            UNIFORM * UNIFORM
        )
        assert report["val"].holds is None
        assert 0.0 < report["val"].probability < 1.0
        stats = report.stats["scenarios"]["default"]
        assert stats["memory"]["prob_cache"] > 0
        assert stats["bdd"]["prob_misses"] > 0

    def test_values_match_a_standalone_checker(self):
        tree = build_covid_tree()
        analyzer = BatchAnalyzer(tree, uniform=UNIFORM)
        report = analyzer.run(["P(MoT | H1)"])
        checker = ProbabilityChecker(tree, overrides=_uniform(tree))
        assert report.results[0].probability == pytest.approx(
            checker.evaluate("P(MoT | H1)").value
        )

    def test_zero_probability_evidence_reported_per_query(self):
        tree = build_covid_tree()
        analyzer = BatchAnalyzer(tree, uniform=UNIFORM)
        report = analyzer.run([
            {"id": "bad", "formula": "P(MoT | IWoS & !IWoS) >= 0.1"},
            {"id": "good", "formula": "P(MoT) >= 0"},
        ])
        assert not report["bad"].ok
        assert "zero-probability" in report["bad"].error
        assert report["good"].ok and report["good"].holds is True

    def test_missing_probabilities_fail_per_query_not_per_batch(self):
        tree = build_covid_tree()  # no probabilities attached
        analyzer = BatchAnalyzer(tree)
        report = analyzer.run([
            "exists (MCS(MoT) & H1)",
            {"id": "p", "formula": "P(MoT) >= 0"},
        ])
        assert report.results[0].ok
        assert not report["p"].ok
        assert "probability" in report["p"].error

    def test_cache_survives_gc_and_sifting_checkpoints(self):
        """The acceptance scenario: probabilistic batteries with GC and
        in-place sifting armed stay correct (the cache is dropped at the
        checkpoints and rebuilt on demand)."""
        tree = build_covid_tree()
        reference = BatchAnalyzer(tree, uniform=UNIFORM)
        hardened = BatchAnalyzer(
            tree,
            uniform=UNIFORM,
            auto_gc=True,
            gc_trigger=64,
            auto_reorder=True,
            reorder_trigger=64,
        )
        queries = []
        for element in ("MoT", "IWoS", "SH", "CIW", "IS"):
            queries.append(f"P({element}) >= 0")
            queries.append(f"P(MCS({element}) | H1) >= 0")
            queries.append(f"exists (MCS({element}) & H2)")
        plain = reference.run(queries)
        managed = hardened.run(queries)
        assert plain.ok and managed.ok
        stats = managed.stats["scenarios"]["default"]
        assert stats["memory"]["gc_runs"] > 0
        for expected, got in zip(plain.results, managed.results):
            assert got.holds == expected.holds
            if expected.probability is not None:
                assert got.probability == pytest.approx(expected.probability)

    def test_status_vector_on_probabilistic_query_rejected_per_query(self):
        tree = build_covid_tree()
        analyzer = BatchAnalyzer(tree, uniform=UNIFORM)
        report = analyzer.run([
            {"id": "bad", "formula": "P(MoT) >= 0.5", "failed": ["H1"]},
            {"id": "good", "formula": "P(MoT) >= 0"},
        ])
        assert not report["bad"].ok
        assert "failed=/bits=" in report["bad"].error
        assert report["good"].ok

    def test_flat_probability_map_is_filtered_per_scenario(self):
        """A flat map is 'applied to every scenario': events a tree does
        not have must not poison that scenario's queries."""
        analyzer = BatchAnalyzer(
            {"covid": build_covid_tree(), "fig1": figure1_tree()},
            uniform=UNIFORM,
            probabilities={"H1": 0.02},  # covid-only event
        )
        report = analyzer.run([
            {"id": "a", "tree": "covid", "formula": "P(MoT | H1) >= 0"},
            {"id": "b", "tree": "fig1", "formula": 'P("CP/R") >= 0'},
        ])
        assert report.ok
        assert report["a"].condition_probability == pytest.approx(0.02)

    def test_per_scenario_probability_maps(self):
        analyzer = BatchAnalyzer(
            {"covid": build_covid_tree(), "fig1": figure1_tree()},
            probabilities={
                "covid": _uniform(build_covid_tree()),
                "fig1": _uniform(figure1_tree(), 0.2),
            },
        )
        report = analyzer.run([
            {"id": "a", "tree": "covid", "formula": "P(MoT) >= 0"},
            {"id": "b", "tree": "fig1", "formula": 'P("CP/R") >= 0'},
        ])
        assert report.ok

    def test_mixed_probability_map_scoped_entries_win(self):
        analyzer = BatchAnalyzer(
            {"covid": build_covid_tree()},
            uniform=UNIFORM,
            probabilities={
                "H1": 0.3,  # flat: applies where H1 exists
                "covid": {"H1": 0.02},  # scoped: wins for this scenario
            },
        )
        report = analyzer.run([
            {"id": "q", "tree": "covid", "formula": "P(MoT | H1) >= 0"},
        ])
        assert report.ok
        assert report["q"].condition_probability == pytest.approx(0.02)

    def test_unknown_scenario_probability_map_rejected(self):
        from repro.service.queries import QuerySpecError

        with pytest.raises(QuerySpecError, match="fig-1"):
            BatchAnalyzer(
                {"fig1": figure1_tree()},
                probabilities={"fig-1": {"H2": 0.5}},
            )

    def test_flat_probability_for_unknown_event_rejected(self):
        from repro.service.queries import QuerySpecError

        # "HI" is a typo for "H1": known to no scenario, so it must be
        # rejected up front rather than silently filtered away.
        with pytest.raises(QuerySpecError, match="HI"):
            BatchAnalyzer(
                {"covid": build_covid_tree(), "fig1": figure1_tree()},
                uniform=UNIFORM,
                probabilities={"HI": 0.9},
            )


class TestCLIProbability:
    def test_prob_value_query(self, capsys):
        assert main(["prob", "--uniform", "0.1", "P(MoT)"]) == 0
        assert "P = " in capsys.readouterr().out

    def test_prob_conditional_query(self, capsys):
        code = main(["prob", "--uniform", "0.1", "P(MoT | H1 & VW) < 0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "P(evidence)" in out and "holds" in out

    def test_prob_plain_formula_still_works(self, capsys):
        assert main(["prob", "--uniform", "0.1", "MoT & H1"]) == 0
        assert "P = " in capsys.readouterr().out

    def test_batch_uniform_true_rejected(self, tmp_path, capsys):
        query_file = tmp_path / "queries.json"
        query_file.write_text(json.dumps({
            "uniform": True,  # a flag-shaped typo, not p = 1.0
            "queries": [{"formula": "P(MoT) >= 0"}],
        }), encoding="utf-8")
        assert main(["batch", str(query_file)]) == 2
        assert "'uniform'" in capsys.readouterr().err

    def test_batch_uniform_flag_validated_like_the_file_key(
        self, tmp_path, capsys
    ):
        query_file = tmp_path / "queries.json"
        query_file.write_text(json.dumps({
            "queries": [{"formula": "P(MoT) >= 0"}],
        }), encoding="utf-8")
        assert main(["batch", str(query_file), "--uniform", "2.0"]) == 2
        assert "'uniform'" in capsys.readouterr().err

    def test_batch_string_probability_rejected_up_front(
        self, tmp_path, capsys
    ):
        query_file = tmp_path / "queries.json"
        query_file.write_text(json.dumps({
            "uniform": 0.1,
            "probabilities": {"H1": "0.02"},  # quoted number
            "queries": [{"formula": "P(MoT) >= 0"}],
        }), encoding="utf-8")
        assert main(["batch", str(query_file)]) == 2
        assert "probability for 'H1'" in capsys.readouterr().err

    def test_batch_pfl_end_to_end(self, tmp_path, capsys):
        """Acceptance: a conditional PFL query through ``bfl batch`` with
        GC and in-place sifting armed."""
        query_file = tmp_path / "queries.json"
        query_file.write_text(json.dumps({
            "uniform": 0.1,
            "probabilities": {"H1": 0.02},
            "gc": True,
            "auto_reorder": True,
            "queries": [
                {"id": "pfl", "formula": "P(MoT | H1 & VW) >= 0"},
                {"id": "val", "kind": "probability", "formula": "IWoS"},
                {"id": "set", "formula": "P(IWoS)[H1 := 0] > 0"},
            ],
        }), encoding="utf-8")
        code = main(["batch", str(query_file), "--pretty"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0 and report["ok"]
        by_id = {r["id"]: r for r in report["results"]}
        assert by_id["pfl"]["holds"] is True
        assert 0.0 <= by_id["pfl"]["probability"] <= 1.0
        assert by_id["pfl"]["condition_probability"] == pytest.approx(
            0.02 * 0.1
        )
        assert by_id["val"]["probability"] > 0.0
        assert by_id["set"]["holds"] is False
        memory = report["stats"]["scenarios"]["default"]["memory"]
        assert "prob_cache" in memory
