"""Garbage collection and in-place dynamic reordering (PR 3 kernel).

Pins the contract of the memory-managed kernel:

* ``collect()`` reclaims exactly the nodes unreachable from live Refs,
  leaves the unique table / refcounts consistent with holes in the index
  space, and ``live_nodes`` matches the reachable count afterwards;
* reclaimed indices are reused by ``_mk`` without breaking canonicity;
* ``swap``/``sift_inplace`` preserve function semantics — every
  pre-existing Ref keeps denoting the same Boolean function — verified
  against the enumerative reference semantics and against a
  transfer-rebuilt manager;
* the automatic triggers (``auto_gc``/``auto_reorder``) fire at
  translation/query safe points and surface their counters.
"""

import gc as pygc
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, sift, sift_rebuild, transfer
from repro.checker import FormulaTranslator, check
from repro.ft import figure1_tree, tree_to_bdd
from repro.logic import ReferenceSemantics
from repro.casestudy import build_covid_tree
from repro.service import BatchAnalyzer

from bfl_strategies import formulas_for, small_trees


def _truth_table(manager, ref, names):
    return [
        manager.evaluate(ref, dict(zip(names, bits)))
        for bits in itertools.product((False, True), repeat=len(names))
    ]


def _random_program(manager, names, ops):
    expr = manager.var(names[0])
    for op, name, neg in ops:
        literal = manager.var(name)
        if neg:
            literal = manager.negate(literal)
        expr = manager.apply(op, expr, literal)
    return expr


OPS = st.lists(
    st.tuples(
        st.sampled_from(["and", "or", "xor", "xnor", "nand", "nor", "implies"]),
        st.sampled_from(["v1", "v2", "v3", "v4", "v5"]),
        st.booleans(),
    ),
    max_size=12,
)


class TestCollect:
    def test_collect_reclaims_unreachable_nodes(self):
        m = BDDManager(["a", "b", "c", "d"])
        keep = m.or_(m.and_(m.var("a"), m.var("b")), m.var("c"))
        scratch = m.and_(m.var("c"), m.var("d"))
        assert m.node_count() > keep.count_nodes()
        del scratch
        pygc.collect()
        reclaimed = m.collect()
        assert reclaimed > 0
        m.check_invariants()
        # Acceptance: live_nodes matches the reachable-from-live-Refs
        # count *exactly* after a collection.
        stats = m.cache_stats()
        assert stats["live_nodes"] == m.reachable_node_count()
        assert stats["dead_nodes"] == 0
        assert stats["gc_runs"] == 1
        assert stats["reclaimed"] == reclaimed
        assert stats["free_list"] == reclaimed

    def test_collect_keeps_externally_referenced_nodes(self):
        m = BDDManager(["a", "b"])
        f = m.and_(m.var("a"), m.var("b"))
        before = _truth_table(m, f, ["a", "b"])
        m.collect()
        m.check_invariants()
        assert _truth_table(m, f, ["a", "b"]) == before
        # Everything reachable: nothing to reclaim.
        assert m.collect() == 0

    def test_free_slots_are_reused_and_stay_canonical(self):
        m = BDDManager(["a", "b", "c", "d"])
        scratch = m.and_(m.var("c"), m.var("d"))
        del scratch
        pygc.collect()
        holes = m.collect()
        assert holes > 0
        slots_before = len(m._level)
        rebuilt = m.and_(m.var("c"), m.var("d"))
        # The rebuild refilled the holes instead of growing the arrays.
        assert len(m._level) == slots_before
        m.check_invariants()
        assert m.evaluate(rebuilt, {"c": True, "d": True}) is True
        # Hash-consing across a collect: rebuilding the same function
        # twice shares one node again.
        assert m.and_(m.var("c"), m.var("d")) is rebuilt

    def test_dead_node_estimate_tracks_dropped_refs(self):
        m = BDDManager(["a", "b", "c"])
        literals = [m.var(n) for n in "abc"]
        junk = m.xor(literals[0], m.xor(literals[1], literals[2]))
        assert m.cache_stats()["dead_nodes"] == 0
        del junk
        pygc.collect()
        dead = m.cache_stats()["dead_nodes"]
        assert dead > 0
        assert m.collect() == dead

    def test_peak_live_nodes_survives_collection(self):
        m = BDDManager(["a", "b", "c", "d"])
        junk = [m.threshold([m.var(n) for n in "abcd"], 2)]
        peak = m.peak_node_count()
        junk.clear()
        pygc.collect()
        m.collect()
        assert m.peak_node_count() == peak
        assert m.node_count() < peak

    @given(ops=OPS, keep_mask=st.integers(min_value=0, max_value=4095))
    @settings(max_examples=40, deadline=None)
    def test_collect_preserves_kept_functions(self, ops, keep_mask):
        names = ["v1", "v2", "v3", "v4", "v5"]
        m = BDDManager(names)
        exprs = []
        expr = m.var(names[0])
        for i, (op, name, neg) in enumerate(ops):
            literal = m.var(name)
            if neg:
                literal = m.negate(literal)
            expr = m.apply(op, expr, literal)
            exprs.append(expr)
        kept = [e for i, e in enumerate(exprs) if keep_mask & (1 << i)]
        tables = [_truth_table(m, e, names) for e in kept]
        exprs = expr = None
        pygc.collect()
        m.collect()
        m.check_invariants()
        assert m.cache_stats()["live_nodes"] == m.reachable_node_count()
        for e, table in zip(kept, tables):
            assert _truth_table(m, e, names) == table


class TestSwap:
    def test_swap_exchanges_adjacent_variables(self):
        m = BDDManager(["a", "b", "c"])
        f = m.or_(m.and_(m.var("a"), m.var("b")), m.var("c"))
        table = _truth_table(m, f, ["a", "b", "c"])
        m.swap(0)
        assert m.variables == ("b", "a", "c")
        m.check_invariants()
        assert _truth_table(m, f, ["a", "b", "c"]) == table
        m.swap(0)
        assert m.variables == ("a", "b", "c")
        m.check_invariants()
        assert _truth_table(m, f, ["a", "b", "c"]) == table

    def test_swap_rejects_bad_levels(self):
        from repro.errors import VariableError

        m = BDDManager(["a", "b"])
        with pytest.raises(VariableError):
            m.swap(1)
        with pytest.raises(VariableError):
            m.swap(-1)

    def test_swap_keeps_live_refs_valid_without_forwarding(self):
        """In-place swaps preserve the function denoted by every index,
        so handles survive with no remapping step."""
        m = BDDManager(["a", "b", "c", "d"])
        refs = {
            "f": m.or_(m.and_(m.var("a"), m.var("c")), m.var("d")),
            "g": m.xor(m.var("b"), m.var("c")),
            "ng": m.negate(m.xor(m.var("b"), m.var("c"))),
        }
        names = ["a", "b", "c", "d"]
        tables = {k: _truth_table(m, r, names) for k, r in refs.items()}
        edges = {k: r.edge for k, r in refs.items()}
        for level in (0, 1, 2, 1, 0, 2):
            m.swap(level)
            m.check_invariants()
        for key, ref in refs.items():
            assert ref.edge == edges[key]  # the handle itself is untouched
            assert _truth_table(m, ref, names) == tables[key]

    @given(ops=OPS, levels=st.lists(st.integers(min_value=0, max_value=3), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_random_swap_sequences_preserve_semantics(self, ops, levels):
        names = ["v1", "v2", "v3", "v4", "v5"]
        m = BDDManager(names)
        expr = _random_program(m, names, ops)
        table = _truth_table(m, expr, names)
        for level in levels:
            m.swap(level)
            m.check_invariants()
        assert _truth_table(m, expr, names) == table


class TestSiftInplace:
    def test_sift_preserves_semantics_and_never_worsens(self):
        tree = build_covid_tree()
        m = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, m)
        names = list(tree.basic_events)
        import random

        rnd = random.Random(7)
        vectors = [
            {n: rnd.random() < 0.5 for n in names} for _ in range(64)
        ]
        answers = [m.evaluate(root, v) for v in vectors]
        m.collect()
        before = m.node_count()
        after = m.sift_inplace(max_rounds=2)
        m.check_invariants()
        assert after <= before
        assert [m.evaluate(root, v) for v in vectors] == answers
        assert m.cache_stats()["sift_runs"] == 1
        assert m.cache_stats()["swaps"] > 0

    def test_sift_matches_transfer_rebuilt_manager(self):
        """Cross-validation: rebuilding the sifted BDD from scratch in a
        fresh manager with the sifted order yields the identical
        canonical form."""
        tree = build_covid_tree()
        m = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, m)
        m.sift_inplace(max_rounds=1)
        fresh = BDDManager(m.variables)
        rebuilt = tree_to_bdd(tree, fresh)
        moved = transfer(m, root, fresh)
        assert moved is rebuilt

    def test_sift_solves_the_interleaving_problem(self):
        from repro.ft import FaultTreeBuilder

        builder = FaultTreeBuilder().basic_events(
            "a1", "a2", "a3", "a4", "b1", "b2", "b3", "b4"
        )
        for i in (1, 2, 3, 4):
            builder.and_gate(f"g{i}", f"a{i}", f"b{i}")
        tree = builder.or_gate("top", "g1", "g2", "g3", "g4").build("top")
        grouped = ["a1", "a2", "a3", "a4", "b1", "b2", "b3", "b4"]
        m = BDDManager(grouped)
        root = tree_to_bdd(tree, m)
        grouped_size = root.count_nodes()
        m.sift_inplace(max_rounds=2)
        assert root.count_nodes() < grouped_size

    def test_sift_respects_variable_restriction(self):
        m = BDDManager(["a", "b", "c", "d"])
        m.and_(m.var("a"), m.or_(m.var("b"), m.var("d")))
        m.sift_inplace(variables=["b", "d"])
        # Unlisted variables keep their relative order.
        order = m.variables
        assert order.index("a") < order.index("c")

    def test_sift_rejects_undeclared_variables(self):
        from repro.errors import VariableError

        m = BDDManager(["a", "b"])
        m.and_(m.var("a"), m.var("b"))
        with pytest.raises(VariableError):
            m.sift_inplace(variables=["a", "typo"])

    def test_module_level_sift_agrees_with_rebuild_search(self):
        tree = figure1_tree()

        def builder(order):
            manager = BDDManager(order)
            return manager, tree_to_bdd(tree, manager)

        bad_order = ["IW", "IT", "H3", "H2"]
        inplace_order, inplace_size = sift(builder, bad_order, max_rounds=2)
        _, rebuild_size = sift_rebuild(builder, bad_order, max_rounds=2)
        assert sorted(inplace_order) == sorted(bad_order)
        assert inplace_size <= rebuild_size

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_sift_cross_validates_against_reference_semantics(self, data, tree):
        translator = FormulaTranslator(tree)
        semantics = ReferenceSemantics(tree)
        formula = data.draw(formulas_for(tree))
        translator.bdd(formula)
        translator.manager.sift_inplace(max_rounds=1)
        translator.manager.check_invariants()
        names = list(tree.basic_events)
        for bits in itertools.product((False, True), repeat=len(names)):
            vector = dict(zip(names, bits))
            assert check(translator, formula, vector) == semantics.holds(
                formula, vector
            )


class TestAutomaticTriggers:
    def test_auto_gc_fires_at_query_boundaries(self):
        tree = build_covid_tree()
        plain = BatchAnalyzer(tree)
        managed = BatchAnalyzer(tree, auto_gc=True, gc_trigger=64)
        battery = [
            "exists (MCS(IWoS) & H1)",
            "forall (IS => MoT)",
            "exists (MPS(MoT) & !UT)",
            "forall (MCS(SH) => (VW & H1))",
            "exists MCS(CP/R)",
        ]
        baseline = plain.run(battery)
        report = managed.run(battery)
        assert [r.holds for r in report.results] == [
            r.holds for r in baseline.results
        ]
        memory = report.stats["scenarios"]["default"]["memory"]
        assert memory["gc_runs"] > 0
        assert memory["reclaimed"] > 0
        manager = managed.session().checker.manager
        manager.check_invariants()

    def test_auto_reorder_fires_and_preserves_answers(self):
        tree = build_covid_tree()
        plain = BatchAnalyzer(tree)
        managed = BatchAnalyzer(
            tree, auto_reorder=True, reorder_trigger=64
        )
        battery = [
            "exists (MCS(IWoS) & H1)",
            "forall (MCS(IWoS) => H2)",
            "exists (MPS(IWoS) & !H3)",
            "forall (IS => MoT)",
        ]
        baseline = plain.run(battery)
        report = managed.run(battery)
        assert [r.holds for r in report.results] == [
            r.holds for r in baseline.results
        ]
        reorder = report.stats["scenarios"]["default"]["reorder"]
        assert reorder["auto_reorders"] > 0
        assert reorder["swaps"] > 0
        managed.session().checker.manager.check_invariants()

    def test_tree_to_bdd_knobs(self):
        tree = build_covid_tree()
        root = tree_to_bdd(tree, auto_gc=True, auto_reorder=True)
        manager = root.manager
        assert manager._gc_enabled
        assert manager._auto_reorder
        manager.check_invariants()
