"""Sec. V-E: naive assignment search, tree synthesis, GP inference."""

import itertools

import pytest

from repro.errors import SynthesisError
from repro.ft import structure_function
from repro.logic import MCS, Atom, parse_formula
from repro.checker import (
    GeneticConfig,
    ModelChecker,
    genome_to_tree,
    infer_fault_tree,
    naive_assignment_search,
    synthesize_tree,
)


class TestNaiveSearch:
    def test_finds_an_assignment(self):
        formula = parse_formula("(A & B) | C")
        result = naive_assignment_search(formula, fixed={"C": False})
        assert result is not None
        assert result["C"] is False
        assert result["A"] and result["B"]

    def test_respects_fixed_values(self):
        formula = parse_formula("A & B")
        assert naive_assignment_search(formula, fixed={"A": False}) is None

    def test_handles_evidence_and_vot(self):
        formula = parse_formula("VOT(>= 2; A, B, C)[A := 1]")
        result = naive_assignment_search(formula, fixed={})
        assert result is not None

    def test_unsatisfiable_returns_none(self):
        assert naive_assignment_search(parse_formula("A & !A"), {}) is None

    def test_mcs_rejected(self):
        with pytest.raises(SynthesisError):
            naive_assignment_search(parse_formula("MCS(A)"), {})


class TestSynthesizeTree:
    def test_simple_instance(self):
        # Find a tree where the failure of x1 alone fails gate G.
        formula = parse_formula("G")
        tree = synthesize_tree(
            formula,
            vector={"x1": True, "x2": False, "x3": False},
            basic_events=["x1", "x2", "x3"],
            attempts=500,
            seed=1,
        )
        checker = ModelChecker(tree)
        assert checker.check(
            "G", vector={"x1": True, "x2": False, "x3": False}
        )
        assert "G" in tree.gate_names

    def test_mcs_instance(self):
        formula = MCS(Atom("G"))
        tree = synthesize_tree(
            formula,
            vector={"x1": True, "x2": False},
            basic_events=["x1", "x2"],
            attempts=800,
            seed=3,
        )
        checker = ModelChecker(tree)
        assert checker.check(formula, vector={"x1": True, "x2": False})

    def test_unsatisfiable_raises(self):
        with pytest.raises(SynthesisError):
            synthesize_tree(
                parse_formula("G & !G"),
                vector={"x1": True},
                basic_events=["x1"],
                attempts=30,
            )

    def test_vector_atom_mismatch_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize_tree(
                parse_formula("G & mystery"),
                vector={"mystery": True},
                basic_events=["x1"],
                attempts=10,
            )


class TestGeneticInference:
    @staticmethod
    def _examples(names, fn):
        examples = []
        for bits in itertools.product([False, True], repeat=len(names)):
            vector = dict(zip(names, bits))
            examples.append((vector, fn(vector)))
        return examples

    def test_learns_an_or(self):
        names = ["a", "b"]
        examples = self._examples(names, lambda v: v["a"] or v["b"])
        tree = infer_fault_tree(names, examples, GeneticConfig(seed=5))
        for vector, label in examples:
            assert structure_function(tree, vector) == label

    def test_learns_an_and_of_or(self):
        names = ["a", "b", "c"]
        examples = self._examples(
            names, lambda v: v["a"] and (v["b"] or v["c"])
        )
        tree = infer_fault_tree(
            names, examples, GeneticConfig(seed=11, generations=120)
        )
        mistakes = sum(
            1
            for vector, label in examples
            if structure_function(tree, vector) != label
        )
        assert mistakes == 0

    def test_requires_examples(self):
        with pytest.raises(SynthesisError):
            infer_fault_tree(["a"], [])

    def test_genome_to_tree_handles_bare_leaf(self):
        tree = genome_to_tree(("be", "a"), ["a", "b"])
        assert tree.top == "g_top"
        assert tree.basic_events == ("a",)

    def test_genome_to_tree_merges_duplicate_children(self):
        genome = ("and", (("be", "a"), ("be", "a"), ("be", "b")))
        tree = genome_to_tree(genome, ["a", "b"])
        top_children = tree.children(tree.top)
        assert sorted(top_children) == ["a", "b"]
