"""Cut/path sets and minimal sets (Defs. 3-4): enumeration vs BDD."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.ft import (
    example_vot_tree,
    figure1_tree,
    is_cut_set,
    is_minimal_cut_set,
    is_minimal_path_set,
    is_path_set,
    minimal_cut_sets,
    minimal_cut_sets_enum,
    minimal_path_sets,
    minimal_path_sets_enum,
    minimize_sets,
    structural_importance,
    table1_tree,
)

from bfl_strategies import small_trees


def _as_sets(items):
    return sorted(items, key=lambda s: (len(s), sorted(s)))


class TestDefinitions:
    @pytest.fixture(scope="class")
    def tree(self):
        return figure1_tree()

    def test_cut_set_and_path_set_partition(self, tree):
        vector = tree.vector_from_failed(["IW", "H3"])
        assert is_cut_set(tree, vector)
        assert not is_path_set(tree, vector)

    def test_non_minimal_cut_set_detected(self, tree):
        # The paper's Sec. VI example: {IW, H3, IT} is a cut set but not
        # minimal.
        vector = tree.vector_from_failed(["IW", "H3", "IT"])
        assert is_cut_set(tree, vector)
        assert not is_minimal_cut_set(tree, vector)
        assert is_minimal_cut_set(tree, tree.vector_from_failed(["IW", "H3"]))

    def test_minimal_path_set_detected(self, tree):
        vector = tree.vector_from_operational(["IW", "IT"])
        assert is_minimal_path_set(tree, vector)
        bigger = tree.vector_from_operational(["IW", "IT", "H2"])
        assert is_path_set(tree, bigger)
        assert not is_minimal_path_set(tree, bigger)

    def test_minimal_sets_for_intermediate_element(self, tree):
        vector = tree.vector_from_failed(["IW", "H3"])
        assert is_minimal_cut_set(tree, vector, "CP")


class TestPaperExamples:
    def test_figure1_minimal_sets(self):
        tree = figure1_tree()
        assert _as_sets(minimal_cut_sets(tree)) == _as_sets(
            [frozenset({"IW", "H3"}), frozenset({"IT", "H2"})]
        )
        assert _as_sets(minimal_path_sets(tree)) == _as_sets(
            [
                frozenset({"IW", "IT"}),
                frozenset({"IW", "H2"}),
                frozenset({"H3", "IT"}),
                frozenset({"H3", "H2"}),
            ]
        )

    def test_table1_minimal_sets(self):
        tree = table1_tree()
        assert _as_sets(minimal_cut_sets(tree)) == _as_sets(
            [frozenset({"e2", "e4"}), frozenset({"e2", "e5"})]
        )
        assert _as_sets(minimal_path_sets(tree)) == _as_sets(
            [frozenset({"e2"}), frozenset({"e4", "e5"})]
        )

    def test_vot_tree_minimal_sets(self):
        tree = example_vot_tree()
        pairs = [
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
            frozenset({"b", "c"}),
        ]
        assert _as_sets(minimal_cut_sets(tree)) == _as_sets(pairs)
        assert _as_sets(minimal_path_sets(tree)) == _as_sets(pairs)

    def test_intermediate_element_analysis(self):
        tree = figure1_tree()
        assert minimal_cut_sets(tree, "CP") == [frozenset({"H3", "IW"})]
        assert _as_sets(minimal_path_sets(tree, "CP")) == _as_sets(
            [frozenset({"IW"}), frozenset({"H3"})]
        )


class TestMinimizeSets:
    def test_supersets_dropped(self):
        sets = [frozenset("ab"), frozenset("abc"), frozenset("c")]
        assert set(minimize_sets(sets)) == {frozenset("ab"), frozenset("c")}

    def test_duplicates_collapse(self):
        sets = [frozenset("a"), frozenset("a")]
        assert minimize_sets(sets) == [frozenset("a")]

    def test_empty_set_absorbs_everything(self):
        sets = [frozenset(), frozenset("a")]
        assert minimize_sets(sets) == [frozenset()]


class TestCrossValidation:
    @given(tree=small_trees())
    @settings(max_examples=40, deadline=None)
    def test_bdd_equals_enumeration_mcs(self, tree):
        assert _as_sets(minimal_cut_sets(tree)) == _as_sets(
            minimal_cut_sets_enum(tree)
        )

    @given(tree=small_trees())
    @settings(max_examples=40, deadline=None)
    def test_bdd_equals_enumeration_mps(self, tree):
        assert _as_sets(minimal_path_sets(tree)) == _as_sets(
            minimal_path_sets_enum(tree)
        )

    @given(tree=small_trees())
    @settings(max_examples=30, deadline=None)
    def test_every_mcs_is_a_minimal_cut_set(self, tree):
        for mcs in minimal_cut_sets(tree):
            assert is_minimal_cut_set(tree, tree.vector_from_failed(mcs))

    @given(tree=small_trees())
    @settings(max_examples=30, deadline=None)
    def test_every_mps_is_a_minimal_path_set(self, tree):
        for mps in minimal_path_sets(tree):
            assert is_minimal_path_set(tree, tree.vector_from_operational(mps))


class TestStructuralImportance:
    def test_fig1_symmetric_events(self):
        tree = figure1_tree()
        assert structural_importance(tree, "IW") == structural_importance(
            tree, "H3"
        )
        assert structural_importance(tree, "IW") == Fraction(3, 8)

    def test_irrelevant_event_has_zero_importance(self):
        from repro.ft import FaultTreeBuilder

        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("g", "a", "b")
            .and_gate("top", "g", "a")
            .build("top")
        )
        # top == a, so b never matters.
        assert structural_importance(tree, "b") == 0
        assert structural_importance(tree, "a") == 1

    def test_unknown_event_rejected(self):
        tree = figure1_tree()
        with pytest.raises(ValueError):
            structural_importance(tree, "nope")


class TestEnumerationGuard:
    def test_large_tree_rejected(self):
        from repro.ft import RandomTreeConfig, random_tree

        tree = random_tree(0, RandomTreeConfig(n_basic_events=25))
        with pytest.raises(ValueError):
            minimal_cut_sets_enum(tree)
