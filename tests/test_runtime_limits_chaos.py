"""Resource governance, snapshot integrity and the chaos harness.

Covers the PR-8 surface:

* :class:`repro.runtime.limits.Governor` — budget/deadline semantics,
  injectable clock, re-arming, trip accounting;
* governed kernel aborts — a deadline or budget trip mid-operation
  leaves the manager consistent (``check_invariants``) and the same
  work succeeds once the governor is removed, including with GC and
  sifting interleaved (hypothesis-driven);
* sha256 snapshot integrity — round trips, deterministic corruption
  and truncation detection, legacy checksum-free payloads, and the
  ``BatchAnalyzer`` degrade-to-prewarm fallback with structured
  warnings;
* batch governance — per-query ``timeout_ms``, analyzer-level battery
  deadlines, structured ``error_kind`` rows;
* the chaos harness end to end — a killed worker recovered by shard
  retry, retry exhaustion reported as ``worker-crash``, budget trips as
  ``resource-limit``, with non-injected queries byte-identical to a
  fault-free sequential run.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from bfl_strategies import small_trees
from repro.bdd import BDDManager
from repro.bdd.manager import snapshot_checksum
from repro.errors import (
    ExecutionError,
    QueryDeadlineError,
    ReproError,
    ResourceLimitError,
    SnapshotError,
    SnapshotIntegrityError,
    WorkerCrashError,
    error_kind,
)
from repro.ft import TreeTranslator, figure1_tree, tree_to_bdd
from repro.runtime import Governor
from repro.service import BatchAnalyzer, QuerySpec, specs_from_any
from repro.service.queries import QuerySpecError
from repro.testing.chaos import chaos_config, corrupt_snapshot, on_shard_start


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _stripped(report):
    rows = []
    for result in report.results:
        data = result.to_dict()
        data.pop("elapsed_ms", None)
        rows.append(data)
    return rows


def _battery(event: str):
    return specs_from_any(
        [
            {"id": "q1", "formula": f"[[ {event} ]]"},
            {"id": "q2", "kind": "mcs"},
            {"id": "q3", "formula": f"forall ({event} => {event})"},
            {"id": "q4", "kind": "mps"},
            {"id": "q5", "formula": f"[[ {event} & {event} ]]"},
            {"id": "q6", "formula": f"exists {event}"},
            {"id": "q7", "formula": f"forall (!{event} | {event})"},
            {"id": "q8", "kind": "mcs"},
        ]
    )


# ----------------------------------------------------------------------
# Governor unit semantics
# ----------------------------------------------------------------------


class TestGovernor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Governor(deadline_ms=0)
        with pytest.raises(ValueError):
            Governor(deadline_ms=-5)
        with pytest.raises(ValueError):
            Governor(node_budget=0)
        with pytest.raises(ValueError):
            Governor(step_budget=0)
        with pytest.raises(ValueError):
            Governor(check_interval=0)

    def test_step_budget_trips_after_budget_ticks(self):
        governor = Governor(step_budget=5).start()
        for _ in range(5):
            governor.tick()
        with pytest.raises(ResourceLimitError) as excinfo:
            governor.tick()
        assert "apply-step budget" in str(excinfo.value)
        assert governor.trips == 1
        assert error_kind(excinfo.value) == "resource-limit"

    def test_node_budget_trips_on_live_count(self):
        governor = Governor(node_budget=10).start()
        governor.tick(live_nodes=10)  # at the budget: fine
        with pytest.raises(ResourceLimitError) as excinfo:
            governor.tick(live_nodes=11)
        assert "node budget" in str(excinfo.value)

    def test_deadline_trips_with_injected_clock(self):
        clock = FakeClock()
        governor = Governor(
            deadline_ms=100, check_interval=1, clock=clock
        ).start()
        governor.tick()
        clock.advance(0.2)  # 200 ms > the 100 ms budget
        with pytest.raises(QueryDeadlineError) as excinfo:
            governor.tick()
        assert error_kind(excinfo.value) == "deadline"
        assert governor.trips == 1

    def test_first_tick_checks_deadline_even_with_wide_interval(self):
        clock = FakeClock()
        governor = Governor(
            deadline_ms=1, check_interval=1024, clock=clock
        ).start()
        clock.advance(1.0)
        with pytest.raises(QueryDeadlineError):
            governor.tick()

    def test_wall_clock_only_read_at_interval(self):
        clock = FakeClock()
        governor = Governor(
            deadline_ms=100, check_interval=8, clock=clock
        ).start()
        governor.tick()  # step 1 always checks
        clock.advance(1.0)
        for _ in range(5):  # steps 2..6: no clock reads, no trip
            governor.tick()
        with pytest.raises(QueryDeadlineError):
            for _ in range(8):
                governor.tick()

    def test_check_deadline_is_unconditional(self):
        clock = FakeClock()
        governor = Governor(
            deadline_ms=100, check_interval=1 << 20, clock=clock
        ).start()
        clock.advance(1.0)
        with pytest.raises(QueryDeadlineError):
            governor.check_deadline()

    def test_start_rearms_deadline_and_steps(self):
        clock = FakeClock()
        governor = Governor(
            deadline_ms=100, check_interval=1, clock=clock
        ).start()
        clock.advance(0.2)
        with pytest.raises(QueryDeadlineError):
            governor.tick()
        governor.start()  # re-arm from the new now
        governor.tick()
        assert governor.steps == 1
        assert governor.trips == 1

    def test_remaining_ms(self):
        clock = FakeClock()
        governor = Governor(deadline_ms=100, clock=clock).start()
        clock.advance(0.04)
        assert governor.remaining_ms() == pytest.approx(60.0)
        clock.advance(1.0)
        assert governor.remaining_ms() == 0.0
        assert Governor(step_budget=3).remaining_ms() is None

    def test_tick_autostarts(self):
        governor = Governor(step_budget=1)
        governor.tick()
        with pytest.raises(ResourceLimitError):
            governor.tick()


class TestErrorKinds:
    def test_stable_kinds(self):
        assert error_kind(ResourceLimitError("x")) == "resource-limit"
        assert error_kind(QueryDeadlineError("x")) == "deadline"
        assert error_kind(WorkerCrashError("x")) == "worker-crash"
        assert error_kind(SnapshotIntegrityError("x")) == "snapshot-integrity"
        assert error_kind(ValueError("x")) == "ValueError"

    def test_integrity_error_is_both_snapshot_and_execution(self):
        exc = SnapshotIntegrityError("x")
        assert isinstance(exc, SnapshotError)
        assert isinstance(exc, ExecutionError)

    def test_worker_crash_carries_traceback(self):
        exc = WorkerCrashError("boom", traceback_text="Traceback ...")
        assert exc.traceback_text == "Traceback ..."


# ----------------------------------------------------------------------
# Governed kernel aborts leave the manager consistent
# ----------------------------------------------------------------------


class TestGovernedKernel:
    def test_ungoverned_manager_runs_free(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        assert manager.governor is None
        tree_to_bdd(tree, manager)
        manager.check_invariants()

    def test_deadline_abort_leaves_manager_consistent(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        clock = FakeClock()
        governor = Governor(
            deadline_ms=1, check_interval=1, clock=clock
        ).start()
        clock.advance(1.0)
        manager.governor = governor
        with pytest.raises(QueryDeadlineError):
            tree_to_bdd(tree, manager)
        manager.check_invariants()
        assert governor.trips >= 1
        # Removing the governor lets the identical work complete, and
        # the result matches a never-governed manager.
        manager.governor = None
        root = tree_to_bdd(tree, manager)
        fresh = BDDManager(tree.basic_events)
        expected = tree_to_bdd(tree, fresh)
        weights = {name: 0.25 for name in tree.basic_events}
        assert manager.probability(root, weights) == pytest.approx(
            fresh.probability(expected, weights)
        )

    def test_node_budget_abort_consistent(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        manager.governor = Governor(node_budget=2)
        with pytest.raises(ResourceLimitError):
            tree_to_bdd(tree, manager)
        manager.check_invariants()
        manager.governor = None
        tree_to_bdd(tree, manager)
        manager.check_invariants()

    def test_step_budget_abort_during_sift(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        weights = {name: 0.25 for name in tree.basic_events}
        before = manager.probability(root, weights)
        manager.governor = Governor(step_budget=1)
        with pytest.raises(ResourceLimitError):
            manager.sift_inplace()
        manager.check_invariants()
        manager.governor = None
        # The aborted sift preserved every function.
        assert manager.probability(root, weights) == pytest.approx(before)
        manager.sift_inplace()
        assert manager.probability(root, weights) == pytest.approx(before)

    def test_governed_probability_completes_under_roomy_budget(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        manager.governor = Governor(deadline_ms=60_000)
        weights = {name: 0.25 for name in tree.basic_events}
        value = manager.probability(root, weights)
        manager.governor = None
        fresh = BDDManager(tree.basic_events)
        assert value == pytest.approx(
            fresh.probability(tree_to_bdd(tree, fresh), weights)
        )

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree=small_trees(), step_budget=st.integers(1, 60))
    def test_abort_then_retry_matches_fresh_build(self, tree, step_budget):
        """Trip mid-translation, GC, sift, retry: semantics preserved.

        The governed manager either finishes within the budget or
        aborts consistently; after the abort the interleaved GC and
        sifting passes must still see a sound store, and the retried
        translation must agree with a never-governed manager.
        """
        manager = BDDManager(tree.basic_events)
        manager.governor = Governor(step_budget=step_budget)
        aborted = False
        try:
            tree_to_bdd(tree, manager)
        except ExecutionError:
            aborted = True
        manager.check_invariants()
        manager.governor = None
        manager.collect()
        manager.check_invariants()
        root = tree_to_bdd(tree, manager)
        manager.sift_inplace()
        manager.check_invariants()
        fresh = BDDManager(tree.basic_events)
        expected = tree_to_bdd(tree, fresh)
        weights = {name: 0.25 for name in tree.basic_events}
        assert manager.probability(root, weights) == pytest.approx(
            fresh.probability(expected, weights)
        )
        if not aborted:
            # Small trees may fit the budget — that run must be exact.
            assert manager.node_count() >= 0


# ----------------------------------------------------------------------
# Snapshot integrity
# ----------------------------------------------------------------------


def _snapshot_of(tree):
    manager = BDDManager(tree.basic_events)
    translator = TreeTranslator(tree, manager)
    top = translator.element(tree.top)
    return manager, manager.save_snapshot(roots={"top": top})


class TestSnapshotIntegrity:
    def test_round_trip_carries_checksum(self):
        _, snapshot = _snapshot_of(figure1_tree())
        assert snapshot["sha256"] == snapshot_checksum(snapshot)
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert "top" in roots

    def test_json_round_trip_still_validates(self):
        _, snapshot = _snapshot_of(figure1_tree())
        portable = json.loads(json.dumps(snapshot))
        reloaded, _ = BDDManager.load_snapshot(portable)
        reloaded.check_invariants()

    def test_corruption_detected(self):
        _, snapshot = _snapshot_of(figure1_tree())
        portable = json.loads(json.dumps(snapshot))
        bad = corrupt_snapshot(portable, seed=3, flips=1)
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            BDDManager.load_snapshot(bad)
        assert error_kind(excinfo.value) == "snapshot-integrity"
        assert "sha256" in str(excinfo.value)

    def test_truncation_detected(self):
        _, snapshot = _snapshot_of(figure1_tree())
        portable = json.loads(json.dumps(snapshot))
        truncated = dict(portable)
        truncated["lows"] = truncated["lows"][:-1]
        with pytest.raises(SnapshotIntegrityError):
            BDDManager.load_snapshot(truncated)

    def test_legacy_snapshot_without_checksum_loads(self):
        _, snapshot = _snapshot_of(figure1_tree())
        legacy = dict(json.loads(json.dumps(snapshot)))
        legacy.pop("sha256")
        reloaded, _ = BDDManager.load_snapshot(legacy)
        reloaded.check_invariants()

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree=small_trees(), seed=st.integers(0, 2**16))
    def test_single_flip_always_detected(self, tree, seed):
        _, snapshot = _snapshot_of(tree)
        portable = json.loads(json.dumps(snapshot))
        bad = corrupt_snapshot(portable, seed=seed, flips=1)
        with pytest.raises(SnapshotIntegrityError):
            BDDManager.load_snapshot(bad)

    def test_batch_degrades_to_prewarm_on_corrupt_snapshot(self):
        tree = figure1_tree()
        event = sorted(tree.basic_events)[0]
        specs = _battery(event)
        cold = BatchAnalyzer(tree).run(specs)

        source = BatchAnalyzer(tree)
        source.prewarm_trees()
        snapshots = source.kernel_snapshots()
        bad = {
            name: corrupt_snapshot(entry, seed=11)
            for name, entry in snapshots.items()
        }
        degraded_analyzer = BatchAnalyzer(tree, snapshots=bad)
        degraded = degraded_analyzer.run(specs)
        assert degraded.ok
        assert _stripped(degraded) == _stripped(cold)
        warnings = degraded.stats.get("warnings")
        assert warnings and warnings[0]["kind"] == "snapshot-integrity"

    def test_batch_accepts_intact_snapshot_silently(self):
        tree = figure1_tree()
        source = BatchAnalyzer(tree)
        source.prewarm_trees()
        warm = BatchAnalyzer(tree, snapshots=source.kernel_snapshots())
        report = warm.run(_battery(sorted(tree.basic_events)[0]))
        assert report.ok
        assert "warnings" not in report.stats


# ----------------------------------------------------------------------
# Batch governance: timeouts and deadlines
# ----------------------------------------------------------------------


class TestBatchGovernance:
    def test_timeout_ms_validation(self):
        with pytest.raises(QuerySpecError):
            QuerySpec(id="q", formula="[[ a ]]", timeout_ms=0)
        with pytest.raises(QuerySpecError):
            QuerySpec(id="q", formula="[[ a ]]", timeout_ms=-1)

    def test_timeout_ms_from_dict_round_trip(self):
        spec = QuerySpec.from_dict(
            {"formula": "[[ a ]]", "timeout_ms": 250}, "q1"
        )
        assert spec.timeout_ms == 250.0

    def test_analyzer_governance_validation(self):
        tree = figure1_tree()
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, deadline_ms=0)
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, query_timeout_ms=-1)
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, shard_retries=-1)
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, shard_retries=True)
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, retry_backoff_ms=-1)
        with pytest.raises(ReproError):
            BatchAnalyzer(tree, watchdog_ms=0)

    def test_battery_deadline_rows_are_structured(self):
        tree = figure1_tree()
        event = sorted(tree.basic_events)[0]
        report = BatchAnalyzer(tree, deadline_ms=1e-6).run(_battery(event))
        assert not report.ok
        for result in report.results:
            assert result.error_kind == "deadline"
            assert "deadline" in result.error

    def test_expired_query_timeout_is_per_query(self):
        tree = figure1_tree()
        event = sorted(tree.basic_events)[0]
        specs = specs_from_any(
            [
                {"id": "fast", "formula": f"[[ {event} ]]"},
                # A budget this small expires before the query's first
                # governed safe point.
                {"id": "slow", "kind": "mcs", "timeout_ms": 1e-6},
                {"id": "after", "kind": "mps"},
            ]
        )
        report = BatchAnalyzer(tree).run(specs)
        assert report["fast"].ok
        assert report["after"].ok
        assert not report["slow"].ok
        assert report["slow"].error_kind == "deadline"

    def test_error_kind_serialised(self):
        tree = figure1_tree()
        report = BatchAnalyzer(tree, deadline_ms=1e-6).run(
            specs_from_any([{"id": "q", "kind": "mcs"}])
        )
        data = report.to_dict()["results"][0]
        assert data["error_kind"] == "deadline"

    def test_roomy_budgets_do_not_disturb_results(self):
        tree = figure1_tree()
        event = sorted(tree.basic_events)[0]
        specs = _battery(event)
        plain = BatchAnalyzer(tree).run(specs)
        governed = BatchAnalyzer(
            tree, deadline_ms=300_000, query_timeout_ms=60_000
        ).run(specs)
        assert _stripped(governed) == _stripped(plain)


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------


class TestChaosHarness:
    def test_config_parsing_is_forgiving(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_config() is None
        monkeypatch.setenv("REPRO_CHAOS", "not json")
        assert chaos_config() is None
        monkeypatch.setenv("REPRO_CHAOS", "[1, 2]")
        assert chaos_config() is None
        monkeypatch.setenv("REPRO_CHAOS", '{"delay_ms": 1}')
        assert chaos_config() == {"delay_ms": 1}

    def test_kill_respects_existing_marker(self, monkeypatch, tmp_path):
        marker = tmp_path / "killed"
        marker.write_text("")
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps(
                {"kill_queries": ["q1"], "kill_marker": str(marker)}
            ),
        )
        on_shard_start(["q1"])  # must NOT exit: already killed once

    def test_no_kill_for_unlisted_queries(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps(
                {
                    "kill_queries": ["other"],
                    "kill_marker": str(tmp_path / "m"),
                }
            ),
        )
        on_shard_start(["q1", "q2"])
        assert not (tmp_path / "m").exists()

    def test_corrupt_snapshot_is_deterministic(self):
        _, snapshot = _snapshot_of(figure1_tree())
        portable = json.loads(json.dumps(snapshot))
        first = corrupt_snapshot(portable, seed=5)
        second = corrupt_snapshot(portable, seed=5)
        assert first == second
        assert first != portable

    def test_corrupt_snapshot_needs_a_column(self):
        with pytest.raises(ValueError):
            corrupt_snapshot({"format": "x"}, seed=0)


@pytest.mark.parametrize("auto_manage", [False, True])
def test_chaos_parallel_differential(tmp_path, monkeypatch, auto_manage):
    """Kill + corrupt + budget-trip a 4-shard battery; verify recovery.

    The acceptance scenario: one worker killed mid-shard (recovered by
    retry), one corrupted snapshot (degraded to a cold build), one
    budget-tripped query (structured ``resource-limit`` row).  Every
    non-injected query must match a fault-free sequential run exactly —
    with GC and sifting interleaved in the managed variant.
    """
    tree = figure1_tree()
    event = sorted(tree.basic_events)[0]
    specs = _battery(event)
    manage = {"auto_gc": auto_manage, "auto_reorder": auto_manage}

    baseline = BatchAnalyzer(tree, **manage).run(specs)
    assert baseline.ok

    source = BatchAnalyzer(tree)
    source.prewarm_trees()
    snapshots = {
        name: corrupt_snapshot(entry, seed=7)
        for name, entry in source.kernel_snapshots().items()
    }

    marker = tmp_path / "chaos-kill"
    monkeypatch.setenv(
        "REPRO_CHAOS",
        json.dumps(
            {
                "kill_queries": ["q3"],
                "kill_marker": str(marker),
                "budget_trip_queries": ["q5"],
                "trip_step_budget": 1,
            }
        ),
    )
    analyzer = BatchAnalyzer(
        tree,
        workers=4,
        snapshots=snapshots,
        shard_retries=2,
        retry_backoff_ms=10.0,
        **manage,
    )
    report = analyzer.run(specs)
    monkeypatch.delenv("REPRO_CHAOS")

    assert marker.exists(), "the chaos kill never fired"
    shard_rows = report.stats["parallel"]["shards"]
    assert any(row.get("retried") for row in shard_rows)
    assert all(row.get("error") is None for row in shard_rows)

    for expected, actual in zip(baseline.results, report.results):
        if actual.id == "q5":
            assert not actual.ok
            assert actual.error_kind == "resource-limit"
            continue
        left = expected.to_dict()
        right = actual.to_dict()
        left.pop("elapsed_ms")
        right.pop("elapsed_ms")
        assert left == right

    # The managers the parent holds must still be sound.
    for name in analyzer.scenarios:
        analyzer.session(name).checker.manager.check_invariants()


def test_chaos_retry_exhaustion_reports_worker_crash(monkeypatch):
    """A shard that dies on every attempt becomes a structured failure."""
    tree = figure1_tree()
    event = sorted(tree.basic_events)[0]
    specs = specs_from_any(
        [
            {"id": "q1", "formula": f"[[ {event} ]]"},
            {"id": "q2", "kind": "mcs"},
        ]
    )
    # No kill_marker: the kill fires on every attempt.
    monkeypatch.setenv(
        "REPRO_CHAOS", json.dumps({"kill_queries": ["q1", "q2"]})
    )
    analyzer = BatchAnalyzer(
        tree, workers=2, shard_retries=1, retry_backoff_ms=5.0
    )
    report = analyzer.run(specs)
    monkeypatch.delenv("REPRO_CHAOS")

    assert not report.ok
    failed = [r for r in report.results if not r.ok]
    assert failed
    for result in failed:
        assert result.error_kind == "worker-crash"
        assert "worker shard failed" in result.error
    rows = report.stats["parallel"]["shards"]
    assert any(row.get("error_kind") == "worker-crash" for row in rows)
    assert all(row.get("attempts") == 2 for row in rows if row.get("error"))
    stats = report.stats["queries"]
    assert stats["errors"] >= len(failed)
