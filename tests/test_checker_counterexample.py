"""Algorithm 4 + Def. 7: counterexample construction and verification."""

import pytest
from hypothesis import given, settings

from repro.errors import NoCounterexampleError
from repro.ft import figure1_tree, table1_tree
from repro.logic import MCS, MPS, Atom, parse_formula
from repro.checker import (
    FormulaTranslator,
    algorithm4,
    check,
    closest_counterexample,
    exhaustive_counterexamples,
    verify_def7,
)

from bfl_strategies import formulas_for, small_trees, vectors_for
from hypothesis import strategies as st


@pytest.fixture()
def table1_translator():
    return FormulaTranslator(table1_tree())


class TestAlgorithm4:
    def test_unsatisfiable_formula_raises(self, table1_translator):
        tree = table1_tree()
        with pytest.raises(NoCounterexampleError):
            algorithm4(
                table1_translator,
                parse_formula("false"),
                tree.vector_from_failed([]),
            )

    def test_already_satisfying_vector_returned_unchanged(
        self, table1_translator
    ):
        tree = table1_tree()
        vector = tree.vector_from_failed(["e2", "e4"])
        cex = algorithm4(table1_translator, MCS(Atom("e1")), vector)
        assert cex.changed == ()
        assert cex.vector == vector

    def test_result_always_satisfies_the_formula(self, table1_translator):
        tree = table1_tree()
        formula = MCS(Atom("e1"))
        for bits in [(0, 0, 0), (0, 1, 0), (1, 1, 1), (0, 0, 1)]:
            vector = tree.vector_from_bits(bits)
            cex = algorithm4(table1_translator, formula, vector)
            assert check(table1_translator, formula, cex.vector)

    def test_sec6_opening_example(self):
        # {IW, H3, IT} is a cut set but not an MCS; a suitable
        # counterexample is the contained MCS {IW, H3}.
        tree = figure1_tree()
        translator = FormulaTranslator(tree)
        vector = tree.vector_from_failed(["IW", "H3", "IT"])
        cex = algorithm4(translator, MCS(Atom("CP/R")), vector)
        assert tree.failed_set(cex.vector) == frozenset({"IW", "H3"})
        assert cex.def7_compliant

    def test_newly_failed_and_operational_views(self, table1_translator):
        tree = table1_tree()
        cex = algorithm4(
            table1_translator, MCS(Atom("e1")), tree.vector_from_bits((0, 1, 0))
        )
        assert cex.newly_failed == ("e2",)
        assert cex.newly_operational == ()


class TestDef7:
    def test_verify_detects_non_satisfying_candidate(self, table1_translator):
        tree = table1_tree()
        violations = verify_def7(
            table1_translator,
            MCS(Atom("e1")),
            tree.vector_from_bits((0, 0, 0)),
            tree.vector_from_bits((0, 0, 1)),
        )
        assert violations == ("*",)

    def test_verify_detects_unnecessary_change(self, table1_translator):
        tree = table1_tree()
        # From (1,1,0) -- which already satisfies MCS(e1) -- to (1,0,1):
        # both are witnesses, but each changed bit flips between two valid
        # witnesses, so reverting e4 alone gives (1,1,1): not satisfying;
        # use a formula where a change is genuinely unnecessary instead.
        violations = verify_def7(
            table1_translator,
            parse_formula("e2"),
            tree.vector_from_bits((0, 0, 0)),
            tree.vector_from_bits((1, 1, 0)),
        )
        assert violations == ("e4",)

    def test_compliant_candidate_has_no_violations(self, table1_translator):
        tree = table1_tree()
        violations = verify_def7(
            table1_translator,
            MCS(Atom("e1")),
            tree.vector_from_bits((0, 1, 0)),
            tree.vector_from_bits((1, 1, 0)),
        )
        assert violations == ()


class TestExhaustiveAndClosest:
    def test_exhaustive_lists_all_def7_witnesses(self, table1_translator):
        tree = table1_tree()
        vector = tree.vector_from_bits((0, 1, 0))
        witnesses = exhaustive_counterexamples(
            table1_translator, MCS(Atom("e1")), vector
        )
        failed = {tree.failed_set(w.vector) for w in witnesses}
        assert frozenset({"e2", "e4"}) in failed
        assert all(w.def7_compliant for w in witnesses)

    def test_closest_minimises_hamming_distance(self, table1_translator):
        tree = table1_tree()
        vector = tree.vector_from_bits((0, 1, 0))
        closest = closest_counterexample(
            table1_translator, MCS(Atom("e1")), vector
        )
        assert closest is not None
        assert len(closest.changed) == 1
        assert tree.failed_set(closest.vector) == frozenset({"e2", "e4"})

    def test_closest_none_when_unsatisfiable(self, table1_translator):
        tree = table1_tree()
        assert (
            closest_counterexample(
                table1_translator,
                parse_formula("false"),
                tree.vector_from_failed([]),
            )
            is None
        )


class TestAlgorithm4Properties:
    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(max_examples=40, deadline=None)
    def test_output_satisfies_formula_and_def7_holds(self, data, tree):
        """On random (tree, formula, vector): if the formula is satisfiable,
        Algorithm 4 yields a satisfying vector, and the greedy walk's
        changes are Def. 7-necessary (a reproduction finding: the paper
        claims this; we verify it holds on every generated instance)."""
        translator = FormulaTranslator(tree)
        formula = data.draw(formulas_for(tree, allow_minimal_ops=True))
        vector = data.draw(vectors_for(tree))
        root = translator.bdd(formula)
        if root is translator.manager.false:
            with pytest.raises(NoCounterexampleError):
                algorithm4(translator, formula, vector)
            return
        cex = algorithm4(translator, formula, vector)
        assert check(translator, formula, cex.vector)
        assert cex.def7_compliant, (
            f"Algorithm 4 made an unnecessary change: {cex}"
        )
