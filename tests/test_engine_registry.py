"""The query-kind registry (PR 9): one descriptor per kind, one dispatch.

Covers the PR-9 surface:

* registry completeness and order — ``repro.service.KINDS`` and every
  validation message derive from the registry, planner weights pin the
  historical table exactly;
* planner determinism — ``estimate_cost`` is byte-identical to the old
  hard-coded cost function for every legacy kind, and ``plan_shards``
  yields the same plan on repeated runs;
* dispatch parity — for EVERY registered kind the same query answered
  through ``ModelChecker.execute``, a sequential ``BatchAnalyzer``, a
  2-worker sharded run, and the ``bfl batch`` CLI is identical;
* the ``synthesize`` kind end to end — kind-free ``SYNTHESIZE(...)``
  promotion, explicit candidates, candidate-sweep mode, validation;
* ``bfl batch --list-kinds`` and the docs kind table, both pinned to
  the registry so none of the three can drift;
* registry-dispatched failures still map through ``errors.error_kind``,
  including a chaos-killed shard mid-synthesize-sweep.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.casestudy import build_covid_tree
from repro.cli import main
from repro.checker import ModelChecker
from repro.engine import REGISTRY, QueryKind, QueryKindRegistry
from repro.errors import QuerySpecError, error_kind
from repro.logic.parser import format_statement
from repro.service import BatchAnalyzer, QuerySpec, specs_from_any
from repro.service.queries import KINDS
from repro.service.parallel import estimate_cost, plan_shards

DOCS_DSL = Path(__file__).resolve().parent.parent / "docs" / "dsl.md"

#: The planner's per-kind weights before the registry existed
#: (``service/parallel.py`` ``_KIND_WEIGHT``).  Pinned: the refactor
#: must not move a single shard boundary for existing batteries.
LEGACY_WEIGHTS = {
    "check": 1.0,
    "probability": 1.0,
    "probability-sweep": 1.0,
    "independence": 1.5,
    "counterexample": 2.0,
    "satisfaction-set": 3.0,
    "mcs": 4.0,
    "mps": 4.0,
}


def legacy_estimate_cost(spec, tree):
    """Verbatim re-derivation of the pre-registry cost function."""
    if tree is None:
        return 1.0
    tree_weight = 1 + len(tree.basic_events) + len(tree.gate_names)
    formula = spec.formula
    if formula is None:
        text = "MCS()"
    elif isinstance(formula, str):
        text = formula
    else:
        text = format_statement(formula)
    formula_weight = 1.0 + len(text) / 16.0
    if "MCS(" in text or "MPS(" in text:
        formula_weight *= 2.0
    return LEGACY_WEIGHTS.get(spec.kind, 1.0) * tree_weight * formula_weight


# ----------------------------------------------------------------------
# Registry shape
# ----------------------------------------------------------------------


class TestRegistryShape:
    def test_every_legacy_kind_plus_synthesize(self):
        assert REGISTRY.names() == (
            "check",
            "satisfaction-set",
            "mcs",
            "mps",
            "counterexample",
            "independence",
            "probability",
            "probability-sweep",
            "synthesize",
        )

    def test_service_kinds_is_the_registry(self):
        assert KINDS == REGISTRY.names()

    def test_weights_pin_the_legacy_table(self):
        for name, weight in LEGACY_WEIGHTS.items():
            assert REGISTRY.weight(name) == weight
        assert REGISTRY.weight("synthesize") == 2.0
        assert REGISTRY.weight("no-such-kind", 7.5) == 7.5

    def test_owned_optional_fields(self):
        assert REGISTRY.owners_of("profiles") == ("probability-sweep",)
        assert REGISTRY.owners_of("candidates") == ("synthesize",)
        assert REGISTRY.owners_of("candidate_sets") == ("synthesize",)
        assert set(REGISTRY.owned_fields()) == {
            "profiles",
            "candidates",
            "candidate_sets",
        }

    def test_unknown_kind_error_lists_the_registry(self):
        with pytest.raises(QuerySpecError) as err:
            QuerySpec(id="q", kind="sideways")
        message = str(err.value)
        assert "unknown kind 'sideways'" in message
        for name in REGISTRY.names():
            assert name in message

    def test_required_field_messages_come_from_the_registry(self):
        with pytest.raises(QuerySpecError, match="needs a formula"):
            QuerySpec(id="q", kind="check")
        with pytest.raises(QuerySpecError, match="second formula"):
            QuerySpec(id="q", kind="independence", formula="A")

    def test_ownership_violations_name_the_owning_kinds(self):
        with pytest.raises(
            QuerySpecError, match="only applies to probability-sweep"
        ):
            QuerySpec(id="q", kind="check", formula="A", profiles=({},))
        with pytest.raises(QuerySpecError, match="only applies to synthesize"):
            QuerySpec(id="q", kind="mcs", candidates=("A",))

    def test_duplicate_registration_rejected(self):
        registry = QueryKindRegistry()
        kind = QueryKind(name="k", summary="s", execute=lambda *a: {})
        registry.register(kind)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(kind)

    def test_execute_hook_is_mandatory(self):
        with pytest.raises(ValueError, match="no execute hook"):
            QueryKindRegistry().register(QueryKind(name="k", summary="s"))


# ----------------------------------------------------------------------
# Planner: registry weights are byte-identical to the old table
# ----------------------------------------------------------------------


def _planner_battery():
    return specs_from_any(
        [
            {"id": "q1", "formula": "forall (IS => MoT)"},
            {"id": "q2", "formula": "[[ MCS(MoT) & IS ]]"},
            {"id": "q3", "kind": "mcs"},
            {"id": "q4", "kind": "mps", "element": "MoT"},
            {"id": "q5", "kind": "counterexample", "formula": "MCS(IWoS)",
             "failed": ["IW"]},
            {"id": "q6", "kind": "independence", "formula": "CIO",
             "other": "CIS"},
            {"id": "q7", "kind": "probability", "formula": "P(IWoS) >= 0.1"},
            {"id": "q8", "kind": "probability-sweep", "formula": "IWoS",
             "profiles": [{}, {"H1": 0.9}]},
        ]
    )


class TestPlanner:
    def test_legacy_costs_are_byte_identical(self):
        tree = build_covid_tree()
        for spec in _planner_battery():
            assert estimate_cost(spec, tree) == legacy_estimate_cost(
                spec, tree
            )
            assert estimate_cost(spec, None) == 1.0

    def test_plans_are_deterministic(self):
        tree = build_covid_tree()
        specs = _planner_battery()
        trees = {"default": tree}
        first = plan_shards(specs, trees, 3)
        second = plan_shards(specs, trees, 3)
        assert [s.indices for s in first] == [s.indices for s in second]
        assert [s.cost for s in first] == [s.cost for s in second]

    def test_synthesize_cost_scales_with_sweep_width(self):
        tree = build_covid_tree()
        narrow = QuerySpec(id="s", kind="synthesize", formula="IWoS")
        wide = QuerySpec(
            id="s",
            kind="synthesize",
            formula="IWoS",
            candidate_sets=tuple((("H1",),) * 8),
        )
        assert estimate_cost(wide, tree) == pytest.approx(
            8 * estimate_cost(narrow, tree)
        )


# ----------------------------------------------------------------------
# Dispatch parity: every kind, every entry path, identical answers
# ----------------------------------------------------------------------

#: One representative query per registered kind.  The exhaustiveness
#: assertion below forces this table to grow with the registry.
PARITY_QUERIES = {
    "check": {"id": "q-check", "kind": "check",
              "formula": "MCS(IWoS)", "failed": ["H1", "VW"]},
    "satisfaction-set": {"id": "q-allsat", "kind": "satisfaction-set",
                         "formula": "MCS(MoT) & IS"},
    "mcs": {"id": "q-mcs", "kind": "mcs", "element": "MoT"},
    "mps": {"id": "q-mps", "kind": "mps"},
    "counterexample": {"id": "q-cex", "kind": "counterexample",
                       "formula": "MCS(IWoS)", "failed": ["IW", "H3", "IT"]},
    "independence": {"id": "q-idp", "kind": "independence",
                     "formula": "CIO", "other": "CIS"},
    "probability": {"id": "q-prob", "kind": "probability",
                    "formula": "P(IWoS | H1) >= 0.1"},
    "probability-sweep": {"id": "q-sweep", "kind": "probability-sweep",
                          "formula": "IWoS",
                          "profiles": [{}, {"H1": 0.9, "VW": 0.4}]},
    "synthesize": {"id": "q-synth", "kind": "synthesize",
                   "formula": "IWoS /\\ !IS",
                   "candidates": ["H1", "H2", "IS"]},
}


def _strip(row):
    row = dict(row)
    row.pop("elapsed_ms", None)
    return row


class TestDispatchParity:
    def test_parity_table_covers_every_kind(self):
        assert set(PARITY_QUERIES) == set(REGISTRY.names())

    def test_all_entry_paths_agree(self, tmp_path):
        tree = build_covid_tree()
        probabilities = {name: 0.1 for name in tree.basic_events}
        battery = [PARITY_QUERIES[name] for name in REGISTRY.names()]

        checker = ModelChecker(tree)
        facade = [
            _strip(checker.execute(q, probabilities=probabilities).to_dict())
            for q in battery
        ]

        sequential = BatchAnalyzer(tree, probabilities=probabilities).run(
            battery
        )
        assert sequential.ok, [r.error for r in sequential.results]
        seq_rows = [_strip(r.to_dict()) for r in sequential.results]

        sharded = BatchAnalyzer(
            tree, probabilities=probabilities, workers=2
        ).run(battery)
        par_rows = [_strip(r.to_dict()) for r in sharded.results]

        query_file = tmp_path / "parity.json"
        query_file.write_text(
            json.dumps(
                {"probabilities": probabilities, "queries": battery}
            ),
            encoding="utf-8",
        )
        out = tmp_path / "report.json"
        assert main(["batch", str(query_file), "--output", str(out)]) == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        cli_rows = [_strip(row) for row in report["results"]]

        assert facade == seq_rows
        assert par_rows == seq_rows
        assert cli_rows == seq_rows


# ----------------------------------------------------------------------
# The synthesize kind through the batch service
# ----------------------------------------------------------------------


class TestSynthesizeKind:
    def test_kind_free_synthesize_text_promotes(self):
        report = BatchAnalyzer(build_covid_tree()).run(
            [{"id": "s", "formula": "SYNTHESIZE(IWoS /\\ !IS; H1, H2, IS)"}]
        )
        result = report.results[0]
        assert result.ok
        assert result.kind == "check"  # the spec's kind is preserved
        assert result.holds is True
        assert result.synthesis["must_1"] == ["H1"]
        assert result.synthesis["must_0"] == ["IS"]
        assert result.synthesis["dont_care"] == ["H2"]
        assert result.synthesis["choices"] == 2

    def test_explicit_kind_matches_facade(self):
        tree = build_covid_tree()
        report = BatchAnalyzer(tree).run(
            [{"id": "s", "kind": "synthesize", "formula": "IWoS /\\ !IS",
              "candidates": ["H1", "H2", "IS"]}]
        )
        regions = ModelChecker(tree).synthesize(
            "IWoS /\\ !IS", candidates=["H1", "H2", "IS"]
        )
        assert report.results[0].synthesis == regions.to_dict()

    def test_candidate_sweep_mode(self):
        report = BatchAnalyzer(build_covid_tree()).run(
            [{"id": "s", "kind": "synthesize", "formula": "IWoS",
              "candidate_sets": [["H1", "H2"], ["MV", "PP", "UT"], []]}]
        )
        result = report.results[0]
        assert result.ok
        sweep = result.synthesis["sweep"]
        assert len(sweep) == 3
        assert sweep[0]["candidates"] == ["H1", "H2"]
        # the empty set means "all basic events"
        tree = build_covid_tree()
        assert set(sweep[2]["candidates"]) == set(tree.basic_events)

    def test_candidates_and_sets_are_mutually_exclusive(self):
        with pytest.raises(QuerySpecError, match="at most one of"):
            QuerySpec(
                id="s",
                kind="synthesize",
                formula="IWoS",
                candidates=("H1",),
                candidate_sets=(("H2",),),
            )

    def test_text_candidates_clash_with_field(self):
        report = BatchAnalyzer(build_covid_tree()).run(
            [{"id": "s", "kind": "synthesize",
              "formula": "SYNTHESIZE(IWoS; H1)", "candidates": ["H2"]}]
        )
        result = report.results[0]
        assert not result.ok
        assert "not both" in result.error


# ----------------------------------------------------------------------
# CLI metadata and docs stay pinned to the registry
# ----------------------------------------------------------------------


class TestKindMetadata:
    def test_list_kinds_cli(self, capsys):
        assert main(["batch", "--list-kinds"]) == 0
        out = capsys.readouterr().out
        for kind in REGISTRY:
            assert kind.name in out
            for field_name in kind.required_fields():
                assert field_name in out
            for field_name in kind.accepts:
                assert field_name in out

    def test_docs_kind_table_matches_registry(self):
        text = DOCS_DSL.read_text(encoding="utf-8")
        match = re.search(
            r"<!-- kinds:begin -->\n(.*?)<!-- kinds:end -->",
            text,
            re.DOTALL,
        )
        assert match, "docs/dsl.md lost its kind-table markers"
        rows = [
            line
            for line in match.group(1).splitlines()
            if line.startswith("| `")
        ]
        documented = []
        for row in rows:
            cells = [cell.strip() for cell in row.strip("|").split("|")]
            name = cells[0].strip("`")
            requires = tuple(re.findall(r"`([^`]+)`", cells[1]))
            accepts = tuple(re.findall(r"`([^`]+)`", cells[2]))
            cli = cells[3].strip("`")
            documented.append((name, requires, accepts, cli))
        registered = [
            (
                kind.name,
                kind.required_fields(),
                kind.accepts,
                kind.cli,
            )
            for kind in REGISTRY
        ]
        assert documented == registered


# ----------------------------------------------------------------------
# Failures keep their structured taxonomy through the registry
# ----------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_synthesis_errors_map_through_error_kind(self):
        report = BatchAnalyzer(build_covid_tree()).run(
            [{"id": "s", "kind": "synthesize", "formula": "IWoS",
              "candidates": ["NOPE"]}]
        )
        result = report.results[0]
        assert not result.ok
        assert result.error_kind == "SynthesisError"
        assert "unknown" in result.error

    def test_chaos_killed_shard_mid_synthesize_sweep(self, monkeypatch):
        """A worker killed during a synthesize sweep, with retries
        exhausted, becomes a structured ``worker-crash`` row — the other
        shard's queries still succeed."""
        tree = build_covid_tree()
        events = sorted(tree.basic_events)
        sweep = {
            "id": "q1",
            "kind": "synthesize",
            "formula": "IWoS",
            "candidate_sets": [[name] for name in events],
        }
        check = {"id": "q2", "formula": "forall (IS => MoT)"}
        monkeypatch.setenv(
            "REPRO_CHAOS", json.dumps({"kill_queries": ["q1"]})
        )
        analyzer = BatchAnalyzer(
            tree, workers=2, shard_retries=0, retry_backoff_ms=1.0
        )
        report = analyzer.run([sweep, check])
        monkeypatch.delenv("REPRO_CHAOS")

        by_id = {result.id: result for result in report.results}
        assert not report.ok
        assert not by_id["q1"].ok
        assert by_id["q1"].error_kind == "worker-crash"
        # Every casualty (the kill can take the whole pool down with it)
        # is reported through the same structured taxonomy.
        for result in report.results:
            if not result.ok:
                assert result.error_kind == "worker-crash"
                assert "worker shard failed" in result.error
        rows = report.stats["parallel"]["shards"]
        assert any(row.get("error_kind") == "worker-crash" for row in rows)

    def test_chaos_killed_synthesize_shard_recovers_with_retries(
        self, monkeypatch, tmp_path
    ):
        """With retries available the kill (latched to fire once) is
        recovered and the sweep's answer matches a fault-free run."""
        tree = build_covid_tree()
        sweep = {
            "id": "q1",
            "kind": "synthesize",
            "formula": "IWoS /\\ !IS",
            "candidate_sets": [["H1", "H2", "IS"], ["MV", "PP"]],
        }
        check = {"id": "q2", "formula": "[[ MCS(MoT) & IS ]]"}
        baseline = BatchAnalyzer(tree).run([sweep, check])
        assert baseline.ok

        marker = tmp_path / "killed"
        monkeypatch.setenv(
            "REPRO_CHAOS",
            json.dumps(
                {"kill_queries": ["q1"], "kill_marker": str(marker)}
            ),
        )
        analyzer = BatchAnalyzer(
            tree, workers=2, shard_retries=2, retry_backoff_ms=1.0
        )
        report = analyzer.run([sweep, check])
        monkeypatch.delenv("REPRO_CHAOS")

        assert marker.exists(), "the chaos kill never fired"
        assert report.ok
        assert any(
            row.get("retried")
            for row in report.stats["parallel"]["shards"]
        )
        for expected, actual in zip(baseline.results, report.results):
            assert _strip(expected.to_dict()) == _strip(actual.to_dict())
