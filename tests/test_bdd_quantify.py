"""Quantification tests: paper definition vs one-pass implementation."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, exists, exists_textbook, forall
from repro.bdd.quantify import is_satisfiable, is_tautology

NAMES = ["a", "b", "c", "d"]


def _random_function(manager, seed):
    """A deterministic pseudo-random BDD over NAMES from a seed."""
    import random

    rng = random.Random(seed)
    result = manager.constant(rng.random() < 0.5)
    for _ in range(6):
        name = rng.choice(NAMES)
        literal = manager.var(name) if rng.random() < 0.5 else manager.nvar(name)
        op = rng.choice(["and", "or", "xor"])
        result = manager.apply(op, result, literal)
    return result


class TestExists:
    def test_exists_or_gate(self):
        manager = BDDManager(NAMES)
        f = manager.and_(manager.var("a"), manager.var("b"))
        projected = exists(manager, f, ["a"])
        assert projected is manager.var("b")

    def test_exists_empty_set_is_identity(self):
        manager = BDDManager(NAMES)
        f = manager.var("c")
        assert exists(manager, f, []) is f

    def test_exists_everything_of_satisfiable_is_true(self):
        manager = BDDManager(NAMES)
        f = manager.and_(manager.var("a"), manager.nvar("b"))
        assert exists(manager, f, NAMES) is manager.true

    @given(seed=st.integers(0, 10**6), subset=st.sets(st.sampled_from(NAMES)))
    @settings(max_examples=60, deadline=None)
    def test_matches_textbook_definition(self, seed, subset):
        manager = BDDManager(NAMES)
        f = _random_function(manager, seed)
        assert exists(manager, f, sorted(subset)) is exists_textbook(
            manager, f, sorted(subset)
        )


class TestForall:
    def test_forall_is_dual_of_exists(self):
        manager = BDDManager(NAMES)
        f = manager.or_(manager.var("a"), manager.var("b"))
        assert forall(manager, f, ["a"]) is manager.var("b")

    @given(seed=st.integers(0, 10**6), subset=st.sets(st.sampled_from(NAMES)))
    @settings(max_examples=40, deadline=None)
    def test_forall_semantics(self, seed, subset):
        manager = BDDManager(NAMES)
        f = _random_function(manager, seed)
        names = sorted(subset)
        result = forall(manager, f, names)
        free = [n for n in NAMES if n not in subset]
        for free_bits in itertools.product([False, True], repeat=len(free)):
            env = dict(zip(free, free_bits))
            expected = all(
                manager.evaluate(f, {**env, **dict(zip(names, bound))})
                for bound in itertools.product([False, True], repeat=len(names))
            )
            assert manager.evaluate(result, {**env, **{n: False for n in names}}) is expected


class TestLayer2Helpers:
    def test_is_tautology_and_satisfiable(self):
        manager = BDDManager(["a"])
        a = manager.var("a")
        taut = manager.or_(a, manager.negate(a))
        contra = manager.and_(a, manager.negate(a))
        assert is_tautology(manager, taut)
        assert not is_tautology(manager, a)
        assert is_satisfiable(manager, a)
        assert not is_satisfiable(manager, contra)
