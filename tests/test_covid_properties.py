"""Golden tests: every number, verdict and set list of the paper's
Sec. VII analysis must reproduce exactly."""

import pytest

from repro.casestudy import PROPERTIES, build_covid_tree, build_report, run_all
from repro.casestudy.properties import P1_MCS, P5_MCS, P6_MPS, P7_MPS
from repro.checker import ModelChecker
from repro.logic import MinimalityScope


@pytest.fixture(scope="module")
def outcomes(covid_checker):
    return {outcome.pid: outcome for outcome in run_all(covid_checker)}


class TestAllProperties:
    def test_every_claim_matches_the_paper(self, outcomes):
        mismatches = [
            (pid, record.description, record.expected, record.actual)
            for pid, outcome in outcomes.items()
            for record in outcome.records
            if not record.matches
        ]
        assert mismatches == []

    def test_nine_properties_defined(self):
        assert [spec.pid for spec in PROPERTIES] == [
            f"P{i}" for i in range(1, 10)
        ]


class TestIndividualHighlights:
    def test_p1_single_mcs(self, covid_checker):
        sets = covid_checker.satisfaction_set("MCS(MoT) & IS").failed_sets()
        assert sets == P1_MCS == [frozenset({"H1", "H5", "IS"})]

    def test_p4_twelve_mcss_with_human_errors(self, covid_checker):
        query = " | ".join(f"(MCS(IWoS) & H{i})" for i in range(1, 6))
        assert len(covid_checker.satisfaction_set(query).failed_sets()) == 12

    def test_p5_exact_sets(self, covid_checker):
        sets = covid_checker.satisfaction_set("MCS(IWoS) & H4").failed_sets()
        assert sets == P5_MCS

    def test_p7_exact_twelve_mps(self, covid_checker):
        assert covid_checker.minimal_path_sets() == P7_MPS

    def test_p6_counterexample_mpss(self, covid_checker):
        human = {"H1", "H2", "H3", "H4", "H5"}
        witnesses = [
            ops
            for ops in covid_checker.satisfaction_set(
                "MPS(IWoS)"
            ).operational_sets()
            if ops <= human
        ]
        assert sorted(witnesses, key=lambda s: (len(s), sorted(s))) == P6_MPS

    def test_p6_algorithm4_produces_a_pattern2_witness(self, covid_checker):
        # The paper constructs the Property 6 counterexample with pattern 2:
        # starting from "all human errors operational, everything else
        # failed", Algorithm 4 must return a valid MPS vector.
        tree = covid_checker.tree
        vector = tree.vector_from_operational(["H1", "H2", "H3", "H4", "H5"])
        assert not covid_checker.check("MPS(IWoS)", vector=vector)
        cex = covid_checker.counterexample("MPS(IWoS)", vector=vector)
        assert covid_checker.check("MPS(IWoS)", vector=cex.vector)
        assert cex.def7_compliant

    def test_all_12_mcs_contain_h1_and_vw(self, covid_checker):
        for mcs in covid_checker.minimal_cut_sets():
            assert "H1" in mcs and "VW" in mcs

    def test_p8_explanation(self, covid_checker):
        result = covid_checker.independence("CIO", "CIS")
        assert result.left_influencers == frozenset({"IT", "H1", "H4"})
        assert result.right_influencers == frozenset({"IS", "H1", "H5"})
        assert result.shared == frozenset({"H1"})

    def test_p9_pp_influences_the_top(self, covid_checker):
        assert "PP" in covid_checker.influencing("IWoS")


class TestReport:
    def test_report_matches(self, covid_checker):
        report = build_report(covid_checker)
        assert report.all_match
        assert report.mcs_count == 12
        assert report.mps_count == 12

    def test_render_contains_verdict(self, covid_checker):
        from repro.casestudy import render_report

        text = render_report(build_report(covid_checker))
        assert "ALL MATCH" in text
        assert "P1" in text and "P9" in text
        assert "MISMATCH\n" not in text


class TestScopeRobustness:
    """The Sec. VII results happen to be scope-independent for the TLE
    queries (all basic events influence IWoS): verify FULL scope agrees."""

    @pytest.fixture(scope="class")
    def full_checker(self):
        return ModelChecker(build_covid_tree(), scope=MinimalityScope.FULL)

    def test_p5_under_full_scope(self, full_checker):
        sets = full_checker.satisfaction_set("MCS(IWoS) & H4").failed_sets()
        assert sets == P5_MCS

    def test_p7_under_full_scope(self, full_checker):
        assert full_checker.minimal_path_sets() == P7_MPS
