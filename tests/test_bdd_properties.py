"""Property-based tests of ROBDD invariants (Def. 5 and canonicity)."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, iter_cubes
from repro.bdd.ref import TERMINAL_LEVEL

NAMES = ["v1", "v2", "v3", "v4"]


def _build(manager, ops):
    """Interpret a small op-program into a BDD plus a Python evaluator."""
    import operator as op_mod

    expr = manager.var(NAMES[0])

    def base_eval(env):
        return env[NAMES[0]]

    evaluator = base_eval
    for op, name, negate in ops:
        literal = manager.var(name)
        expr_literal = literal if not negate else manager.negate(literal)

        def lit_eval(env, _name=name, _neg=negate):
            value = env[_name]
            return (not value) if _neg else value

        previous = evaluator
        if op == "and":
            expr = manager.and_(expr, expr_literal)
            evaluator = lambda env, p=previous, l=lit_eval: p(env) and l(env)
        elif op == "or":
            expr = manager.or_(expr, expr_literal)
            evaluator = lambda env, p=previous, l=lit_eval: p(env) or l(env)
        else:
            expr = manager.xor(expr, expr_literal)
            evaluator = lambda env, p=previous, l=lit_eval: p(env) != l(env)
    return expr, evaluator


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["and", "or", "xor"]),
        st.sampled_from(NAMES),
        st.booleans(),
    ),
    max_size=8,
)


@given(ops=ops_strategy)
@settings(max_examples=100, deadline=None)
def test_bdd_agrees_with_direct_evaluation(ops):
    manager = BDDManager(NAMES)
    expr, evaluator = _build(manager, ops)
    for bits in itertools.product([False, True], repeat=len(NAMES)):
        env = dict(zip(NAMES, bits))
        assert manager.evaluate(expr, env) is bool(evaluator(env))


@given(ops=ops_strategy)
@settings(max_examples=100, deadline=None)
def test_robdd_invariants(ops):
    manager = BDDManager(NAMES)
    expr, _ = _build(manager, ops)
    seen = {}
    for node in expr.iter_nodes():
        if node.is_terminal:
            assert node.level == TERMINAL_LEVEL
            continue
        # Reduced: children distinct.
        assert node.low is not node.high
        # Ordered: levels strictly increase towards the leaves.
        assert node.level < node.low.level
        assert node.level < node.high.level
        # Unique: no two nodes with identical (level, low, high).
        key = (node.level, node.low.uid, node.high.uid)
        assert key not in seen
        seen[key] = node
    # The stored form additionally keeps every high edge regular.
    manager.check_invariants()


@given(ops=ops_strategy, seed=st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_canonicity_under_rebuild_order(ops, seed):
    """Building the same function by a shuffled op order (where legal —
    AND/OR/XOR chains commute) yields the identical node."""
    manager = BDDManager(NAMES)
    expr, _ = _build(manager, ops)
    # Rebuild with the commutative tail shuffled.
    rng = random.Random(seed)
    if len({op for op, _, _ in ops}) == 1 and ops:
        shuffled = ops[:]
        rng.shuffle(shuffled)
        expr2, _ = _build(manager, shuffled)
        assert expr is expr2


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_cubes_partition_the_onset(ops):
    """Cubes are disjoint and cover exactly the satisfying assignments."""
    manager = BDDManager(NAMES)
    expr, _ = _build(manager, ops)
    cubes = list(iter_cubes(manager, expr))
    for bits in itertools.product([False, True], repeat=len(NAMES)):
        env = dict(zip(NAMES, bits))
        matching = [
            cube
            for cube in cubes
            if all(env[name] == value for name, value in cube.items())
        ]
        if manager.evaluate(expr, env):
            assert len(matching) == 1
        else:
            assert not matching


@given(ops=ops_strategy, name=st.sampled_from(NAMES))
@settings(max_examples=60, deadline=None)
def test_shannon_expansion(ops, name):
    """f == ite(x, f[x:=1], f[x:=0]) — restrict and ite cohere."""
    manager = BDDManager(NAMES)
    expr, _ = _build(manager, ops)
    rebuilt = manager.ite(
        manager.var(name),
        manager.restrict(expr, name, True),
        manager.restrict(expr, name, False),
    )
    assert rebuilt is expr


@given(ops=ops_strategy)
@settings(max_examples=60, deadline=None)
def test_de_morgan(ops):
    manager = BDDManager(NAMES)
    f, _ = _build(manager, ops)
    g = manager.var(NAMES[1])
    left = manager.negate(manager.and_(f, g))
    right = manager.or_(manager.negate(f), manager.negate(g))
    assert left is right
