"""FaultTree construction, well-formedness (Def. 1), and graph queries."""

import pytest

from repro.errors import (
    StatusVectorError,
    UnknownElementError,
    WellFormednessError,
)
from repro.ft import BasicEvent, FaultTree, FaultTreeBuilder, Gate, GateType


def _gate(name, gate_type, children, threshold=None):
    return Gate(name, gate_type, tuple(children), threshold=threshold)


class TestWellFormedness:
    def test_duplicate_basic_event_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a"), BasicEvent("a")],
                [_gate("top", GateType.OR, ["a"])],
                "top",
            )

    def test_duplicate_gate_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [
                    _gate("top", GateType.OR, ["a"]),
                    _gate("top", GateType.AND, ["a"]),
                ],
                "top",
            )

    def test_be_and_ie_must_be_disjoint(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [
                    _gate("a", GateType.OR, ["a"]),
                ],
                "a",
            )

    def test_top_must_be_a_gate(self):
        with pytest.raises(WellFormednessError):
            FaultTree([BasicEvent("a")], [_gate("g", GateType.OR, ["a"])], "a")

    def test_unknown_child_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [_gate("top", GateType.OR, ["a", "ghost"])],
                "top",
            )

    def test_cycle_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [
                    _gate("top", GateType.OR, ["g1", "a"]),
                    _gate("g1", GateType.OR, ["g2"]),
                    _gate("g2", GateType.OR, ["g1"]),
                ],
                "top",
            )

    def test_self_loop_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [_gate("top", GateType.OR, ["top", "a"])],
                "top",
            )

    def test_orphan_element_rejected(self):
        # Def. 1: the top must be reachable *from* every element.
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a"), BasicEvent("b")],
                [
                    _gate("top", GateType.OR, ["a"]),
                    _gate("island", GateType.OR, ["b"]),
                ],
                "top",
            )

    def test_top_with_a_parent_rejected(self):
        with pytest.raises(WellFormednessError):
            FaultTree(
                [BasicEvent("a")],
                [
                    _gate("top", GateType.OR, ["g", "a"]),
                    _gate("g", GateType.OR, ["top"]),
                ],
                "top",
            )

    def test_shared_subtree_is_legal(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .and_gate("g", "a", "b")
            .or_gate("top", "g", "a")
            .build("top")
        )
        assert tree.shared_elements() >= {"a"}


class TestAccessors:
    @pytest.fixture()
    def tree(self):
        return (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .and_gate("g1", "a", "b")
            .vot_gate("top", 1, "g1", "c")
            .build("top")
        )

    def test_membership_and_len(self, tree):
        assert "a" in tree and "g1" in tree and "zz" not in tree
        assert len(tree) == 5

    def test_elements_lists_bes_first(self, tree):
        assert tree.elements[:3] == ("a", "b", "c")
        assert set(tree.gate_names) == {"g1", "top"}

    def test_children_and_parents(self, tree):
        assert tree.children("g1") == ("a", "b")
        assert tree.children("a") == ()
        assert tree.parents("a") == ("g1",)
        assert tree.parents("top") == ()

    def test_unknown_element_raises(self, tree):
        with pytest.raises(UnknownElementError):
            tree.children("zz")
        with pytest.raises(UnknownElementError):
            tree.gate("a")
        with pytest.raises(UnknownElementError):
            tree.basic_event("g1")

    def test_descendants(self, tree):
        assert tree.descendants("top") == frozenset({"g1", "a", "b", "c"})
        assert tree.basic_descendants("g1") == frozenset({"a", "b"})
        assert tree.basic_descendants("a") == frozenset({"a"})

    def test_depth(self, tree):
        assert tree.depth("top") == 0
        assert tree.depth("g1") == 1
        assert tree.depth("a") == 2
        assert tree.depth("c") == 1

    def test_stats(self, tree):
        stats = tree.stats()
        assert stats["basic_events"] == 3
        assert stats["gates"] == 2
        assert stats["vot_gates"] == 1


class TestStatusVectors:
    @pytest.fixture()
    def tree(self):
        return (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("top", "a", "b")
            .build("top")
        )

    def test_vector_from_failed(self, tree):
        assert tree.vector_from_failed(["a"]) == {"a": True, "b": False}

    def test_vector_from_operational(self, tree):
        assert tree.vector_from_operational(["a"]) == {"a": False, "b": True}

    def test_vector_from_bits_matches_declaration_order(self, tree):
        assert tree.vector_from_bits([0, 1]) == {"a": False, "b": True}

    def test_bits_length_checked(self, tree):
        with pytest.raises(StatusVectorError):
            tree.vector_from_bits([0])

    def test_unknown_event_in_failed_rejected(self, tree):
        with pytest.raises(StatusVectorError):
            tree.vector_from_failed(["zz"])

    def test_failed_and_operational_sets(self, tree):
        vector = {"a": True, "b": False}
        assert tree.failed_set(vector) == frozenset({"a"})
        assert tree.operational_set(vector) == frozenset({"b"})

    def test_missing_key_rejected_extra_tolerated(self, tree):
        with pytest.raises(StatusVectorError):
            tree.check_vector({"a": True})
        tree.check_vector({"a": True, "b": False, "extra": True})
