"""Algorithm 1: formula -> BDD translation, caching, scopes, fast paths."""

import pytest

from repro.errors import LogicError
from repro.ft import figure1_tree, figure3_or_tree
from repro.logic import (
    MCS,
    MPS,
    Atom,
    Constant,
    MinimalityScope,
    Not,
    Vot,
    desugar,
    parse_formula,
)
from repro.checker import FormulaTranslator


@pytest.fixture()
def fig1_translator():
    return FormulaTranslator(figure1_tree())


class TestBasicTranslation:
    def test_atom_is_psi_ft(self, fig1_translator):
        manager = fig1_translator.manager
        cp = fig1_translator.bdd(Atom("CP"))
        expected = manager.and_(manager.var("IW"), manager.var("H3"))
        assert cp is expected

    def test_constants(self, fig1_translator):
        assert fig1_translator.bdd(Constant(True)) is fig1_translator.manager.true
        assert fig1_translator.bdd(Constant(False)) is fig1_translator.manager.false

    def test_not_and(self, fig1_translator):
        manager = fig1_translator.manager
        formula = parse_formula("!(IW & H3)")
        expected = manager.negate(
            manager.and_(manager.var("IW"), manager.var("H3"))
        )
        assert fig1_translator.bdd(formula) is expected

    def test_unknown_element_rejected(self, fig1_translator):
        with pytest.raises(LogicError):
            fig1_translator.bdd(Atom("ghost"))

    def test_evidence_is_restrict(self, fig1_translator):
        manager = fig1_translator.manager
        formula = parse_formula("CP[IW := 1]")
        assert fig1_translator.bdd(formula) is manager.var("H3")

    def test_evidence_on_gate_rejected(self, fig1_translator):
        with pytest.raises(LogicError):
            fig1_translator.bdd(parse_formula("CP/R[CP := 1]"))

    @pytest.mark.parametrize(
        "text",
        [
            "IW | H3",
            "IW => H3",
            "IW <=> H3",
            "IW <!> H3",
            "VOT(>= 2; IW, H3, IT)",
            "VOT(= 1; IW, H3)",
            "VOT(< 2; IW, H3, IT)",
            "VOT(<= 1; IW, H3)",
            "VOT(> 0; IW, H3)",
        ],
    )
    def test_sugared_operators_equal_desugared_translation(
        self, fig1_translator, text
    ):
        formula = parse_formula(text)
        direct = fig1_translator.bdd(formula)
        via_core = fig1_translator.bdd(desugar(formula))
        assert direct is via_core  # canonicity makes this an identity check


class TestMCSTranslation:
    def test_or_gate_mcs_bdd(self):
        translator = FormulaTranslator(figure3_or_tree())
        manager = translator.manager
        node = translator.bdd(MCS(Atom("Top")))
        # Exactly the two singleton cut vectors (0,1) and (1,0).
        e1, e2 = manager.var("e1"), manager.var("e2")
        expected = manager.xor(e1, e2)
        assert node is expected

    def test_monotone_fast_path_is_equivalent(self):
        plain = FormulaTranslator(figure1_tree())
        fast = FormulaTranslator(figure1_tree(), monotone_fast_path=True)
        for text in ["MCS(CP/R)", "MPS(CP/R)", "MCS(CP)", "MPS(CR)"]:
            formula = parse_formula(text)
            a = plain.bdd(formula)
            b = fast.bdd(formula)
            # Different managers: compare by satisfying cubes.
            from repro.bdd import iter_cubes

            cubes_a = {
                tuple(sorted(c.items())) for c in iter_cubes(plain.manager, a)
            }
            cubes_b = {
                tuple(sorted(c.items())) for c in iter_cubes(fast.manager, b)
            }
            assert cubes_a == cubes_b

    def test_scope_support_leaves_irrelevant_events_free(self):
        translator = FormulaTranslator(
            figure1_tree(), scope=MinimalityScope.SUPPORT
        )
        node = translator.bdd(MCS(Atom("CP")))
        # IT/H2 do not influence CP, so they stay out of the BDD.
        assert translator.manager.support(node) == {"IW", "H3"}

    def test_scope_full_pins_irrelevant_events_to_zero(self):
        translator = FormulaTranslator(
            figure1_tree(), scope=MinimalityScope.FULL
        )
        node = translator.bdd(MCS(Atom("CP")))
        assert translator.manager.support(node) == {"IW", "H3", "IT", "H2"}
        vector = {"IW": True, "H3": True, "IT": True, "H2": False}
        assert not translator.manager.evaluate(node, vector)

    def test_mps_is_maximal_vectors_of_negation(self, fig1_translator):
        node = fig1_translator.bdd(MPS(Atom("CP/R")))
        manager = fig1_translator.manager
        from repro.bdd import all_models

        models = all_models(
            manager, node, list(figure1_tree().basic_events)
        )
        operational = {
            frozenset(n for n, v in m.items() if not v) for m in models
        }
        assert operational == {
            frozenset({"IW", "IT"}),
            frozenset({"IW", "H2"}),
            frozenset({"H3", "IT"}),
            frozenset({"H3", "H2"}),
        }


class TestCaching:
    def test_formula_cache_hits(self, fig1_translator):
        formula = parse_formula("MCS(CP/R) & IW")
        fig1_translator.bdd(formula)
        misses_after_first = fig1_translator.stats.formula_misses
        fig1_translator.bdd(formula)
        assert fig1_translator.stats.formula_misses == misses_after_first
        assert fig1_translator.stats.formula_hits >= 1

    def test_shared_subformulae_translated_once(self, fig1_translator):
        fig1_translator.bdd(parse_formula("CP & CP"))
        # 'CP' is one cache entry, hit on the second conjunct.
        assert fig1_translator.stats.formula_hits >= 1

    def test_support_helper(self, fig1_translator):
        assert fig1_translator.support(Atom("CP")) == {"IW", "H3"}
