"""The structure function Phi_T (paper Def. 2), including VOT semantics."""

import itertools

import pytest

from repro.errors import UnknownElementError
from repro.ft import (
    FaultTreeBuilder,
    evaluate_all,
    example_vot_tree,
    figure1_tree,
    structure_function,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def tree(self):
        return figure1_tree()

    def test_or_of_ands(self, tree):
        # CP/R fails iff (IW and H3) or (IT and H2) — Def. 2 on Fig. 1.
        for bits in itertools.product([False, True], repeat=4):
            vector = dict(zip(("IW", "H3", "IT", "H2"), bits))
            expected = (vector["IW"] and vector["H3"]) or (
                vector["IT"] and vector["H2"]
            )
            assert structure_function(tree, vector) is expected

    def test_intermediate_elements(self, tree):
        vector = tree.vector_from_failed(["IW", "H3"])
        assert structure_function(tree, vector, "CP") is True
        assert structure_function(tree, vector, "CR") is False

    def test_basic_event_status_is_its_bit(self, tree):
        vector = tree.vector_from_failed(["IT"])
        assert structure_function(tree, vector, "IT") is True
        assert structure_function(tree, vector, "IW") is False

    def test_unknown_element_rejected(self, tree):
        with pytest.raises(UnknownElementError):
            structure_function(tree, tree.vector_from_failed([]), "nope")


class TestVot:
    def test_vot_2_of_3(self):
        tree = example_vot_tree()
        for bits in itertools.product([False, True], repeat=3):
            vector = dict(zip(("a", "b", "c"), bits))
            assert structure_function(tree, vector) is (sum(bits) >= 2)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_vot_k_of_4(self, k):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c", "d")
            .vot_gate("top", k, "a", "b", "c", "d")
            .build("top")
        )
        for bits in itertools.product([False, True], repeat=4):
            vector = dict(zip(("a", "b", "c", "d"), bits))
            assert structure_function(tree, vector) is (sum(bits) >= k)

    def test_vot_1_behaves_like_or_and_vot_n_like_and(self):
        names = ("a", "b", "c")
        vot1 = (
            FaultTreeBuilder()
            .basic_events(*names)
            .vot_gate("top", 1, *names)
            .build("top")
        )
        votn = (
            FaultTreeBuilder()
            .basic_events(*names)
            .vot_gate("top", 3, *names)
            .build("top")
        )
        for bits in itertools.product([False, True], repeat=3):
            vector = dict(zip(names, bits))
            assert structure_function(vot1, vector) is any(bits)
            assert structure_function(votn, vector) is all(bits)


class TestEvaluateAll:
    def test_returns_every_element(self):
        tree = figure1_tree()
        statuses = evaluate_all(tree, tree.vector_from_failed(["IT", "H2"]))
        assert set(statuses) == set(tree.elements)
        assert statuses["CR"] is True
        assert statuses["CP"] is False
        assert statuses["CP/R"] is True

    def test_shared_subtrees_evaluated_once_consistently(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("x", "y")
            .and_gate("shared", "x", "y")
            .or_gate("left", "shared", "x")
            .and_gate("top", "left", "shared")
            .build("top")
        )
        statuses = evaluate_all(tree, {"x": True, "y": True})
        assert statuses["shared"] is True
        assert statuses["top"] is True

    def test_deep_chain_does_not_hit_recursion_limit(self):
        builder = FaultTreeBuilder().basic_events("leaf")
        previous = "leaf"
        for i in range(3000):
            builder.or_gate(f"g{i}", previous)
            previous = f"g{i}"
        tree = builder.build(previous)
        statuses = evaluate_all(tree, {"leaf": True})
        assert statuses[previous] is True
