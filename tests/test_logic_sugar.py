"""The paper's syntactic-sugar table: desugaring preserves semantics."""

import itertools

import pytest
from hypothesis import given, settings

from repro.ft import figure1_tree
from repro.logic import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    ReferenceSemantics,
    Vot,
    desugar,
    desugar_statement,
    expand_vot,
    mps_literal_rewrite,
)

from bfl_strategies import formulas_for, vectors_for


@pytest.fixture(scope="module")
def fig1():
    return figure1_tree()


@pytest.fixture(scope="module")
def semantics(fig1):
    return ReferenceSemantics(fig1)


class TestCoreRewrites:
    def test_or_rewrite(self):
        a, b = Atom("A"), Atom("B")
        assert desugar(Or(a, b)) == Not(And(Not(a), Not(b)))

    def test_implies_rewrite(self):
        a, b = Atom("A"), Atom("B")
        assert desugar(Implies(a, b)) == Not(And(a, Not(b)))

    def test_equiv_rewrite_uses_implications(self):
        a, b = Atom("A"), Atom("B")
        result = desugar(Equiv(a, b))
        assert result == And(
            Not(And(a, Not(b))), Not(And(b, Not(a)))
        )

    def test_nequiv_is_negated_equiv(self):
        a, b = Atom("A"), Atom("B")
        assert desugar(NotEquiv(a, b)) == Not(desugar(Equiv(a, b)))

    def test_core_nodes_untouched(self):
        formula = MCS(And(Atom("A"), Not(Atom("B"))))
        assert desugar(formula) == formula

    def test_evidence_recurses(self):
        formula = Evidence(Or(Atom("A"), Atom("B")), (("A", True),))
        result = desugar(formula)
        assert isinstance(result, Evidence)
        assert isinstance(result.operand, Not)

    def test_desugared_output_is_core_only(self, fig1):
        formula = Vot(">=", 1, (Or(Atom("IW"), Atom("H3")), Atom("IT")))
        core = desugar(formula)
        for node in core.walk():
            assert not isinstance(node, (Or, Implies, Equiv, NotEquiv, Vot))


class TestSemanticPreservation:
    @given(formula=formulas_for(figure1_tree(), allow_minimal_ops=True))
    @settings(max_examples=60, deadline=None)
    def test_desugar_preserves_satisfaction(self, formula):
        tree = figure1_tree()
        semantics = ReferenceSemantics(tree)
        core = desugar(formula)
        for bits in itertools.product([False, True], repeat=4):
            vector = dict(zip(tree.basic_events, bits))
            assert semantics.holds(formula, vector) == semantics.holds(
                core, vector
            )


class TestVotExpansion:
    @pytest.mark.parametrize("op", ["<", "<=", "=", ">=", ">"])
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_expansion_counts_correctly(self, fig1, semantics, op, k):
        operands = tuple(Atom(n) for n in ("IW", "H3", "IT"))
        vot = Vot(op, k, operands)
        expanded = expand_vot(vot)
        for bits in itertools.product([False, True], repeat=4):
            vector = dict(zip(fig1.basic_events, bits))
            assert semantics.holds(vot, vector) == semantics.holds(
                expanded, vector
            )

    def test_unsatisfiable_comparison_is_false(self):
        vot = Vot("<", 0, (Atom("A"),))
        assert expand_vot(vot) == Constant(False)


class TestStatements:
    def test_sup_desugars_to_idp_with_top(self, fig1):
        statement = desugar_statement(SUP("IW"), fig1.top)
        assert statement == IDP(Atom("IW"), Atom("CP/R"))

    def test_exists_forall_recurse(self, fig1):
        statement = desugar_statement(Forall(Or(Atom("A"), Atom("B"))), fig1.top)
        assert isinstance(statement, Forall)
        assert isinstance(statement.operand, Not)
        statement = desugar_statement(Exists(Implies(Atom("A"), Atom("B"))), fig1.top)
        assert isinstance(statement, Exists)

    def test_idp_recurse(self, fig1):
        statement = desugar_statement(
            IDP(Or(Atom("A"), Atom("B")), Atom("C")), fig1.top
        )
        assert isinstance(statement, IDP)
        assert isinstance(statement.left, Not)


class TestMPSLiteralReading:
    """DESIGN.md deviation 1: the literal sugar contradicts the paper."""

    def test_rewrite_shape(self):
        formula = mps_literal_rewrite(MPS(Atom("CP/R")))
        assert formula == MCS(Not(Atom("CP/R")))

    def test_literal_reading_collapses_to_all_operational(self, fig1):
        semantics = ReferenceSemantics(fig1)
        literal = mps_literal_rewrite(MPS(Atom("CP/R")))
        satisfying = semantics.satisfying_vectors(literal)
        # Under the literal reading the ONLY "MPS vector" is all-zero ...
        assert satisfying == [
            {name: False for name in fig1.basic_events}
        ]
        # ... whereas the intended semantics yields the paper's four MPSs.
        intended = semantics.satisfying_vectors(MPS(Atom("CP/R")))
        operational = {
            frozenset(n for n, v in vector.items() if not v)
            for vector in intended
        }
        assert operational == {
            frozenset({"IW", "IT"}),
            frozenset({"IW", "H2"}),
            frozenset({"H3", "IT"}),
            frozenset({"H3", "H2"}),
        }
