"""Variable-ordering heuristics, manager transfer and sifting search."""

import pytest

from repro.bdd import (
    BDDManager,
    HEURISTICS,
    bfs_order,
    dfs_order,
    random_order,
    sift,
    transfer,
    weight_order,
)
from repro.ft import figure1_tree, tree_to_bdd
from repro.casestudy import build_covid_tree


@pytest.fixture(scope="module")
def covid():
    return build_covid_tree()


class TestHeuristics:
    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_heuristics_produce_permutations(self, covid, name):
        order = HEURISTICS[name](covid, covid.basic_events)
        assert sorted(order) == sorted(covid.basic_events)

    def test_dfs_order_follows_first_occurrence(self):
        tree = figure1_tree()
        assert dfs_order(tree, tree.basic_events) == ["IW", "H3", "IT", "H2"]

    def test_bfs_order_is_levelwise(self):
        tree = figure1_tree()
        # Both AND gates sit at depth 1; their leaves are interleaved
        # left-to-right at depth 2.
        assert bfs_order(tree, tree.basic_events) == ["IW", "H3", "IT", "H2"]

    def test_weight_order_puts_shallow_repeated_events_first(self, covid):
        order = weight_order(covid, covid.basic_events)
        # H1 occurs four times (CIW, MH1, MH2, SH), twice at depth 2.
        assert order.index("H1") < order.index("H5")
        assert order.index("IW") < order.index("AB")

    def test_random_order_is_seeded(self, covid):
        first = random_order(covid, covid.basic_events, seed=7)
        second = random_order(covid, covid.basic_events, seed=7)
        third = random_order(covid, covid.basic_events, seed=8)
        assert first == second
        assert first != third


class TestTransfer:
    def test_transfer_preserves_the_function(self, covid):
        source = BDDManager(covid.basic_events)
        root = tree_to_bdd(covid, source)
        reversed_order = list(reversed(covid.basic_events))
        target = BDDManager(reversed_order)
        moved = transfer(source, root, target)
        rebuilt = tree_to_bdd(covid, target)
        assert moved is rebuilt  # canonicity in the target manager

    def test_transfer_terminals(self):
        source = BDDManager(["a"])
        target = BDDManager(["a"])
        assert transfer(source, source.true, target) is target.true
        assert transfer(source, source.false, target) is target.false


class TestSift:
    def test_sift_never_worsens(self):
        tree = figure1_tree()

        def builder(order):
            manager = BDDManager(order)
            return manager, tree_to_bdd(tree, manager)

        bad_order = ["IW", "IT", "H3", "H2"]
        _, root = builder(bad_order)
        initial = root.count_nodes()
        best_order, best_size = sift(builder, bad_order, max_rounds=1)
        assert best_size <= initial
        assert sorted(best_order) == sorted(bad_order)

    def test_sift_finds_the_paired_order(self):
        # For AND(a1,b1) OR AND(a2,b2) ... the interleaved order is
        # exponentially better than the grouped one; one sifting round
        # should recover (a chunk of) the improvement.
        from repro.ft import FaultTreeBuilder

        builder_ft = FaultTreeBuilder().basic_events(
            "a1", "a2", "a3", "b1", "b2", "b3"
        )
        for i in (1, 2, 3):
            builder_ft.and_gate(f"g{i}", f"a{i}", f"b{i}")
        tree = builder_ft.or_gate("top", "g1", "g2", "g3").build("top")

        def builder(order):
            manager = BDDManager(order)
            return manager, tree_to_bdd(tree, manager)

        grouped = ["a1", "a2", "a3", "b1", "b2", "b3"]
        _, root = builder(grouped)
        grouped_size = root.count_nodes()
        _, sifted_size = sift(builder, grouped, max_rounds=2)
        assert sifted_size < grouped_size
