"""The ModelChecker facade: input handling, layer dispatch, results."""

import pytest

from repro.errors import LogicError, StatusVectorError
from repro.ft import figure1_tree
from repro.logic import MCS, Atom, Exists, Forall, MinimalityScope, parse
from repro.checker import ModelChecker


@pytest.fixture()
def checker():
    return ModelChecker(figure1_tree())


class TestInputNormalisation:
    def test_accepts_text_and_ast(self, checker):
        assert checker.check("exists (CP & CR)") is True
        assert checker.check(Exists(parse("CP & CR"))) is True

    def test_vector_forms_are_interchangeable(self, checker):
        formula = "MCS(CP/R)"
        by_failed = checker.check(formula, failed=["IW", "H3"])
        by_bits = checker.check(formula, bits=[1, 1, 0, 0])
        by_vector = checker.check(
            formula, vector={"IW": True, "H3": True, "IT": False, "H2": False}
        )
        assert by_failed is by_bits is by_vector is True

    def test_exactly_one_vector_form_required(self, checker):
        with pytest.raises(StatusVectorError):
            checker.check("CP", failed=["IW"], bits=[1, 0, 0, 0])
        with pytest.raises(StatusVectorError):
            checker.check("CP")  # layer-1 without a vector

    def test_layer2_rejects_vectors(self, checker):
        with pytest.raises(LogicError):
            checker.check("forall (CP => CP/R)", failed=["IW"])

    def test_satisfaction_set_rejects_queries(self, checker):
        with pytest.raises(LogicError):
            checker.satisfaction_set("forall CP")


class TestLayer2:
    def test_forall_and_exists(self, checker):
        assert checker.check("forall (CP => CP/R)")
        assert not checker.check("forall CP/R")
        assert checker.check("exists (CP & CR)")
        assert not checker.check("exists (CP & !CP)")

    def test_idp_and_sup(self, checker):
        assert checker.check("IDP(CP, CR)")
        assert not checker.check("IDP(CP, CP/R)")
        assert not checker.check("SUP(IW)")


class TestSatisfactionSets:
    def test_mcs_of_top(self, checker):
        result = checker.satisfaction_set("MCS(CP/R)")
        assert len(result) == 2
        assert result.failed_sets() == [
            frozenset({"H2", "IT"}),
            frozenset({"H3", "IW"}),
        ]

    def test_describe_views(self, checker):
        result = checker.satisfaction_set("MCS(CP/R)")
        assert "{H2, IT}" in result.describe()
        assert "2 result(s)" in result.describe()
        assert "IW=" in result.describe(view="vectors")
        empty = checker.satisfaction_set("CP & !CP")
        assert "empty" in empty.describe()
        assert not empty

    def test_minimal_sets_shortcuts(self, checker):
        assert checker.minimal_cut_sets() == checker.satisfaction_set(
            MCS(Atom("CP/R"))
        ).failed_sets()
        assert checker.minimal_path_sets("CP") == [
            frozenset({"H3"}),
            frozenset({"IW"}),
        ]

    def test_iteration_and_bool(self, checker):
        result = checker.satisfaction_set("MCS(CP)")
        assert bool(result)
        assert all(isinstance(v, dict) for v in result)


class TestIndependenceResults:
    def test_describe_explains_dependence(self, checker):
        result = checker.independence("CP", "CP/R")
        assert not result
        assert "H3" in result.describe() and "IW" in result.describe()

    def test_describe_independent(self, checker):
        result = checker.independence("CP", "CR")
        assert result
        assert "independent" in result.describe()

    def test_influencing(self, checker):
        assert checker.influencing("CP & IT") == {"IW", "H3", "IT"}

    def test_superfluous(self, checker):
        assert not checker.superfluous("H2")


class TestCounterexampleMethods:
    def test_algorithm4_and_closest_agree_on_satisfaction(self, checker):
        for method in ("algorithm4", "closest"):
            cex = checker.counterexample(
                "MCS(CP/R)", failed=["IW", "H3", "IT"], method=method
            )
            assert checker.check("MCS(CP/R)", vector=cex.vector)

    def test_unknown_method_rejected(self, checker):
        with pytest.raises(ValueError):
            checker.counterexample("MCS(CP/R)", failed=[], method="magic")


class TestConfiguration:
    def test_scope_changes_results(self):
        support = ModelChecker(figure1_tree(), scope=MinimalityScope.SUPPORT)
        full = ModelChecker(figure1_tree(), scope=MinimalityScope.FULL)
        # MCS(CP) with IT failed: satisfying under SUPPORT (IT is a
        # don't-care), not under FULL (IT must be 0).
        vector = {"IW": True, "H3": True, "IT": True, "H2": False}
        assert support.check("MCS(CP)", vector=vector)
        assert not full.check("MCS(CP)", vector=vector)

    def test_custom_order(self):
        checker = ModelChecker(
            figure1_tree(), order=["H2", "IT", "H3", "IW"]
        )
        assert len(checker.minimal_cut_sets()) == 2

    def test_cache_stats_exposed(self, checker):
        checker.check("forall (CP => CP/R)")
        stats = checker.cache_stats()
        assert stats["formula_misses"] > 0
        assert stats["bdd_nodes"] > 2
