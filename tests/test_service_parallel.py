"""Sharded multi-process batch execution and portable kernel snapshots.

Covers the PR-5 surface end to end:

* ``BDDManager.save_snapshot``/``load_snapshot`` — round-trip unit
  tests plus a hypothesis property cross-validating reloaded managers
  against :class:`~repro.logic.semantics.ReferenceSemantics`, including
  complemented roots, post-GC free-list holes and post-sift variable
  orders;
* the shard planner — determinism, balance, coverage, scenario
  locality and single-scenario splitting;
* ``BatchAnalyzer(workers=N)`` — parallel reports byte-identical to
  sequential ones modulo timing/stats, per-query errors (including
  ``ZeroProbabilityEvidenceError``) reported in place, merged stats;
* snapshot warm starts (``snapshots=``, fingerprint guard, the
  ``bfl batch --workers/--snapshot`` CLI).
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from bfl_strategies import small_trees
from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.cli import main as cli_main
from repro.errors import SnapshotError
from repro.ft import TreeTranslator, dual_tree, figure1_tree, tree_to_bdd
from repro.logic import ReferenceSemantics
from repro.logic.ast_nodes import Atom
from repro.service import (
    BatchAnalyzer,
    QuerySpec,
    estimate_cost,
    plan_shards,
    read_snapshot_file,
    specs_from_any,
    tree_fingerprint,
    write_snapshot_file,
)


def _stripped(report):
    """Result dicts minus timing — the determinism view."""
    rows = []
    for result in report.results:
        data = result.to_dict()
        data.pop("elapsed_ms", None)
        rows.append(data)
    return rows


# ----------------------------------------------------------------------
# Kernel snapshots: unit tests
# ----------------------------------------------------------------------


class TestKernelSnapshot:
    def test_round_trip_preserves_functions_and_invariants(self):
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        translator = TreeTranslator(tree, manager)
        top = translator.element(tree.top)
        snapshot = manager.save_snapshot(roots={"top": top, "neg": ~top})
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert list(reloaded.variables) == list(manager.variables)
        assert roots["neg"].complemented != roots["top"].complemented
        names = list(tree.basic_events)
        for bits in itertools.islice(
            itertools.product((False, True), repeat=len(names)), 512
        ):
            vector = dict(zip(names, bits))
            assert reloaded.evaluate(roots["top"], vector) == manager.evaluate(
                top, vector
            )
            assert reloaded.evaluate(roots["neg"], vector) != (
                reloaded.evaluate(roots["top"], vector)
            )

    def test_snapshot_is_json_serialisable(self):
        manager = BDDManager(["a", "b", "c"])
        f = manager.or_(
            manager.and_(manager.var("a"), manager.var("b")),
            manager.nvar("c"),
        )
        snapshot = json.loads(json.dumps(manager.save_snapshot({"f": f})))
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert reloaded.evaluate(
            roots["f"], {"a": True, "b": True, "c": True}
        )

    def test_rooted_snapshot_drops_garbage(self):
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        # Build (and keep) unrelated functions; a rooted snapshot must
        # not ship them.
        junk = [
            manager.restrict(root, name, True)
            for name in tree.basic_events
        ]
        snapshot = manager.save_snapshot(roots={"top": root})
        reloaded, _ = BDDManager.load_snapshot(snapshot)
        assert reloaded.node_count() < manager.node_count()
        assert junk  # keep the refs alive to the end

    def test_unrooted_snapshot_keeps_live_store(self):
        manager = BDDManager(["a", "b"])
        f = manager.and_(manager.var("a"), manager.var("b"))
        snapshot = manager.save_snapshot()
        assert snapshot["roots"] == {}
        reloaded, _ = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert reloaded.node_count() == manager.node_count()
        assert f is not None

    def test_post_gc_holes_compact_away(self):
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        junk = manager.restrict(root, "IW", True)
        del junk
        manager.collect()
        assert manager._free, "test needs real free-list holes"
        snapshot = manager.save_snapshot(roots={"top": root})
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert not reloaded._free
        # Post-collect the source holds exactly the root-reachable store.
        assert reloaded.node_count() == manager.node_count()
        vector = {name: True for name in tree.basic_events}
        assert reloaded.evaluate(roots["top"], vector) == manager.evaluate(
            root, vector
        )

    def test_post_sift_order_survives(self):
        tree = build_covid_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        manager.sift_inplace(max_rounds=1)
        assert list(manager.variables) != list(tree.basic_events)
        snapshot = manager.save_snapshot(roots={"top": root})
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert list(reloaded.variables) == list(manager.variables)
        assert reloaded.node_count() <= manager.node_count()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.update(format="not-a-snapshot"),
            lambda s: s.update(version=99),
            lambda s: s.update(levels=s["levels"][:-1]),
            lambda s: s["highs"].__setitem__(0, s["highs"][0] | 1),
            lambda s: s.update(variables=["a", "a"]),
            lambda s: s["roots"].update(bad=10**6),
            lambda s: s.update(levels=[99] * len(s["levels"])),
            lambda s: s["lows"].__setitem__(
                len(s["lows"]) - 1, (len(s["lows"]) + 5) << 1
            ),
            lambda s: s.update(levels=[True] * len(s["levels"])),
        ],
    )
    def test_corrupt_snapshots_are_rejected(self, mutate):
        manager = BDDManager(["a", "b", "c"])
        f = manager.or_(
            manager.and_(manager.var("a"), manager.var("b")),
            manager.var("c"),
        )
        snapshot = manager.save_snapshot({"f": f})
        mutate(snapshot)
        with pytest.raises((SnapshotError, Exception)) as excinfo:
            BDDManager.load_snapshot(snapshot)
        # Duplicate variables surface as VariableError; everything else
        # must be a SnapshotError, never a silent bad manager.
        assert excinfo.type.__module__.startswith("repro") or isinstance(
            excinfo.value, SnapshotError
        )

    def test_adopt_rejects_foreign_elements(self):
        covid = build_covid_tree()
        fig1 = figure1_tree()
        manager = BDDManager(covid.basic_events)
        translator = TreeTranslator(covid, manager)
        translator.element(covid.top)
        snapshot = manager.save_snapshot(roots=translator.export_cache())
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        other = TreeTranslator(fig1, BDDManager(fig1.basic_events))
        with pytest.raises(SnapshotError):
            other.adopt(roots)


# ----------------------------------------------------------------------
# Kernel snapshots: hypothesis property
# ----------------------------------------------------------------------


class TestSnapshotProperty:
    @given(
        data=st.data(),
        tree=small_trees(max_basic_events=5),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )
    def test_round_trip_matches_reference_semantics(self, data, tree):
        """load_snapshot(save_snapshot(m)) preserves semantics vs the
        enumerative reference, across GC holes, sifted orders and
        complemented roots."""
        manager = BDDManager(tree.basic_events)
        translator = TreeTranslator(tree, manager)
        top = translator.element(tree.top)
        neg = ~top
        names = list(tree.basic_events)
        # Optionally create garbage + free-list holes.
        if data.draw(st.booleans(), label="make_holes"):
            junk = manager.restrict(top, names[0], True)
            del junk
            manager.collect()
        # Optionally sift to a non-declaration order.
        if data.draw(st.booleans(), label="sift"):
            manager.sift_inplace(max_rounds=1)
        snapshot = manager.save_snapshot(
            roots={**translator.export_cache(), "!top": neg}
        )
        snapshot = json.loads(json.dumps(snapshot))  # full JSON trip
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        semantics = ReferenceSemantics(tree)
        top_formula = Atom(tree.top)
        for vector in semantics.iter_vectors():
            expected = semantics.holds(top_formula, vector)
            assert reloaded.evaluate(roots[tree.top], vector) == expected
            assert reloaded.evaluate(roots["!top"], vector) == (not expected)
            # Every adopted element must agree with the reference too.
            statuses = semantics._statuses(vector)
            for name, ref in roots.items():
                if name == "!top":
                    continue
                assert reloaded.evaluate(ref, vector) == statuses[name]


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


def _mini_trees():
    covid = build_covid_tree()
    return {
        "covid": covid,
        "dual": dual_tree(covid),
        "fig1": figure1_tree(),
    }


def _mini_battery():
    return specs_from_any(
        [
            {"id": "a", "formula": "forall (IS => MoT)", "tree": "covid"},
            {"id": "b", "kind": "mcs", "tree": "covid"},
            {"id": "c", "formula": "exists (MCS(IWoS) & H1)", "tree": "covid"},
            {"id": "d", "kind": "mps", "tree": "dual"},
            {"id": "e", "formula": "exists MCS(CP/R)", "tree": "covid"},
            {"id": "f", "kind": "mcs", "tree": "fig1"},
            {"id": "g", "formula": "P(MoT | H1) >= 0.0", "tree": "covid"},
            {"id": "h", "formula": "[[ MCS(MoT) & IS ]]", "tree": "covid"},
        ]
    )


class TestShardPlanner:
    def test_plan_covers_every_query_exactly_once(self):
        specs = _mini_battery()
        shards = plan_shards(specs, _mini_trees(), 3)
        indices = sorted(i for shard in shards for i in shard.indices)
        assert indices == list(range(len(specs)))
        for shard in shards:
            assert list(shard.indices) == sorted(shard.indices)
            assert len(shard.specs) == len(shard.indices)

    def test_plan_is_deterministic(self):
        specs = _mini_battery()
        trees = _mini_trees()
        assert plan_shards(specs, trees, 3) == plan_shards(specs, trees, 3)

    def test_plan_balances_costs(self):
        trees = {"covid": build_covid_tree()}
        specs = specs_from_any(
            [
                {"id": f"q{i}", "formula": "exists (MCS(MoT) & H1)"}
                for i in range(40)
            ]
        )
        shards = plan_shards(specs, trees, 4)
        assert len(shards) == 4
        costs = [shard.cost for shard in shards]
        assert max(costs) <= 2 * min(costs)

    def test_single_scenario_battery_still_splits(self):
        trees = {"default": build_covid_tree()}
        specs = specs_from_any(["exists MoT"] * 8)
        shards = plan_shards(specs, trees, 4)
        assert len(shards) > 1

    def test_shard_count_never_exceeds_request(self):
        specs = _mini_battery()
        shards = plan_shards(specs, _mini_trees(), 100)
        assert len(shards) <= len(specs)

    def test_unknown_scenario_gets_nominal_cost(self):
        spec = QuerySpec(id="x", formula="exists MoT", tree="nope")
        assert estimate_cost(spec, None) == 1.0

    def test_minimisation_queries_cost_more(self):
        tree = build_covid_tree()
        check = QuerySpec(id="a", formula="exists (IS & MoT)")
        mcs = QuerySpec(id="b", kind="mcs")
        assert estimate_cost(mcs, tree) > estimate_cost(check, tree)


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------


class TestParallelExecution:
    def battery(self):
        return [
            {"id": "a", "formula": "forall (IS => MoT)", "tree": "covid"},
            {"id": "b", "kind": "mcs", "tree": "covid"},
            {"id": "c", "formula": "exists (MCS(IWoS) & H1)", "tree": "covid"},
            {"id": "d", "kind": "mps", "tree": "dual"},
            {"id": "e", "kind": "mcs", "tree": "fig1"},
            {"id": "f", "formula": "P(MoT | H1) >= 0.0", "tree": "covid"},
            # Per-query errors must ride along in place:
            {"id": "g", "formula": "P(MoT | H1 & !H1) >= 0.5", "tree": "covid"},
            {"id": "h", "formula": "exists Zzz", "tree": "missing"},
            {"id": "i", "formula": "[[ MCS(MoT) & IS ]]", "tree": "covid"},
        ]

    def test_parallel_report_matches_sequential(self):
        trees = _mini_trees()
        sequential = BatchAnalyzer(trees, uniform=0.1).run(self.battery())
        parallel = BatchAnalyzer(trees, uniform=0.1, workers=3).run(
            self.battery()
        )
        assert _stripped(sequential) == _stripped(parallel)
        assert parallel.stats["parallel"]["workers"] == 3

    def test_errors_reported_in_place(self):
        trees = _mini_trees()
        report = BatchAnalyzer(trees, uniform=0.1, workers=2).run(
            self.battery()
        )
        assert not report.ok
        assert "zero-probability" in report["g"].error
        assert "unknown scenario" in report["h"].error
        assert report["a"].ok and report["i"].ok

    def test_merged_stats_aggregate(self):
        trees = _mini_trees()
        report = BatchAnalyzer(trees, uniform=0.1, workers=2).run(
            self.battery()
        )
        queries = report.stats["queries"]
        assert queries["total"] == len(self.battery())
        assert queries["errors"] == 2
        shards = report.stats["parallel"]["shards"]
        assert sum(row["queries"] for row in shards) == len(self.battery())
        assert all("cost" in row for row in shards)
        assert "covid" in report.stats["scenarios"]

    def test_workers_one_is_pure_in_process(self):
        analyzer = BatchAnalyzer(build_covid_tree(), workers=1)
        report = analyzer.run(["forall (IS => MoT)"])
        assert "parallel" not in report.stats

    def test_single_query_battery_skips_the_pool(self):
        analyzer = BatchAnalyzer(build_covid_tree(), workers=4)
        report = analyzer.run(["forall (IS => MoT)"])
        assert report.results[0].holds is False
        assert "parallel" not in report.stats

    def test_bad_workers_rejected(self):
        from repro.service.queries import QuerySpecError

        for bad in (0, -1, 1.5, True):
            with pytest.raises(QuerySpecError):
                BatchAnalyzer(build_covid_tree(), workers=bad)

    def test_failed_shards_still_count_in_merged_stats(self):
        """A crashed worker's queries must show up in the aggregated
        totals, not just as per-query errors."""
        from repro.service.parallel import merge_reports

        trees = {"default": build_covid_tree()}
        specs = specs_from_any(["exists MoT", "exists IS", "exists SH"])
        shards = plan_shards(specs, trees, 2)
        merged = merge_reports(
            specs,
            shards,
            [None] * len(shards),
            ["BrokenProcessPool: boom"] * len(shards),
            workers=2,
            elapsed_ms=1.0,
        )
        assert not merged.ok
        assert merged.stats["queries"]["total"] == len(specs)
        assert merged.stats["queries"]["errors"] == len(specs)
        assert all(
            "worker shard failed" in result.error
            for result in merged.results
        )

    def test_sessions_are_lazy(self):
        """Neither the parent of a parallel run nor a worker should pay
        for scenarios its queries never touch."""
        trees = _mini_trees()
        analyzer = BatchAnalyzer(trees, uniform=0.1, workers=2)
        assert analyzer._sessions == {}
        report = analyzer.run(
            [
                {"formula": "exists MoT", "tree": "covid"},
                {"formula": "forall (IS => MoT)", "tree": "covid"},
            ]
        )
        assert report.ok
        # The parallel parent never evaluates, so it builds no session.
        assert analyzer._sessions == {}
        assert set(analyzer.scenarios) == set(trees)


# ----------------------------------------------------------------------
# Snapshot warm starts through the service layer
# ----------------------------------------------------------------------


class TestServiceSnapshots:
    def test_warm_start_answers_identically(self):
        trees = _mini_trees()
        source = BatchAnalyzer(trees, uniform=0.1)
        source.prewarm_trees()
        snapshots = source.kernel_snapshots()
        warm = BatchAnalyzer(trees, uniform=0.1, snapshots=snapshots)
        session = warm.session("covid")
        translator = session.checker.translator.tree_translator
        assert len(translator.cached_elements) == len(
            trees["covid"].elements
        )
        battery = [
            "forall (IS => MoT)",
            "exists MCS(CP/R)",
            "P(MoT) >= 0.5",
        ]
        cold_report = BatchAnalyzer(trees, uniform=0.1).run(battery)
        warm_report = warm.run(battery)
        assert _stripped(cold_report) == _stripped(warm_report)
        session.checker.manager.check_invariants()

    def test_fingerprint_mismatch_raises(self):
        trees = _mini_trees()
        source = BatchAnalyzer(trees, uniform=0.1)
        source.prewarm_trees()
        snapshots = source.kernel_snapshots()
        wrong = {"covid": snapshots["fig1"]}
        with pytest.raises(SnapshotError):
            BatchAnalyzer(trees, snapshots=wrong)

    def test_malformed_snapshot_entry_raises(self):
        with pytest.raises(SnapshotError):
            BatchAnalyzer(
                build_covid_tree(), snapshots={"default": {"bogus": 1}}
            )

    def test_snapshot_entry_without_fingerprint_rejected(self):
        """An entry that cannot prove which tree it came from must not
        warm-start anything (the staleness guard is mandatory)."""
        trees = _mini_trees()
        source = BatchAnalyzer(trees, uniform=0.1)
        source.prewarm_trees()
        entry = dict(source.kernel_snapshots()["covid"])
        entry.pop("tree")
        with pytest.raises(SnapshotError):
            BatchAnalyzer(trees, snapshots={"covid": entry})

    def test_fingerprint_is_structural(self):
        covid = build_covid_tree()
        assert tree_fingerprint(covid) == tree_fingerprint(
            build_covid_tree()
        )
        assert tree_fingerprint(covid) != tree_fingerprint(figure1_tree())

    def test_snapshot_file_round_trip(self, tmp_path):
        trees = _mini_trees()
        source = BatchAnalyzer(trees, uniform=0.1)
        source.prewarm_trees()
        path = str(tmp_path / "kernels.json")
        write_snapshot_file(path, source.kernel_snapshots())
        loaded = read_snapshot_file(path)
        assert set(loaded) == set(trees)
        warm = BatchAnalyzer(trees, uniform=0.1, snapshots=loaded)
        report = warm.run(
            [{"formula": "forall (IS => MoT)", "tree": "covid"}]
        )
        assert report.ok

    def test_snapshot_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"format\": \"nope\"}")
        with pytest.raises(SnapshotError):
            read_snapshot_file(str(path))
        with pytest.raises(SnapshotError):
            read_snapshot_file(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestBatchCLI:
    def _query_file(self, tmp_path, extra=None):
        data = {
            "uniform": 0.05,
            "queries": [
                {"id": "q1", "formula": "forall (IS => MoT)"},
                {"id": "q2", "kind": "mcs"},
                {"id": "q3", "formula": "exists (MCS(IWoS) & H1)"},
                {"id": "q4", "formula": "P(MoT | H1) >= 0.1"},
            ],
        }
        data.update(extra or {})
        path = tmp_path / "battery.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_workers_flag_matches_sequential(self, tmp_path, capsys):
        queries = self._query_file(tmp_path)
        assert cli_main(["batch", queries]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert cli_main(["batch", queries, "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for row in sequential["results"] + parallel["results"]:
            row.pop("elapsed_ms", None)
        assert sequential["results"] == parallel["results"]
        assert parallel["stats"]["parallel"]["workers"] == 2

    def test_workers_key_in_query_file(self, tmp_path, capsys):
        queries = self._query_file(tmp_path, {"workers": 2})
        assert cli_main(["batch", queries]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stats"]["parallel"]["workers"] == 2

    def test_bad_workers_flag_exits_2(self, tmp_path, capsys):
        queries = self._query_file(tmp_path)
        assert cli_main(["batch", queries, "--workers", "0"]) == 2
        capsys.readouterr()

    def test_snapshot_flag_creates_then_reuses(self, tmp_path, capsys):
        queries = self._query_file(tmp_path)
        snap = str(tmp_path / "kernels.json")
        assert cli_main(["batch", queries, "--snapshot", snap]) == 0
        first = json.loads(capsys.readouterr().out)
        loaded = read_snapshot_file(snap)
        assert "default" in loaded
        assert cli_main(
            ["batch", queries, "--snapshot", snap, "--workers", "2"]
        ) == 0
        second = json.loads(capsys.readouterr().out)
        for row in first["results"] + second["results"]:
            row.pop("elapsed_ms", None)
        assert first["results"] == second["results"]
