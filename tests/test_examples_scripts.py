"""Smoke tests: every example script runs to completion and prints the
headline results it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "{H3, IW}" in out  # an MCS of Fig. 1
    assert "counterexample" in out


def test_covid_case_study():
    out = _run("covid_case_study.py")
    assert "ALL MATCH" in out
    assert "TLE reachable with H1 prevented?" in out


def test_what_if_scenarios():
    out = _run("what_if_scenarios.py")
    assert "Scenario 'grid lost'" in out
    assert "Redundancy bounds" in out
    assert "importance=" in out


def test_counterexample_patterns():
    out = _run("counterexample_patterns.py")
    assert "pattern: pattern3" in out
    assert "Algorithm 4 counterexample" in out


def test_synthesis_demo():
    out = _run("synthesis_demo.py")
    assert "satisfying assignment" in out
    assert "b, T |= MCS(G): True" in out
    assert "classification errors on all 16 vectors: 0" in out


@pytest.mark.parametrize(
    "name",
    [p.name for p in sorted(EXAMPLES.glob("*.py"))],
)
def test_every_example_has_a_docstring_and_main(name):
    source = (EXAMPLES / name).read_text(encoding="utf-8")
    assert '"""' in source.split("\n", 2)[-1] or source.startswith(
        '#!'
    )
    assert 'if __name__ == "__main__":' in source


def test_quantitative_analysis():
    out = _run("quantitative_analysis.py")
    assert "exact (BDD Shannon)" in out
    assert "P(IWoS[H1 := 0]) = 0" in out
    assert "Importance measures:" in out


def test_batch_analysis():
    out = _run("batch_analysis.py")
    assert "Per-query results" in out
    assert "Sharing statistics" in out
    assert "0 translation misses" in out  # the warm re-run
