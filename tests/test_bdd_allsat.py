"""AllSat tests (Algorithm 3's engine): cubes, models, counting."""

import pytest

from repro.bdd import (
    BDDManager,
    all_models,
    any_model,
    count_cubes,
    iter_cubes,
    iter_models,
)


@pytest.fixture()
def manager():
    return BDDManager(["x", "y", "z"])


class TestCubes:
    def test_false_has_no_cubes(self, manager):
        assert list(iter_cubes(manager, manager.false)) == []

    def test_true_has_the_empty_cube(self, manager):
        assert list(iter_cubes(manager, manager.true)) == [{}]

    def test_or_gate_cubes(self, manager):
        f = manager.or_(manager.var("x"), manager.var("y"))
        cubes = list(iter_cubes(manager, f))
        # Paths: x=0,y=1 and x=1 (y is a don't-care on the second path).
        assert {tuple(sorted(c.items())) for c in cubes} == {
            (("x", False), ("y", True)),
            (("x", True),),
        }

    def test_count_cubes(self, manager):
        f = manager.xor(manager.var("x"), manager.var("y"))
        assert count_cubes(manager, f) == 2

    def test_cubes_are_lazy(self, manager):
        f = manager.or_(manager.var("x"), manager.var("y"))
        iterator = iter_cubes(manager, f)
        first = next(iterator)
        assert isinstance(first, dict)


class TestModels:
    def test_models_expand_dont_cares(self, manager):
        f = manager.var("x")
        models = all_models(manager, f, ["x", "y"])
        assert len(models) == 2
        assert all(m["x"] for m in models)
        assert {m["y"] for m in models} == {False, True}

    def test_models_respect_scope_order(self, manager):
        f = manager.var("y")
        for model in iter_models(manager, f, ["x", "y", "z"]):
            assert list(model) == ["x", "y", "z"]

    def test_fixed_values_filter_and_extend(self, manager):
        f = manager.or_(manager.var("x"), manager.var("y"))
        models = list(
            iter_models(manager, f, ["x", "y"], fixed={"x": False})
        )
        assert models == [{"x": False, "y": True}]

    def test_any_model(self, manager):
        f = manager.and_(manager.var("x"), manager.nvar("z"))
        model = any_model(manager, f, ["x", "y", "z"])
        assert model is not None
        assert model["x"] is True and model["z"] is False
        assert any_model(manager, manager.false, ["x"]) is None

    def test_model_count_matches_sat_count(self, manager):
        f = manager.or_(
            manager.and_(manager.var("x"), manager.var("y")), manager.var("z")
        )
        models = all_models(manager, f, ["x", "y", "z"])
        assert len(models) == manager.sat_count(f, ["x", "y", "z"])
        assert len({tuple(sorted(m.items())) for m in models}) == len(models)
