"""Unit tests for the ROBDD manager: construction, reduction, Apply family."""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.errors import ManagerMismatchError, VariableError


@pytest.fixture()
def manager():
    return BDDManager(["a", "b", "c"])


class TestVariables:
    def test_declaration_order_is_the_level_order(self, manager):
        assert manager.variables == ("a", "b", "c")
        assert [manager.level_of(n) for n in "abc"] == [0, 1, 2]

    def test_name_of_inverts_level_of(self, manager):
        for name in "abc":
            assert manager.name_of(manager.level_of(name)) == name

    def test_duplicate_declaration_rejected(self, manager):
        with pytest.raises(VariableError):
            manager.declare("a")

    def test_empty_name_rejected(self, manager):
        with pytest.raises(VariableError):
            manager.declare("")

    def test_unknown_variable_rejected(self, manager):
        with pytest.raises(VariableError):
            manager.level_of("zz")
        with pytest.raises(VariableError):
            manager.name_of(99)

    def test_later_declarations_extend_the_order(self, manager):
        manager.declare("d", "e")
        assert manager.variables[-2:] == ("d", "e")


class TestTerminals:
    def test_exactly_two_terminals(self, manager):
        assert manager.true.is_terminal and manager.true.value is True
        assert manager.false.is_terminal and manager.false.value is False
        assert manager.constant(True) is manager.true
        assert manager.constant(False) is manager.false

    def test_terminals_are_distinct(self, manager):
        assert manager.true is not manager.false


class TestReduction:
    def test_identical_children_collapse(self, manager):
        node = manager.mk(0, manager.true, manager.true)
        assert node is manager.true

    def test_unique_table_shares_nodes(self, manager):
        first = manager.mk(0, manager.false, manager.true)
        second = manager.mk(0, manager.false, manager.true)
        assert first is second

    def test_var_is_the_elementary_bdd(self, manager):
        node = manager.var("b")
        assert node.low is manager.false
        assert node.high is manager.true
        assert manager.name_of(node.level) == "b"

    def test_order_violation_rejected(self, manager):
        deep = manager.var("c")
        with pytest.raises(VariableError):
            manager.mk(2, deep, manager.true)  # child level == own level

    def test_canonicity_same_function_same_node(self, manager):
        a, b = manager.var("a"), manager.var("b")
        left = manager.or_(a, b)
        right = manager.negate(manager.and_(manager.negate(a), manager.negate(b)))
        assert left is right


class TestApply:
    @pytest.mark.parametrize(
        "op,fn",
        [
            ("and", lambda x, y: x and y),
            ("or", lambda x, y: x or y),
            ("xor", lambda x, y: x != y),
            ("xnor", lambda x, y: x == y),
            ("nand", lambda x, y: not (x and y)),
            ("nor", lambda x, y: not (x or y)),
            ("implies", lambda x, y: (not x) or y),
        ],
    )
    def test_truth_tables(self, manager, op, fn):
        a, b = manager.var("a"), manager.var("b")
        result = manager.apply(op, a, b)
        for va, vb in itertools.product([False, True], repeat=2):
            expected = fn(va, vb)
            assert (
                manager.evaluate(result, {"a": va, "b": vb, "c": False})
                is expected
            )

    def test_unknown_operator_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.apply("nope", manager.true, manager.false)

    def test_negation_is_involutive(self, manager):
        f = manager.or_(manager.var("a"), manager.and_(manager.var("b"), manager.var("c")))
        assert manager.negate(manager.negate(f)) is f

    def test_conjoin_disjoin_empty(self, manager):
        assert manager.conjoin([]) is manager.true
        assert manager.disjoin([]) is manager.false

    def test_ite_matches_definition(self, manager):
        a, b, c = (manager.var(n) for n in "abc")
        ite = manager.ite(a, b, c)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            expected = env["b"] if env["a"] else env["c"]
            assert manager.evaluate(ite, env) is expected

    def test_cross_manager_nodes_rejected(self, manager):
        other = BDDManager(["a"])
        with pytest.raises(ManagerMismatchError):
            manager.and_(manager.var("a"), other.var("a"))


class TestThreshold:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_at_least_k_of_three(self, manager, k):
        operands = [manager.var(n) for n in "abc"]
        node = manager.threshold(operands, k)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert manager.evaluate(node, env) is (sum(bits) >= k)

    def test_k_zero_is_true_and_k_over_n_false(self, manager):
        operands = [manager.var("a")]
        assert manager.threshold(operands, 0) is manager.true
        assert manager.threshold(operands, 2) is manager.false


class TestRestrictComposeRename:
    def test_restrict_fixes_a_variable(self, manager):
        f = manager.and_(manager.var("a"), manager.var("b"))
        assert manager.restrict(f, "a", True) is manager.var("b")
        assert manager.restrict(f, "a", False) is manager.false

    def test_restrict_many(self, manager):
        f = manager.or_(manager.var("a"), manager.var("c"))
        result = manager.restrict_many(f, {"a": False, "c": False})
        assert result is manager.false

    def test_compose_substitutes_a_function(self, manager):
        f = manager.or_(manager.var("a"), manager.var("b"))
        g = manager.and_(manager.var("b"), manager.var("c"))
        composed = manager.compose(f, "a", g)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            expected = (env["b"] and env["c"]) or env["b"]
            assert manager.evaluate(composed, env) is expected

    def test_monotone_rename(self, manager):
        manager.declare("a2", "b2")
        f = manager.and_(manager.var("a"), manager.var("b"))
        renamed = manager.rename(f, {"a": "a2", "b": "b2"})
        assert manager.support(renamed) == {"a2", "b2"}

    def test_non_monotone_rename_rejected(self, manager):
        manager.declare("z1", "z2")
        f = manager.and_(manager.var("a"), manager.var("b"))
        with pytest.raises(VariableError):
            manager.rename(f, {"a": "z2", "b": "z1"})


class TestInspection:
    def test_support(self, manager):
        f = manager.and_(manager.var("a"), manager.var("c"))
        assert manager.support(f) == {"a", "c"}
        assert manager.support(manager.true) == set()

    def test_evaluate_missing_variable(self, manager):
        f = manager.var("b")
        with pytest.raises(KeyError):
            manager.evaluate(f, {"a": True})

    def test_sat_count(self, manager):
        f = manager.or_(manager.var("a"), manager.var("b"))
        assert manager.sat_count(f, ["a", "b"]) == 3
        assert manager.sat_count(f) == 6  # free c doubles the count

    def test_sat_count_rejects_narrow_scope(self, manager):
        f = manager.var("c")
        with pytest.raises(VariableError):
            manager.sat_count(f, ["a"])

    def test_node_count_grows_with_unique_nodes(self, manager):
        before = manager.node_count()
        manager.and_(manager.var("a"), manager.var("b"))
        assert manager.node_count() > before

    def test_clear_caches_keeps_results_valid(self, manager):
        f = manager.or_(manager.var("a"), manager.var("b"))
        manager.clear_caches()
        g = manager.or_(manager.var("a"), manager.var("b"))
        assert f is g  # unique table survives a cache clear


class TestIteTernaryApply:
    """The memoised ternary ITE (Brace/Rudell/Bryant style)."""

    def test_ite_equals_two_op_composition(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        for f in (a, manager.and_(a, b), manager.xor(b, c)):
            for g in (b, manager.or_(a, c), manager.true):
                for h in (c, manager.negate(b), manager.false):
                    composed = manager.or_(
                        manager.and_(f, g),
                        manager.and_(manager.negate(f), h),
                    )
                    assert manager.ite(f, g, h) is composed

    def test_terminal_and_absorption_rules(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.ite(manager.true, a, b) is a
        assert manager.ite(manager.false, a, b) is b
        assert manager.ite(a, b, b) is b
        assert manager.ite(a, manager.true, manager.false) is a
        assert manager.ite(a, manager.false, manager.true) is manager.negate(a)
        assert manager.ite(a, a, b) is manager.or_(a, b)
        assert manager.ite(a, b, a) is manager.and_(a, b)

    def test_ite_cross_manager_rejected(self, manager):
        other = BDDManager(["a"])
        with pytest.raises(ManagerMismatchError):
            manager.ite(other.var("a"), manager.true, manager.false)

    def test_ite_uses_its_memo_table(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        manager.ite(a, b, c)
        misses = manager.op_stats.ite_misses
        assert misses > 0
        manager.ite(a, b, c)
        assert manager.op_stats.ite_misses == misses
        assert manager.op_stats.ite_hits > 0


class TestOperationCacheStats:
    def test_counters_are_monotone(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        snapshots = []
        for node in (b, c, manager.xor(b, c)):
            manager.ite(a, node, manager.negate(node))
            manager.restrict(manager.and_(a, node), "a", True)
            snapshots.append(manager.op_stats.snapshot())
        for earlier, later in zip(snapshots, snapshots[1:]):
            for key, value in earlier.items():
                assert later[key] >= value

    def test_hit_ratio_and_totals(self, manager):
        stats = manager.op_stats
        assert stats.hit_ratio == 0.0
        a, b = manager.var("a"), manager.var("b")
        manager.and_(a, b)
        manager.and_(a, b)  # terminal shortcuts never reach the cache...
        f = manager.xor(a, b)
        manager.xor(a, b)
        assert stats.hits + stats.misses > 0
        assert 0.0 <= stats.hit_ratio <= 1.0
        assert stats.hits == (
            stats.apply_hits + stats.ite_hits + stats.restrict_hits
        )

    def test_cache_stats_reports_sizes(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        manager.ite(manager.xor(a, b), b, c)
        data = manager.cache_stats()
        for key in (
            "apply_cache_size", "ite_cache_size",
            "restrict_cache_size", "unique_table_size",
            "live_nodes", "peak_live_nodes", "negations",
            "hits", "misses", "ite_hits", "ite_misses",
        ):
            assert key in data
        assert data["ite_cache_size"] > 0
        assert data["live_nodes"] == data["unique_table_size"] + 1
        assert data["peak_live_nodes"] == data["live_nodes"]

    def test_stats_survive_clear_caches(self, manager):
        a, b = manager.var("a"), manager.var("b")
        manager.ite(manager.xor(a, b), a, b)
        before = manager.op_stats.snapshot()
        manager.clear_caches()
        assert manager.op_stats.snapshot() == before
        assert manager.cache_stats()["ite_cache_size"] == 0

    def test_delta_between_snapshots(self, manager):
        a, b = manager.var("a"), manager.var("b")
        earlier = manager.op_stats.copy()
        manager.xor(a, b)
        delta = manager.op_stats.delta(earlier)
        assert all(value >= 0 for value in delta.values())
        assert delta["apply_misses"] > 0
