"""Quantitative extension: probabilities, PBFL-lite, importance measures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.casestudy import build_covid_tree
from repro.ft import FaultTreeBuilder, figure1_tree, random_tree, tree_to_bdd
from repro.ft.random_trees import RandomTreeConfig
from repro.prob import (
    MissingProbabilityError,
    ProbQuery,
    ProbabilityChecker,
    bdd_probability,
    conditional_probability,
    enumeration_probability,
    event_probabilities,
    importance_table,
    min_cut_upper_bound,
    parse_prob_query,
    rare_event_approximation,
    render_importance_table,
)

UNIFORM = 0.1


def _uniform(tree, p=UNIFORM):
    return {name: p for name in tree.basic_events}


class TestEventProbabilities:
    def test_overrides_win(self):
        tree = figure1_tree()
        probs = event_probabilities(tree, {name: 0.2 for name in tree.basic_events})
        assert probs["IW"] == 0.2

    def test_missing_probability_rejected(self):
        tree = figure1_tree()
        with pytest.raises(MissingProbabilityError):
            event_probabilities(tree)

    def test_unknown_override_rejected(self):
        tree = figure1_tree()
        with pytest.raises(MissingProbabilityError):
            event_probabilities(tree, {"ghost": 0.5})

    def test_out_of_range_rejected(self):
        tree = figure1_tree()
        overrides = _uniform(tree)
        overrides["IW"] = 1.5
        with pytest.raises(MissingProbabilityError):
            event_probabilities(tree, overrides)


class TestBDDProbability:
    def test_or_of_independent_events(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("top", "a", "b")
            .build("top")
        )
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        p = bdd_probability(manager, root, {"a": 0.1, "b": 0.2})
        assert math.isclose(p, 1 - 0.9 * 0.8)

    def test_terminals(self):
        manager = BDDManager(["a"])
        assert bdd_probability(manager, manager.true, {}) == 1.0
        assert bdd_probability(manager, manager.false, {}) == 0.0

    def test_missing_variable_rejected(self):
        manager = BDDManager(["a"])
        with pytest.raises(MissingProbabilityError):
            bdd_probability(manager, manager.var("a"), {})

    @given(
        seed=st.integers(0, 10**6),
        p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_enumeration_on_random_trees(self, seed, p):
        tree = random_tree(seed, RandomTreeConfig(n_basic_events=5))
        overrides = _uniform(tree, p)
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        exact = bdd_probability(manager, root, overrides)
        reference = enumeration_probability(tree, overrides=overrides)
        assert math.isclose(exact, reference, rel_tol=1e-9, abs_tol=1e-12)


class TestBoundsAndApproximations:
    def test_rare_event_is_an_upper_bound_for_small_p(self):
        tree = build_covid_tree()
        overrides = _uniform(tree, 0.01)
        exact = enumeration_probability(tree, overrides=overrides)
        rare = rare_event_approximation(tree, overrides=overrides)
        mcub = min_cut_upper_bound(tree, overrides=overrides)
        assert exact <= rare + 1e-15
        assert exact <= mcub + 1e-15
        # and both approximations are close at small p
        assert math.isclose(exact, rare, rel_tol=0.05)

    def test_min_cut_upper_bound_below_rare_event(self):
        tree = build_covid_tree()
        overrides = _uniform(tree, 0.3)
        assert min_cut_upper_bound(tree, overrides=overrides) <= (
            rare_event_approximation(tree, overrides=overrides)
        )


class TestConditional:
    def test_conditioning_on_certain_event(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        overrides = _uniform(tree)
        p = conditional_probability(
            manager, root, manager.true, overrides
        )
        assert math.isclose(p, bdd_probability(manager, root, overrides))

    def test_zero_probability_evidence_rejected(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        with pytest.raises(ZeroDivisionError):
            conditional_probability(
                manager, root, manager.false, _uniform(tree)
            )


class TestProbabilityChecker:
    @pytest.fixture(scope="class")
    def checker(self):
        tree = build_covid_tree()
        return ProbabilityChecker(tree, overrides=_uniform(tree))

    def test_unreliability_matches_enumeration(self, checker):
        exact = enumeration_probability(
            checker.tree, overrides=_uniform(checker.tree)
        )
        assert math.isclose(checker.unreliability(), exact, rel_tol=1e-9)

    def test_probability_of_bfl_formula(self, checker):
        # MCS vectors are a subset of the cut vectors.
        assert checker.probability("MCS(IWoS)") <= checker.probability("IWoS")

    def test_evidence_in_probability(self, checker):
        # With H1 prevented, the TLE is unreachable ({H1} is an MPS).
        assert checker.probability("IWoS[H1 := 0]") == 0.0

    def test_conditional_raises_probability(self, checker):
        base = checker.unreliability()
        conditioned = checker.conditional("IWoS", "H1 & VW & IW")
        assert conditioned > base

    def test_check_comparators(self, checker):
        assert checker.check(ProbQuery(parse_prob_query("P(MoT) > 0").formula, ">", 0.0))
        assert checker.check(parse_prob_query("P(MoT) <= 1"))
        assert not checker.check(parse_prob_query("P(MoT) >= 0.99"))


class TestParseProbQuery:
    def test_round_trip_fields(self):
        query = parse_prob_query("P(MoT & !H1) >= 0.25")
        assert query.comparator == ">="
        assert query.bound == 0.25

    @pytest.mark.parametrize(
        "text", ["P(MoT)", "Q(MoT) >= 0.1", "P(MoT) >= two", "P() >= 0.1"]
    )
    def test_rejects_malformed(self, text):
        with pytest.raises((ValueError, Exception)):
            parse_prob_query(text)

    def test_bound_range_validated(self):
        with pytest.raises(ValueError):
            ProbQuery(parse_prob_query("P(MoT) >= 0.1").formula, ">=", 1.5)


class TestImportance:
    @pytest.fixture(scope="class")
    def rows(self):
        tree = build_covid_tree()
        return importance_table(tree, overrides=_uniform(tree))

    def test_h1_is_fully_critical(self, rows):
        by_name = {row.name: row for row in rows}
        # Every MCS contains H1 (the qualitative Sec. VII finding), so its
        # criticality is 1: given system failure H1 is always critical.
        assert math.isclose(by_name["H1"].criticality, 1.0, rel_tol=1e-9)
        assert math.isclose(by_name["VW"].criticality, 1.0, rel_tol=1e-9)

    def test_birnbaum_sorted_descending(self, rows):
        values = [row.birnbaum for row in rows]
        assert values == sorted(values, reverse=True)

    def test_render_contains_all_events(self, rows):
        text = render_importance_table(rows)
        tree = build_covid_tree()
        for name in tree.basic_events:
            assert name in text

    def test_superfluous_event_has_zero_birnbaum(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("g", "a", "b")
            .and_gate("top", "g", "a")
            .build("top")
        )
        rows = importance_table(tree, overrides={"a": 0.5, "b": 0.5})
        by_name = {row.name: row for row in rows}
        assert by_name["b"].birnbaum == 0.0
        assert by_name["b"].fussell_vesely == 0.0
