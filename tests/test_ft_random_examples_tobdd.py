"""Random-tree generator, the paper's example trees, and Psi_FT (Def. 6)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.ft import (
    RandomTreeConfig,
    TreeTranslator,
    figure1_tree,
    figure3_or_tree,
    random_tree,
    structure_function,
    table1_tree,
    tree_to_bdd,
)

from bfl_strategies import small_trees


class TestRandomTrees:
    def test_deterministic_for_a_seed(self):
        config = RandomTreeConfig(n_basic_events=6)
        a = random_tree(42, config)
        b = random_tree(42, config)
        assert a.elements == b.elements
        for name in a.gate_names:
            assert a.gate(name) == b.gate(name)

    def test_different_seeds_differ(self):
        config = RandomTreeConfig(n_basic_events=6)
        trees = {tuple(random_tree(seed, config).elements) for seed in range(8)}
        assert len(trees) > 1

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_always_well_formed(self, seed):
        # FaultTree.__init__ re-validates Def. 1; surviving construction is
        # the property.
        tree = random_tree(seed, RandomTreeConfig(n_basic_events=7, p_share=0.4))
        assert len(tree.basic_events) == 7
        assert tree.top in tree.gate_names

    def test_all_declared_events_connected(self):
        tree = random_tree(3, RandomTreeConfig(n_basic_events=10))
        reachable = tree.descendants(tree.top)
        for name in tree.basic_events:
            assert name in reachable

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_basic_events": 0},
            {"max_children": 1},
            {"p_vot": 1.5},
            {"p_share": -0.1},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            RandomTreeConfig(**kwargs)


class TestExampleTrees:
    def test_figure1_shape(self):
        tree = figure1_tree()
        assert tree.top == "CP/R"
        assert tree.children("CP/R") == ("CP", "CR")
        assert tree.describe("IW") == "Infected worker joining the team"

    def test_figure3_shape(self):
        tree = figure3_or_tree()
        assert tree.children("Top") == ("e1", "e2")

    def test_table1_shape(self):
        tree = table1_tree()
        # e1 = AND(e2, e3), e3 = OR(e4, e5) — reconstructed in DESIGN.md.
        assert tree.children("e1") == ("e2", "e3")
        assert tree.children("e3") == ("e4", "e5")
        assert tree.basic_events == ("e2", "e4", "e5")


class TestTreeToBDD:
    def test_translation_matches_structure_function_fig1(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        root = tree_to_bdd(tree, manager)
        for bits in itertools.product([False, True], repeat=4):
            vector = dict(zip(tree.basic_events, bits))
            assert manager.evaluate(root, vector) is structure_function(
                tree, vector
            )

    @given(tree=small_trees())
    @settings(max_examples=50, deadline=None)
    def test_translation_matches_structure_function_random(self, tree):
        manager = BDDManager(tree.basic_events)
        translator = TreeTranslator(tree, manager)
        names = tree.basic_events
        for element in tree.elements:
            node = translator.element(element)
            for bits in itertools.product([False, True], repeat=len(names)):
                vector = dict(zip(names, bits))
                assert manager.evaluate(
                    node, {**vector, **{}}
                ) is structure_function(tree, vector, element)

    def test_translator_caches_elements(self):
        tree = figure1_tree()
        manager = BDDManager(tree.basic_events)
        translator = TreeTranslator(tree, manager)
        translator.element("CP/R")
        # Translating the top fills the cache for every descendant.
        assert set(translator.cached_elements) == set(tree.elements)
        first = translator.element("CP")
        assert translator.element("CP") is first

    def test_fresh_manager_created_when_omitted(self):
        tree = figure3_or_tree()
        root = tree_to_bdd(tree)
        assert root.count_nodes() == 4  # e1 node, e2 node, two terminals

    def test_custom_order_respected(self):
        tree = figure1_tree()
        root = tree_to_bdd(tree, order=["H2", "IT", "H3", "IW"])
        assert root is not None
