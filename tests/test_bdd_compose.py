"""Metamorphic and differential tests for ``BDDManager.compose``.

``compose(f, x, g)`` is the substitution primitive the incremental
variant path splices edited subtrees with (see
``TreeTranslator.splice``), so its laws get their own suite:

* identity — substituting ``x`` for itself is a no-op;
* constants — substituting a constant is exactly ``restrict``;
* commutation — ``compose`` and ``restrict`` on a *different* variable
  commute;
* truth tables — compose agrees with semantic substitution on every
  assignment, for randomly built BDDs;
* tree splicing — ``splice(site, Psi(site))`` reproduces ``Psi(top)``,
  cross-checked against the enumerative reference semantics;
* pins for the two representation hazards: complement-edge roots and
  unique-table holes left by a GC between calls.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.ft import GateType, tree_to_bdd
from repro.ft.to_bdd import TreeTranslator
from repro.logic import Atom, ReferenceSemantics
from bfl_strategies import small_trees

_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VARS = ("a", "b", "c", "d", "e")


def _random_bdd(manager: BDDManager, rng: random.Random, depth: int = 4):
    """A random BDD built from manager operations (complement edges and
    all)."""
    if depth == 0 or rng.random() < 0.25:
        choice = rng.random()
        if choice < 0.1:
            return manager.constant(rng.random() < 0.5)
        ref = manager.var(rng.choice(VARS))
        return manager.negate(ref) if rng.random() < 0.5 else ref
    left = _random_bdd(manager, rng, depth - 1)
    right = _random_bdd(manager, rng, depth - 1)
    op = rng.choice(("and", "or", "xor"))
    out = manager.apply(op, left, right)
    return manager.negate(out) if rng.random() < 0.3 else out


def _assignments():
    for bits in itertools.product([False, True], repeat=len(VARS)):
        yield dict(zip(VARS, bits))


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_compose_identity(seed):
    manager = BDDManager(VARS)
    rng = random.Random(seed)
    f = _random_bdd(manager, rng)
    x = rng.choice(VARS)
    assert manager.compose(f, x, manager.var(x)) == f
    manager.check_invariants()


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_compose_constant_is_restrict(seed):
    manager = BDDManager(VARS)
    rng = random.Random(seed)
    f = _random_bdd(manager, rng)
    x = rng.choice(VARS)
    assert manager.compose(f, x, manager.constant(True)) == manager.restrict(
        f, x, True
    )
    assert manager.compose(f, x, manager.constant(False)) == manager.restrict(
        f, x, False
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_compose_restrict_commute_on_other_var(seed):
    """restrict_y(compose_x(f, g)) == compose_x(restrict_y f, restrict_y g)
    for y != x — the substituted function sees the restriction too."""
    manager = BDDManager(VARS)
    rng = random.Random(seed)
    f = _random_bdd(manager, rng)
    g = _random_bdd(manager, rng, depth=3)
    x = rng.choice(VARS)
    y = rng.choice([v for v in VARS if v != x])
    value = rng.random() < 0.5
    left = manager.restrict(manager.compose(f, x, g), y, value)
    right = manager.compose(
        manager.restrict(f, y, value), x, manager.restrict(g, y, value)
    )
    assert left == right


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_compose_truth_table(seed):
    """evaluate(compose(f,x,g), a) == evaluate(f, a[x := g(a)]) on every
    assignment — the semantic definition of substitution."""
    manager = BDDManager(VARS)
    rng = random.Random(seed)
    f = _random_bdd(manager, rng)
    g = _random_bdd(manager, rng, depth=3)
    x = rng.choice(VARS)
    h = manager.compose(f, x, g)
    for assignment in _assignments():
        patched = dict(assignment)
        patched[x] = manager.evaluate(g, assignment)
        assert manager.evaluate(h, assignment) == manager.evaluate(f, patched)
    # A variable absent from f is absorbed without trace.
    if x not in manager.support(f):
        assert h == f
    assert x not in manager.support(h) or x in manager.support(g)


@given(tree=small_trees(max_basic_events=4))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_splice_identity_matches_reference(tree):
    """Splicing an element's own BDD back into its abstraction recovers
    Psi(top), which itself agrees with the reference semantics."""
    manager = BDDManager(sorted(tree.basic_events))
    translator = TreeTranslator(tree, manager)
    top = translator.top()
    semantics = ReferenceSemantics(tree)
    events = sorted(tree.basic_events)
    for site in tree.elements:
        spliced = translator.splice(site, translator.element(site))
        assert spliced == top
    for bits in itertools.product([False, True], repeat=len(events)):
        vector = dict(zip(events, bits))
        assert manager.evaluate(top, vector) == semantics.holds(
            Atom(tree.top), vector
        )


def test_compose_complement_edge_root():
    """Pin: a complemented root edge routes its complement bit *around*
    the cache so a hit on the regular edge cannot flip the result."""
    manager = BDDManager(VARS)
    a, b, c = (manager.var(v) for v in ("a", "b", "c"))
    f = manager.and_(a, b)
    nf = manager.negate(f)
    g = manager.or_(b, c)
    pos = manager.compose(f, "a", g)
    neg = manager.compose(nf, "a", g)
    assert neg == manager.negate(pos)
    # Same regular edge twice: second call is a cache hit, complement
    # still applied outside the cache.
    before = manager.op_stats.compose_hits
    assert manager.compose(nf, "a", g) == neg
    assert manager.op_stats.compose_hits > before
    for assignment in _assignments():
        patched = dict(assignment)
        patched["a"] = manager.evaluate(g, assignment)
        assert manager.evaluate(pos, assignment) == manager.evaluate(
            f, patched
        )


def test_compose_after_gc_holes():
    """Pin: compose stays correct when the unique table has holes from a
    collect() and the compose cache was cleared between calls."""
    import gc as pygc

    manager = BDDManager(VARS)
    rng = random.Random(1234)
    keep_f = _random_bdd(manager, rng)
    keep_g = _random_bdd(manager, rng, depth=3)
    expected = manager.compose(keep_f, "b", keep_g)
    table = {}
    for assignment in _assignments():
        table[tuple(assignment.values())] = manager.evaluate(
            expected, assignment
        )
    # Make garbage, then punch holes.
    for seed in range(12):
        _random_bdd(manager, random.Random(seed))
    pygc.collect()
    reclaimed = manager.collect()
    assert reclaimed > 0
    manager.check_invariants()
    # Fresh structures may now reuse freed slots; compose again.
    again = manager.compose(keep_f, "b", keep_g)
    assert again == expected
    for assignment in _assignments():
        assert (
            manager.evaluate(again, assignment)
            == table[tuple(assignment.values())]
        )


def test_compose_cache_cleared_by_clear_caches():
    manager = BDDManager(VARS)
    f = manager.and_(manager.var("a"), manager.var("b"))
    manager.compose(f, "a", manager.var("c"))
    assert manager.cache_stats()["compose_cache_size"] > 0
    manager.clear_caches()
    assert manager.cache_stats()["compose_cache_size"] == 0


def test_compose_survives_sift():
    """compose results stay functionally right across an in-place sift
    (which rewires levels and clears every memo table)."""
    manager = BDDManager(VARS)
    rng = random.Random(7)
    f = _random_bdd(manager, rng)
    g = _random_bdd(manager, rng, depth=3)
    before = manager.compose(f, "c", g)
    table = [
        manager.evaluate(before, assignment)
        for assignment in _assignments()
    ]
    manager.sift_inplace()
    manager.check_invariants()
    after = manager.compose(f, "c", g)
    assert after == before  # same Ref identity: handles survive sifting
    for assignment, want in zip(_assignments(), table):
        assert manager.evaluate(after, assignment) == want


def test_compose_unknown_variable():
    manager = BDDManager(VARS)
    f = manager.var("a")
    with pytest.raises(Exception):
        manager.compose(f, "zz", manager.var("b"))
