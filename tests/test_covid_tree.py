"""Structure of the reconstructed Fig. 2 COVID-19 fault tree."""

import pytest

from repro.casestudy import (
    BASIC_EVENT_DESCRIPTIONS,
    GATE_DESCRIPTIONS,
    HUMAN_ERRORS,
    build_covid_tree,
)
from repro.ft import GateType


@pytest.fixture(scope="module")
def tree():
    return build_covid_tree()


class TestShape:
    def test_size(self, tree):
        stats = tree.stats()
        assert stats["basic_events"] == 13
        assert stats["gates"] == 16
        assert tree.top == "IWoS"

    def test_top_is_the_ternary_and(self, tree):
        assert tree.gate_type("IWoS") is GateType.AND
        assert set(tree.children("IWoS")) == {"CP/R", "MoT", "SH"}

    @pytest.mark.parametrize(
        "gate,gate_type,children",
        [
            ("CP/R", GateType.OR, {"CP", "CR"}),
            ("CP", GateType.AND, {"IW", "H3"}),
            ("CR", GateType.AND, {"IT", "H2"}),
            ("MoT", GateType.OR, {"CT", "DT", "AT", "CVT"}),
            ("CT", GateType.OR, {"CIW", "CIO", "CIS"}),
            ("CIW", GateType.AND, {"IW", "PP", "H1"}),
            ("CIO", GateType.AND, {"IT", "MH1"}),
            ("MH1", GateType.AND, {"H1", "H4"}),
            ("CIS", GateType.AND, {"IS", "MH2"}),
            ("MH2", GateType.AND, {"H1", "H5"}),
            ("DT", GateType.AND, {"IW", "PP"}),
            ("AT", GateType.AND, {"IW", "AM"}),
            ("AM", GateType.OR, {"AB", "MV"}),
            ("CVT", GateType.OR, {"UT"}),
            ("SH", GateType.AND, {"VW", "H1"}),
        ],
    )
    def test_gate_structure(self, tree, gate, gate_type, children):
        assert tree.gate_type(gate) is gate_type
        assert set(tree.children(gate)) == children

    def test_repeated_basic_events_match_the_paper(self, tree):
        # "IT, PP, H1 and IW occur at multiple places in the tree."
        for name in ("IT", "PP", "H1", "IW"):
            assert len(tree.parents(name)) > 1, name
        assert len(tree.parents("H1")) == 4  # CIW, MH1, MH2, SH
        assert len(tree.parents("IW")) == 4  # CP, CIW, DT, AT
        assert len(tree.parents("PP")) == 2  # CIW, DT
        assert len(tree.parents("IT")) == 2  # CR, CIO

    def test_human_errors_present(self, tree):
        assert set(HUMAN_ERRORS) <= set(tree.basic_events)

    def test_descriptions_attached(self, tree):
        for name, description in BASIC_EVENT_DESCRIPTIONS.items():
            assert tree.describe(name) == description
        for name, description in GATE_DESCRIPTIONS.items():
            assert tree.describe(name) == description


class TestFigure1Consistency:
    """Fig. 1 is declared an excerpt of Fig. 2 — the shared gates must
    coincide."""

    def test_cpr_subtree_matches_figure1(self, tree):
        from repro.ft import figure1_tree

        fig1 = figure1_tree()
        for gate in ("CP/R", "CP", "CR"):
            assert tree.children(gate) == fig1.children(gate)
            assert tree.gate_type(gate) == fig1.gate_type(gate)

    def test_cpr_minimal_sets_match_figure1(self, tree):
        from repro.ft import minimal_cut_sets, minimal_path_sets

        assert minimal_cut_sets(tree, "CP/R") == [
            frozenset({"H2", "IT"}),
            frozenset({"H3", "IW"}),
        ]
        assert len(minimal_path_sets(tree, "CP/R")) == 4


class TestSubtreeClaims:
    """Structural claims the paper makes about Fig. 2 excerpts."""

    def test_mot_mcs_count_is_six(self, tree):
        from repro.ft import minimal_cut_sets

        assert len(minimal_cut_sets(tree, "MoT")) == 6

    def test_sh_single_mcs(self, tree):
        from repro.ft import minimal_cut_sets

        assert minimal_cut_sets(tree, "SH") == [frozenset({"H1", "VW"})]

    def test_dt_and_at_need_no_human_error(self, tree):
        from repro.ft import minimal_cut_sets

        human = set(HUMAN_ERRORS)
        for gate in ("DT", "AT", "CVT"):
            for mcs in minimal_cut_sets(tree, gate):
                assert not (mcs & human), (gate, mcs)

    def test_cio_cis_require_h1(self, tree):
        from repro.ft import minimal_cut_sets

        assert minimal_cut_sets(tree, "CIO") == [
            frozenset({"H1", "H4", "IT"})
        ]
        assert minimal_cut_sets(tree, "CIS") == [
            frozenset({"H1", "H5", "IS"})
        ]
