"""Shared fixtures for the test suite.

The hypothesis strategies (``small_trees``, ``vectors_for``,
``formulas_for``) live in :mod:`bfl_strategies`; test modules import them
from there directly.
"""

from __future__ import annotations

import pytest

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.ft import (
    example_vot_tree,
    figure1_tree,
    figure3_or_tree,
    table1_tree,
)

# Re-exported for any module that still reaches through conftest.
from bfl_strategies import formulas_for, small_trees, vectors_for  # noqa: F401

# ----------------------------------------------------------------------
# Fixtures: the paper's trees
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def fig1():
    return figure1_tree()


@pytest.fixture(scope="session")
def fig3():
    return figure3_or_tree()


@pytest.fixture(scope="session")
def table1():
    return table1_tree()


@pytest.fixture(scope="session")
def vot_tree():
    return example_vot_tree()


@pytest.fixture(scope="session")
def covid():
    return build_covid_tree()


@pytest.fixture(scope="session")
def covid_checker(covid):
    # One checker for the whole session: exercises Algorithm 1's caches the
    # way the paper intends (reuse across analyses).
    return ModelChecker(covid)
