"""Counterexample patterns (Def. 8): holes, matching, classification."""

import pytest

from repro.logic import MCS, MPS, And, Atom, Not, Or, Vot, parse_formula
from repro.checker import (
    PATTERN_1,
    PATTERN_2,
    PATTERN_3,
    PATTERN_4,
    TABLE1_PATTERNS,
    Hole,
    classify,
    flatten_conjunction,
    match,
)


class TestStructuralMatch:
    def test_hole_matches_anything(self):
        binding = match(Hole(1), parse_formula("MCS(A & B)"))
        assert binding == {1: parse_formula("MCS(A & B)")}

    def test_template_with_structure(self):
        template = MCS(And(Hole(1), Hole(2)))
        binding = match(template, parse_formula("MCS(A & !B)"))
        assert binding == {1: Atom("A"), 2: Not(Atom("B"))}

    def test_repeated_holes_must_bind_consistently(self):
        template = And(Hole(1), Hole(1))
        assert match(template, parse_formula("A & A")) is not None
        assert match(template, parse_formula("A & B")) is None

    def test_type_mismatch_fails(self):
        assert match(MCS(Hole(1)), parse_formula("MPS(A)")) is None
        assert match(Atom("A"), parse_formula("B")) is None

    def test_vot_requires_same_shape(self):
        template = Vot(">=", 2, (Hole(1), Hole(2), Hole(3)))
        assert match(template, parse_formula("VOT(>= 2; A, B, C)")) is not None
        assert match(template, parse_formula("VOT(>= 1; A, B, C)")) is None
        assert match(template, parse_formula("VOT(>= 2; A, B)")) is None

    def test_evidence_assignments_must_match(self):
        from repro.logic import Evidence

        template = Evidence(Hole(1), (("H1", False),))
        assert match(template, parse_formula("A[H1 := 0]")) is not None
        assert match(template, parse_formula("A[H1 := 1]")) is None


class TestTable1Patterns:
    def test_pattern1(self):
        assert PATTERN_1.matches(parse_formula("MCS(e1)")) == (Atom("e1"),)
        assert PATTERN_1.matches(parse_formula("MPS(e1)")) is None

    def test_pattern2(self):
        assert PATTERN_2.matches(parse_formula("MPS(e1)")) == (Atom("e1"),)

    def test_pattern3_variadic(self):
        operands = PATTERN_3.matches(
            parse_formula("MCS(e1) & MCS(e3) & MCS(e2)")
        )
        assert operands == (Atom("e1"), Atom("e3"), Atom("e2"))

    def test_pattern3_rejects_mixed_conjunctions(self):
        assert PATTERN_3.matches(parse_formula("MCS(e1) & MPS(e3)")) is None
        assert PATTERN_3.matches(parse_formula("MCS(e1) & e3")) is None
        assert PATTERN_3.matches(parse_formula("MCS(e1)")) is None

    def test_pattern4_variadic(self):
        operands = PATTERN_4.matches(parse_formula("MPS(e1) & MPS(e3)"))
        assert operands == (Atom("e1"), Atom("e3"))

    def test_classify(self):
        assert classify(parse_formula("MCS(e1)")) == ["pattern1"]
        assert classify(parse_formula("MPS(e1)")) == ["pattern2"]
        assert classify(parse_formula("MCS(e1) & MCS(e3)")) == ["pattern3"]
        assert classify(parse_formula("MPS(e1) & MPS(e3)")) == ["pattern4"]
        assert classify(parse_formula("e1 & e3")) == []

    def test_registry_order_most_specific_first(self):
        assert TABLE1_PATTERNS[0] is PATTERN_3


class TestFlatten:
    def test_flatten_nested_conjunction(self):
        formula = parse_formula("(A & B) & (C & D)")
        assert flatten_conjunction(formula) == [
            Atom("A"),
            Atom("B"),
            Atom("C"),
            Atom("D"),
        ]

    def test_flatten_non_conjunction_is_singleton(self):
        assert flatten_conjunction(Atom("A")) == [Atom("A")]
        assert flatten_conjunction(parse_formula("A | B")) == [
            Or(Atom("A"), Atom("B"))
        ]
