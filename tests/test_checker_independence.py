"""IBE / IDP / SUP: BDD support vs the enumerative definition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ft import FaultTreeBuilder, figure1_tree
from repro.logic import Atom, ReferenceSemantics, parse_formula
from repro.checker import (
    FormulaTranslator,
    independent,
    influencing_basic_events,
    shared_influencers,
    superfluous,
)

from bfl_strategies import formulas_for, small_trees


@pytest.fixture()
def fig1_translator():
    return FormulaTranslator(figure1_tree())


class TestIBE:
    def test_ibe_of_element(self, fig1_translator):
        assert influencing_basic_events(fig1_translator, Atom("CP")) == {
            "IW",
            "H3",
        }
        assert influencing_basic_events(fig1_translator, Atom("CP/R")) == {
            "IW",
            "H3",
            "IT",
            "H2",
        }

    def test_ibe_of_tautology_is_empty(self, fig1_translator):
        assert (
            influencing_basic_events(fig1_translator, parse_formula("IW | !IW"))
            == frozenset()
        )

    def test_ibe_sees_through_evidence(self, fig1_translator):
        # CP[IW := 1] only depends on H3.
        formula = parse_formula("CP[IW := 1]")
        assert influencing_basic_events(fig1_translator, formula) == {"H3"}

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(max_examples=40, deadline=None)
    def test_bdd_support_equals_semantic_ibe(self, data, tree):
        """The paper's VarB-based IDP rule is sound because ROBDD support
        equals the semantic influencing set — verified on random formulae."""
        translator = FormulaTranslator(tree)
        semantics = ReferenceSemantics(tree)
        formula = data.draw(formulas_for(tree, allow_minimal_ops=False))
        assert influencing_basic_events(
            translator, formula
        ) == semantics.influencing_basic_events(formula)


class TestIDP:
    def test_disjoint_subtrees_independent(self, fig1_translator):
        assert independent(fig1_translator, Atom("CP"), Atom("CR"))

    def test_overlapping_formulae_dependent(self, fig1_translator):
        assert not independent(fig1_translator, Atom("CP"), Atom("CP/R"))
        assert shared_influencers(
            fig1_translator, Atom("CP"), Atom("CP/R")
        ) == {"IW", "H3"}

    def test_idp_with_compound_formulae(self, fig1_translator):
        left = parse_formula("IW & H3")
        right = parse_formula("IT | H2")
        assert independent(fig1_translator, left, right)


class TestSUP:
    def test_relevant_event_not_superfluous(self, fig1_translator):
        assert not superfluous(fig1_translator, "IW")

    def test_masked_event_is_superfluous(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b")
            .or_gate("g", "a", "b")
            .and_gate("top", "g", "a")
            .build("top")
        )
        translator = FormulaTranslator(tree)
        assert superfluous(translator, "b")
        assert not superfluous(translator, "a")

    def test_sup_matches_zero_structural_importance(self):
        from repro.ft import structural_importance

        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .or_gate("g", "a", "b")
            .and_gate("mask", "g", "a")
            .or_gate("top", "mask", "c")
            .build("top")
        )
        translator = FormulaTranslator(tree)
        for name in tree.basic_events:
            importance = structural_importance(tree, name)
            assert superfluous(translator, name) == (importance == 0)
