"""Array-native kernel storage: cross-validation, snapshots, sweeps.

The kernel rewrite moved nodes into contiguous ``array('q')`` columns
behind an open-addressed unique table, with packed-key computed tables
and a vectorised multi-profile probability sweep.  The public ``Ref``
surface is unchanged, so these tests pin the storage semantics through
it:

* hypothesis cross-validation against :class:`ReferenceSemantics` with
  ``collect()`` / ``sift_inplace()`` / ``move_to_level()`` interleaved
  between checks — the operations that rewire or reclaim slots;
* snapshot round-trips over the array format: complement roots, stores
  with post-GC holes, stores that resized the unique table, and the
  binary (v2) payload including its byteorder guard;
* ``probability_many`` (single- and multi-root, numpy and pure-Python
  fallback) against column-by-column :meth:`probability` calls;
* the open-addressed observability counters surfaced in
  ``cache_stats()`` and the batch report's ``tables`` block.
"""

from __future__ import annotations

import gc as pygc
import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.bdd import _nputil
from repro.checker import FormulaTranslator, check
from repro.errors import SnapshotError
from repro.logic import ReferenceSemantics
from repro.casestudy import build_covid_tree
from repro.service import BatchAnalyzer

from bfl_strategies import formulas_for, small_trees


def _assert_matches_reference(translator, semantics, formula, tree):
    names = list(tree.basic_events)
    for bits in itertools.product((False, True), repeat=len(names)):
        vector = dict(zip(names, bits))
        assert check(translator, formula, vector) == semantics.holds(
            formula, vector
        )


class TestCrossValidationUnderStorageChurn:
    """Reference semantics must survive reclaim + rewire interleaving."""

    @given(data=st.data(), tree=small_trees(max_basic_events=4))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )
    def test_collect_sift_move_interleaved(self, data, tree):
        translator = FormulaTranslator(tree)
        semantics = ReferenceSemantics(tree)
        manager = translator.manager
        formula = data.draw(formulas_for(tree))
        translator.bdd(formula)

        # collect() sweeps dead slots onto the free list and rebuilds
        # the open-addressed table tombstone-free.
        pygc.collect()
        manager.collect()
        manager.check_invariants()
        _assert_matches_reference(translator, semantics, formula, tree)

        # sift_inplace() swaps adjacent levels in place (unique-table
        # deletes + re-inserts on live slots).
        manager.sift_inplace(max_rounds=1)
        manager.check_invariants()
        _assert_matches_reference(translator, semantics, formula, tree)

        # move_to_level() exercises the directed swap chain.
        name = data.draw(st.sampled_from(list(tree.basic_events)))
        level = data.draw(
            st.integers(min_value=0, max_value=len(manager.variables) - 1)
        )
        manager.move_to_level(name, level)
        manager.check_invariants()
        _assert_matches_reference(translator, semantics, formula, tree)

        # And once more after a second reclaim, post-reorder.
        pygc.collect()
        manager.collect()
        manager.check_invariants()
        _assert_matches_reference(translator, semantics, formula, tree)


def _holes_manager():
    """A manager whose store has free-list holes from a real GC."""
    manager = BDDManager(["a", "b", "c", "d", "e"])
    keep = manager.or_(
        manager.and_(manager.var("a"), manager.var("b")),
        manager.negate(manager.var("e")),
    )
    junk = [
        manager.and_(manager.var(x), manager.negate(manager.var(y)))
        for x, y in [("c", "d"), ("b", "c"), ("a", "e"), ("d", "a")]
    ]
    junk_count = len(junk)
    del junk
    pygc.collect()
    assert manager.collect() > 0, "expected the junk to be reclaimable"
    return manager, keep, junk_count


class TestArraySnapshotRoundTrips:
    def test_complement_roots_round_trip_binary(self):
        manager = BDDManager(["x", "y", "z"])
        f = manager.or_(manager.var("x"), manager.and_(manager.var("y"), manager.var("z")))
        snapshot = manager.save_snapshot(roots={"f": f, "nf": ~f}, binary=True)
        assert snapshot["version"] == 2
        assert isinstance(snapshot["levels"], bytes)
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        assert roots["nf"] is ~roots["f"]
        for bits in itertools.product((False, True), repeat=3):
            vector = dict(zip(("x", "y", "z"), bits))
            assert reloaded.evaluate(roots["f"], vector) == manager.evaluate(
                f, vector
            )
            assert reloaded.evaluate(roots["nf"], vector) != reloaded.evaluate(
                roots["f"], vector
            )

    @pytest.mark.parametrize("binary", [False, True])
    def test_post_gc_holes_compact_away(self, binary):
        manager, keep, _ = _holes_manager()
        snapshot = manager.save_snapshot(roots={"keep": keep}, binary=binary)
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        # The reloaded store is dense: exactly the reachable nodes plus
        # the terminal, no holes shipped.
        assert reloaded.node_count() == manager.reachable_node_count()
        for bits in itertools.product((False, True), repeat=5):
            vector = dict(zip(("a", "b", "c", "d", "e"), bits))
            assert reloaded.evaluate(roots["keep"], vector) == manager.evaluate(
                keep, vector
            )

    @pytest.mark.parametrize("binary", [False, True])
    def test_resized_unique_table_round_trips(self, binary):
        # Enough distinct nodes to force open-addressed growth past the
        # initial capacity (load is kept <= 1/2).
        names = [f"v{i:02d}" for i in range(24)]
        manager = BDDManager(names)
        acc = manager.false
        refs = []
        for i in range(0, 24, 2):
            pair = manager.and_(manager.var(names[i]), manager.var(names[i + 1]))
            refs.append(pair)
            acc = manager.or_(acc, pair)
        before = manager.cache_stats()
        assert before["unique_capacity"] >= 1024
        snapshot = manager.save_snapshot(roots={"acc": acc}, binary=binary)
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        stats = reloaded.cache_stats()
        # Rebuilt table honours the load-factor invariant for the
        # adopted population.
        assert stats["unique_capacity"] >= 2 * stats["unique_table_size"]
        vector = {name: False for name in names}
        assert reloaded.evaluate(roots["acc"], vector) is False
        vector[names[0]] = vector[names[1]] = True
        assert reloaded.evaluate(roots["acc"], vector) is True

    def test_binary_and_list_snapshots_agree(self):
        manager, keep, _ = _holes_manager()
        v1 = manager.save_snapshot(roots={"keep": keep})
        v2 = manager.save_snapshot(roots={"keep": keep}, binary=True)
        m1, r1 = BDDManager.load_snapshot(v1)
        m2, r2 = BDDManager.load_snapshot(v2)
        assert m1.node_count() == m2.node_count()
        for bits in itertools.product((False, True), repeat=5):
            vector = dict(zip(("a", "b", "c", "d", "e"), bits))
            assert m1.evaluate(r1["keep"], vector) == m2.evaluate(
                r2["keep"], vector
            )

    def test_foreign_byteorder_is_rejected(self):
        manager = BDDManager(["x"])
        f = manager.var("x")
        snapshot = manager.save_snapshot(roots={"f": f}, binary=True)
        snapshot["byteorder"] = (
            "big" if snapshot["byteorder"] == "little" else "little"
        )
        with pytest.raises(SnapshotError):
            BDDManager.load_snapshot(snapshot)

    def test_truncated_binary_column_is_rejected(self):
        manager = BDDManager(["x", "y"])
        f = manager.and_(manager.var("x"), manager.var("y"))
        snapshot = manager.save_snapshot(roots={"f": f}, binary=True)
        snapshot["lows"] = snapshot["lows"][:-8]
        with pytest.raises(SnapshotError):
            BDDManager.load_snapshot(snapshot)


def _sweep_fixture():
    manager = BDDManager(["a", "b", "c", "d"])
    f = manager.or_(
        manager.and_(manager.var("a"), manager.var("b")),
        manager.and_(manager.var("c"), manager.negate(manager.var("d"))),
    )
    profiles = [
        {"a": 0.1, "b": 0.9, "c": 0.5, "d": 0.25},
        {"a": 0.7, "b": 0.2, "c": 0.05, "d": 0.6},
        {"a": 0.0, "b": 1.0, "c": 1.0, "d": 0.0},
        {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5},
    ]
    return manager, f, profiles


class TestProbabilityMany:
    def test_matches_column_by_column(self):
        manager, f, profiles = _sweep_fixture()
        swept = manager.probability_many(f, profiles)
        for value, profile in zip(swept, profiles):
            assert value == pytest.approx(
                manager.probability(f, profile), abs=1e-12
            )
        # Complemented root: every column is the complement measure.
        swept_neg = manager.probability_many(~f, profiles)
        for a, b in zip(swept, swept_neg):
            assert a + b == pytest.approx(1.0, abs=1e-12)

    def test_multi_root_rows_match_single_calls(self):
        manager, f, profiles = _sweep_fixture()
        g = manager.and_(manager.var("a"), manager.var("d"))
        rows = manager.probability_many(
            [f, ~f, g, manager.true, manager.false], profiles
        )
        for root, row in zip(
            [f, ~f, g, manager.true, manager.false], rows
        ):
            assert row == pytest.approx(
                manager.probability_many(root, profiles), abs=1e-12
            )
        assert rows[3] == [1.0] * len(profiles)
        assert rows[4] == [0.0] * len(profiles)

    def test_terminal_and_empty_cases(self):
        manager, f, profiles = _sweep_fixture()
        assert manager.probability_many(manager.true, profiles) == [1.0] * 4
        assert manager.probability_many(manager.false, profiles) == [0.0] * 4
        assert manager.probability_many(f, []) == []
        assert manager.probability_many([], profiles) == []
        assert manager.probability_many([f, ~f], []) == [[], []]

    def test_missing_weight_raises_like_probability(self):
        from repro.errors import MissingWeightError

        manager, f, profiles = _sweep_fixture()
        bad = [profiles[0], {"a": 0.5}]
        with pytest.raises(MissingWeightError):
            manager.probability_many(f, bad)

    def test_fallback_agrees_with_numpy_path(self, monkeypatch):
        manager, f, profiles = _sweep_fixture()
        g = manager.and_(manager.var("a"), manager.var("d"))
        vectorised = manager.probability_many([f, ~f, g], profiles)
        monkeypatch.setattr(_nputil, "np", None)
        fallback = manager.probability_many([f, ~f, g], profiles)
        for row_a, row_b in zip(vectorised, fallback):
            assert row_a == pytest.approx(row_b, abs=1e-12)
        single = manager.probability_many(f, profiles)
        assert single == pytest.approx(vectorised[0], abs=1e-12)


class TestOpenAddressedObservability:
    def test_cache_stats_reports_table_health(self):
        manager = BDDManager(["a", "b", "c"])
        manager.or_(manager.var("a"), manager.and_(manager.var("b"), manager.var("c")))
        stats = manager.cache_stats()
        assert stats["unique_capacity"] >= stats["unique_table_size"] * 2
        assert stats["unique_capacity"] & (stats["unique_capacity"] - 1) == 0
        for key in (
            "ut_collisions",
            "ut_resizes",
            "ut_max_probe",
            "cache_capacity",
            "cache_evictions",
            "cache_resizes",
        ):
            assert key in stats and stats[key] >= 0

    def test_batch_report_surfaces_tables_block(self):
        tree = build_covid_tree()
        analyzer = BatchAnalyzer(tree, uniform=0.03)
        report = analyzer.run(["exists MCS(IWoS)", "P(MoT) >= 0.5"])
        tables = report.stats["scenarios"]["default"]["tables"]
        unique = tables["unique"]
        assert unique["capacity"] >= 2 * unique["entries"]
        assert unique["entries"] > 0
        assert unique["max_probe"] >= 0
        caches = tables["caches"]
        assert caches["capacity"] > 0
        assert caches["evictions"] >= 0
        assert caches["resizes"] >= 0
        # The stats block round-trips through the JSON report.
        assert "tables" in report.to_dict()["stats"]["scenarios"]["default"]


class TestInvariantsAfterEverything:
    def test_gc_sift_snapshot_reload_chain(self):
        from repro.logic.parser import parse_formula

        tree = build_covid_tree()
        translator = FormulaTranslator(tree)
        top = translator.bdd(parse_formula("MCS(IWoS)"))
        manager = translator.manager
        pygc.collect()
        manager.collect()
        manager.check_invariants()
        manager.sift_inplace(max_rounds=1)
        manager.check_invariants()
        snapshot = manager.save_snapshot(roots={"top": top}, binary=True)
        reloaded, roots = BDDManager.load_snapshot(snapshot)
        reloaded.check_invariants()
        vector = {name: True for name in tree.basic_events}
        assert reloaded.evaluate(roots["top"], vector) == manager.evaluate(
            top, vector
        )
