"""Error hierarchy and end-to-end integration workflows."""

import pytest

from repro import errors
from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.ft import dumps, loads
from repro.logic import MinimalityScope, parse
from repro.viz import counterexample_view, propagation_view


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.BDDError,
            errors.VariableError,
            errors.ManagerMismatchError,
            errors.FaultTreeError,
            errors.WellFormednessError,
            errors.UnknownElementError,
            errors.GateArityError,
            errors.GalileoFormatError,
            errors.LogicError,
            errors.BFLSyntaxError,
            errors.LayerError,
            errors.StatusVectorError,
            errors.CheckerError,
            errors.NoCounterexampleError,
            errors.SynthesisError,
        ],
    )
    def test_everything_derives_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_unknown_element_is_also_a_key_error(self):
        assert issubclass(errors.UnknownElementError, KeyError)

    def test_syntax_error_carries_position(self):
        error = errors.BFLSyntaxError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)


class TestGalileoToAnalysisWorkflow:
    """Author a tree as text, round-trip it, analyse it, explain a failure."""

    TEXT = """
    toplevel "plant";
    "plant" and "power" "cooling";
    "power" or "grid" "generator";
    "cooling" 2of3 "pumpA" "pumpB" "pumpC";
    "grid" prob=0.01;
    "generator" prob=0.05;
    """

    def test_full_workflow(self):
        tree = loads(self.TEXT)
        tree = loads(dumps(tree))  # round-trip
        checker = ModelChecker(tree)

        # Qualitative analysis.
        mcs = checker.minimal_cut_sets()
        assert frozenset({"grid", "pumpA", "pumpB"}) in mcs
        assert len(mcs) == 6  # {grid | generator} x one of three pump pairs

        # What-if scenario: grid already lost.
        conditioned = checker.satisfaction_set(
            'MCS(plant)[grid := 1]'
        )
        assert conditioned

        # A failed check, explained by a counterexample.
        formula = parse('MCS(plant)')
        vector = tree.vector_from_failed(
            ["grid", "generator", "pumpA", "pumpB", "pumpC"]
        )
        assert not checker.check(formula, vector=vector)
        cex = checker.counterexample(formula, vector=vector)
        assert checker.check(formula, vector=cex.vector)
        view = counterexample_view(tree, cex)
        assert "counterexample" in view

    def test_layer2_on_authored_tree(self):
        tree = loads(self.TEXT)
        checker = ModelChecker(tree)
        assert checker.check("forall (plant => power)")
        assert checker.check("IDP(power, cooling)")
        assert not checker.check("SUP(pumpA)")


class TestCovidEndToEnd:
    def test_scenario_pipeline(self):
        tree = build_covid_tree()
        checker = ModelChecker(tree)

        # Scenario: procedures respected (H1 operational) — the TLE becomes
        # unreachable, matching the {H1} MPS.
        assert not checker.check("exists (IWoS[H1 := 0])")

        # Scenario: vulnerable worker removed.
        assert not checker.check("exists (IWoS[VW := 0])")

        # Propagation view for a concrete MCS.
        mcs = checker.minimal_cut_sets()[0]
        view = propagation_view(tree, tree.vector_from_failed(mcs))
        assert "IWoS: FAILS" in view

    def test_scope_switch_preserves_tle_results(self):
        support = ModelChecker(build_covid_tree())
        full = ModelChecker(
            build_covid_tree(), scope=MinimalityScope.FULL
        )
        assert support.minimal_cut_sets() == full.minimal_cut_sets()
