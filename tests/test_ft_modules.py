"""Module detection and its connection to BFL's IDP operator."""

import pytest
from hypothesis import given, settings

from repro.casestudy import build_covid_tree
from repro.checker import ModelChecker
from repro.ft import (
    FaultTreeBuilder,
    figure1_tree,
    is_module,
    modularization_report,
    modules,
)

from bfl_strategies import small_trees


class TestCovidModules:
    @pytest.fixture(scope="class")
    def tree(self):
        return build_covid_tree()

    def test_exactly_the_self_contained_gates(self, tree):
        # AM = OR(AB, MV) and CVT = OR(UT) touch events used nowhere else;
        # every other gate shares IW / IT / H1 / PP with the rest of Fig. 2.
        assert modules(tree) == frozenset({"AM", "CVT", "IWoS"})

    def test_top_is_always_a_module(self, tree):
        assert is_module(tree, tree.top)

    def test_shared_leaf_is_not_a_module(self, tree):
        assert not is_module(tree, "H1")
        assert is_module(tree, "VW")  # occurs once

    def test_report_lists_every_gate(self, tree):
        report = modularization_report(tree)
        assert len(report) == len(tree.gate_names)
        assert any("module" in line for line in report)
        assert any("shared" in line for line in report)


class TestFig1Modules:
    def test_every_gate_is_a_module(self):
        # Fig. 1 has no repeated events, so all gates are modules.
        tree = figure1_tree()
        assert modules(tree) == frozenset({"CP", "CR", "CP/R"})


class TestModulesImplyIndependence:
    def test_disjoint_modules_are_idp(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c", "d")
            .and_gate("left", "a", "b")
            .or_gate("right", "c", "d")
            .or_gate("top", "left", "right")
            .build("top")
        )
        assert is_module(tree, "left") and is_module(tree, "right")
        checker = ModelChecker(tree)
        assert checker.check("IDP(left, right)")

    @given(tree=small_trees(max_basic_events=5))
    @settings(max_examples=40, deadline=None)
    def test_disjoint_modules_are_idp_random(self, tree):
        found = [g for g in modules(tree) if g != tree.top]
        checker = ModelChecker(tree)
        for i, first in enumerate(found):
            for second in found[i + 1:]:
                below_first = tree.basic_descendants(first)
                below_second = tree.basic_descendants(second)
                if below_first & below_second:
                    continue  # nested modules may share events
                result = checker.check(f'IDP("{first}", "{second}")')
                assert result, (first, second)


class TestSharingBreaksModules:
    def test_gate_sharing_a_leaf_is_not_a_module(self):
        tree = (
            FaultTreeBuilder()
            .basic_events("a", "b", "c")
            .and_gate("g1", "a", "b")
            .and_gate("g2", "b", "c")
            .or_gate("top", "g1", "g2")
            .build("top")
        )
        assert not is_module(tree, "g1")
        assert not is_module(tree, "g2")
        assert modules(tree) == frozenset({"top"})
