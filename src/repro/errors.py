"""Shared exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch one base class.  Subpackages raise the most
specific subclass that applies; the hierarchy mirrors the package layout
(BDD engine, fault-tree model, BFL logic, model checker).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BDDError(ReproError):
    """Base class for errors raised by the ROBDD engine."""


class VariableError(BDDError):
    """An unknown, duplicate, or badly ordered BDD variable was used."""


class ManagerMismatchError(BDDError):
    """Two BDD nodes from different managers were combined."""


class MissingWeightError(BDDError):
    """A weighted-evaluation pass reached a variable with no weight."""


class SnapshotError(BDDError):
    """A kernel snapshot is malformed or does not fit its target."""


class FaultTreeError(ReproError):
    """Base class for errors in fault-tree construction or analysis."""


class WellFormednessError(FaultTreeError):
    """The fault tree violates Def. 1 (cycle, unreachable node, bad root)."""


class UnknownElementError(FaultTreeError, KeyError):
    """A fault-tree element name does not exist in the tree."""


class GateArityError(FaultTreeError):
    """A gate has an illegal number of children (e.g. VOT(k/N) with N kids)."""


class GalileoFormatError(FaultTreeError):
    """A Galileo-format fault-tree file could not be parsed."""


class LogicError(ReproError):
    """Base class for errors in BFL formula construction or evaluation."""


class BFLSyntaxError(LogicError):
    """The BFL DSL parser rejected the input text."""

    def __init__(self, message: str, line: int = 1, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class LayerError(LogicError):
    """A layer-2 construct (quantifier/IDP) was nested inside a formula."""


class StatusVectorError(LogicError):
    """A status vector does not match the tree's basic events."""


class CheckerError(ReproError):
    """Base class for model-checking errors."""


class NoCounterexampleError(CheckerError):
    """Algorithm 4 cannot produce a counterexample (formula unsatisfiable)."""


class SynthesisError(CheckerError):
    """No satisfying fault tree could be synthesised (Sec. V-E)."""
