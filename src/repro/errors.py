"""Shared exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch one base class.  Subpackages raise the most
specific subclass that applies; the hierarchy mirrors the package layout
(BDD engine, fault-tree model, BFL logic, model checker).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class BDDError(ReproError):
    """Base class for errors raised by the ROBDD engine."""


class VariableError(BDDError):
    """An unknown, duplicate, or badly ordered BDD variable was used."""


class ManagerMismatchError(BDDError):
    """Two BDD nodes from different managers were combined."""


class MissingWeightError(BDDError):
    """A weighted-evaluation pass reached a variable with no weight."""


class SnapshotError(BDDError):
    """A kernel snapshot is malformed or does not fit its target."""


class ExecutionError(ReproError):
    """Base class for runtime-governance and fault-tolerance errors.

    These mark *execution* failures — budgets, deadlines, dead workers,
    corrupt caches — rather than modelling errors.  Every subclass
    carries a stable machine-readable :attr:`kind` string so batch
    reports can classify failures structurally (``error_kind``) instead
    of forcing callers to parse free-text messages.
    """

    #: Stable machine-readable discriminator, mirrored into
    #: ``QueryResult.error_kind`` by the batch service.
    kind = "execution"


class ResourceLimitError(ExecutionError):
    """A governed operation exceeded its node or apply-step budget."""

    kind = "resource-limit"


class QueryDeadlineError(ExecutionError):
    """A governed operation exceeded its wall-clock deadline."""

    kind = "deadline"


class WorkerCrashError(ExecutionError):
    """A parallel worker process died (crash or watchdog timeout).

    Attributes:
        traceback_text: Worker-side traceback when one was captured
            (None for hard crashes, which leave no Python frame behind).
    """

    kind = "worker-crash"

    def __init__(self, message: str, traceback_text: "str | None" = None) -> None:
        super().__init__(message)
        self.traceback_text = traceback_text


class RateLimitError(ExecutionError):
    """The analysis server's token bucket rejected a request.

    Attributes:
        retry_after_ms: Suggested wait before retrying (time until the
            bucket refills one token).
    """

    kind = "rate-limited"

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServerBusyError(ExecutionError):
    """The analysis server's admission queue is full (or draining)."""

    kind = "server-busy"


class SnapshotIntegrityError(ExecutionError, SnapshotError):
    """A snapshot payload failed its sha256 content checksum (corrupt
    or truncated bytes).  Also a :class:`SnapshotError`, so existing
    ``except SnapshotError`` handlers keep working."""

    kind = "snapshot-integrity"


def error_kind(exc: BaseException) -> str:
    """The structured ``error_kind`` string for any exception the batch
    service reports: the :class:`ExecutionError` ``kind`` when there is
    one, else the exception class name (stable and greppable)."""
    if isinstance(exc, ExecutionError):
        return exc.kind
    return type(exc).__name__


class QuerySpecError(ReproError):
    """A query specification is malformed.

    Raised by the service layer (``QuerySpec`` validation, battery
    normalisation, governance-knob checks) and by the query-kind
    registry's per-kind validators.  Lives here so the registry — which
    the service layer imports — can raise it without a circular import;
    :mod:`repro.service.queries` re-exports it for compatibility.
    """


class FaultTreeError(ReproError):
    """Base class for errors in fault-tree construction or analysis."""


class WellFormednessError(FaultTreeError):
    """The fault tree violates Def. 1 (cycle, unreachable node, bad root)."""


class UnknownElementError(FaultTreeError, KeyError):
    """A fault-tree element name does not exist in the tree."""


class GateArityError(FaultTreeError):
    """A gate has an illegal number of children (e.g. VOT(k/N) with N kids)."""


class GalileoFormatError(FaultTreeError):
    """A Galileo-format fault-tree file could not be parsed."""


class LogicError(ReproError):
    """Base class for errors in BFL formula construction or evaluation."""


class BFLSyntaxError(LogicError):
    """The BFL DSL parser rejected the input text."""

    def __init__(self, message: str, line: int = 1, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class LayerError(LogicError):
    """A layer-2 construct (quantifier/IDP) was nested inside a formula."""


class StatusVectorError(LogicError):
    """A status vector does not match the tree's basic events."""


class CheckerError(ReproError):
    """Base class for model-checking errors."""


class NoCounterexampleError(CheckerError):
    """Algorithm 4 cannot produce a counterexample (formula unsatisfiable)."""


class SynthesisError(CheckerError):
    """No satisfying fault tree could be synthesised (Sec. V-E)."""
