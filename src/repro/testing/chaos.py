"""Deterministic fault injection for the execution runtime.

The chaos harness drives four failure modes through the production code
paths without any test-only branches in the hot loops:

* **Worker kills** — a worker process whose shard contains a listed
  query id calls ``os._exit(1)`` mid-shard, exactly once per marker
  file (so the retried shard succeeds on resubmission).
* **Snapshot corruption** — :func:`corrupt_snapshot` deterministically
  flips bytes in a saved kernel snapshot; ``BatchAnalyzer`` then
  detects the sha256 mismatch and degrades to a cold prewarm.
* **Delays** — a configurable sleep at shard start, for exercising the
  hung-worker watchdog.
* **Budget trips** — listed query ids get a one-step governor swapped
  in at evaluation time, forcing a structured ``resource-limit`` error.

Configuration crosses the process boundary (workers are separate
processes) via the ``REPRO_CHAOS`` environment variable holding a JSON
object:

.. code-block:: json

    {
        "kill_queries": ["q3"],
        "kill_marker": "/tmp/chaos-kill-q3",
        "delay_ms": 0,
        "budget_trip_queries": ["q5"],
        "trip_step_budget": 1
    }

Everything is deterministic: kills fire on the first worker that picks
up a listed query (the marker file's ``O_EXCL`` creation is the "only
once" latch), corruption is seeded, and budgets trip on the first tick.
Production modules only touch this module behind an
``os.environ.get("REPRO_CHAOS")`` check, so the disarmed cost is one
environment lookup.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..runtime.limits import Governor

__all__ = [
    "CHAOS_ENV",
    "chaos_config",
    "on_shard_start",
    "governor_for",
    "corrupt_snapshot",
    "corrupt_store_entry",
]

#: Environment variable carrying the JSON chaos configuration.
CHAOS_ENV = "REPRO_CHAOS"


def chaos_config() -> Optional[Dict[str, Any]]:
    """Parse :data:`CHAOS_ENV`; ``None`` when unset or unparseable.

    A malformed value is treated as "chaos disabled" rather than an
    error: the harness must never be able to crash production code.
    """
    raw = os.environ.get(CHAOS_ENV)
    if not raw:
        return None
    try:
        config = json.loads(raw)
    except ValueError:
        return None
    return config if isinstance(config, dict) else None


def _listed(config: Mapping[str, Any], key: str) -> List[str]:
    value = config.get(key)
    if not isinstance(value, (list, tuple)):
        return []
    return [str(item) for item in value]


def on_shard_start(query_ids: Sequence[str]) -> None:
    """Worker-side hook: maybe delay, maybe die.

    Called by ``_worker_run`` before a shard evaluates.  A kill only
    fires while the marker file does not exist; the ``O_EXCL`` create
    makes "first worker to reach a listed query" a race-free latch, so
    the resubmitted shard runs to completion.
    """
    config = chaos_config()
    if config is None:
        return
    delay_ms = config.get("delay_ms")
    if isinstance(delay_ms, (int, float)) and delay_ms > 0:
        time.sleep(delay_ms / 1000.0)
    kill_queries = set(_listed(config, "kill_queries"))
    if kill_queries and kill_queries.intersection(query_ids):
        marker = config.get("kill_marker")
        if isinstance(marker, str) and marker:
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return  # already killed once; let the retry succeed
            os.close(fd)
        # A real crash, not an exception: the parent sees the broken
        # pool exactly as it would for a segfaulted worker.
        os._exit(1)


def governor_for(query_id: str) -> Optional[Governor]:
    """Return a budget-tripping governor for *query_id*, if listed.

    The batch evaluator calls this (behind the env check) after
    installing the query's real governor; a non-``None`` return replaces
    it, so the query aborts with a structured ``resource-limit`` error
    at its first governed safe point.
    """
    config = chaos_config()
    if config is None:
        return None
    if query_id not in _listed(config, "budget_trip_queries"):
        return None
    budget = config.get("trip_step_budget", 1)
    if not isinstance(budget, int) or budget < 1:
        budget = 1
    governor = Governor(
        step_budget=budget, label=f"chaos budget trip [{query_id}]"
    ).start()
    # Pre-burn the whole budget so the *first* governed safe point the
    # query reaches raises — deterministic even for queries whose
    # evaluation is served from caches and never allocates a node.
    for _ in range(budget):
        governor.tick()
    return governor


def corrupt_snapshot(
    snapshot: Mapping[str, Any], seed: int = 0, flips: int = 8
) -> Dict[str, Any]:
    """Return a copy of *snapshot* with deterministically flipped bytes.

    Targets the first column payload it finds (``bytes`` for v2
    snapshots, an int list for v1), leaving the stored ``sha256``
    untouched — exactly the shape of on-disk bit rot the integrity
    check exists to catch.  Flips are drawn from ``random.Random(seed)``
    so a failing chaos run reproduces byte-for-byte.  Service-level
    entries (``BatchAnalyzer.kernel_snapshots``) nest the kernel payload
    under a ``"kernel"`` key; that wrapper is handled transparently.
    """
    if "kernel" in snapshot and isinstance(snapshot["kernel"], Mapping):
        wrapper = dict(snapshot)
        wrapper["kernel"] = corrupt_snapshot(
            wrapper["kernel"], seed=seed, flips=flips
        )
        return wrapper
    corrupted: Dict[str, Any] = dict(snapshot)
    rng = random.Random(seed)
    for key in ("levels", "lows", "highs"):
        column = corrupted.get(key)
        if isinstance(column, (bytes, bytearray)) and len(column) > 0:
            mutable = bytearray(column)
            for _ in range(max(1, flips)):
                position = rng.randrange(len(mutable))
                mutable[position] ^= 1 + rng.randrange(255)
            corrupted[key] = bytes(mutable)
            return corrupted
        if isinstance(column, list) and column:
            mutated = list(column)
            for _ in range(max(1, flips)):
                position = rng.randrange(len(mutated))
                item = mutated[position]
                if isinstance(item, int):
                    mutated[position] = item ^ (1 + rng.randrange(255))
            corrupted[key] = mutated
            return corrupted
    raise ValueError("snapshot has no column payload to corrupt")


def corrupt_store_entry(
    store: Any, fingerprint: str, seed: int = 0, flips: int = 8
) -> None:
    """Bit-rot one :class:`~repro.service.store.SnapshotStore` entry
    in place.

    The rewritten file stays valid JSON with a valid format stamp — only
    the kernel's column bytes are flipped (via :func:`corrupt_snapshot`)
    — so the corruption is *not* caught by the store's shape checks and
    must instead surface as the kernel's sha256 integrity failure when a
    server (or analyzer) tries to warm-start from it.  That is the
    production path this hook exists to exercise: a long-lived daemon
    whose warm tier rotted underneath it has to degrade to a cold build
    and keep answering.
    """
    from ..service.store import _decode, _encode

    entry_path = store.path / f"{fingerprint}.json"
    with open(entry_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    kernel = _decode(data["kernel"])
    data["kernel"] = _encode(
        corrupt_snapshot(kernel, seed=seed, flips=flips)
    )
    with open(entry_path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
        handle.write("\n")
