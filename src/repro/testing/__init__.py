"""Test-support utilities shipped with the package.

Only :mod:`repro.testing.chaos` lives here for now — the deterministic
fault-injection harness used by the chaos test suite and the ``chaos``
benchmark gate.  Production code never imports this package unless the
``REPRO_CHAOS`` environment variable is set.
"""

from __future__ import annotations

__all__ = ["chaos"]
