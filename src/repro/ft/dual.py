"""Dual fault trees.

The *dual* of a fault tree swaps AND and OR gates (and maps VOT(k/N) to
VOT(N-k+1/N)).  Its structure function is ``Phi_d(b) = not Phi(not b)``, and
a classical result links it to the path sets: **the minimal cut sets of the
dual tree are exactly the minimal path sets of the original** — which is the
cleanest way to see why the paper's MPS operator must be the inclusion-wise
*dual* of MCS (DESIGN.md deviation 1).  The property is verified by tests
and by a hypothesis property over random trees.
"""

from __future__ import annotations

from .elements import Gate, GateType
from .tree import FaultTree


def dual_tree(tree: FaultTree) -> FaultTree:
    """The dual of ``tree`` (same elements, dualised gate types)."""
    basic = [tree.basic_event(name) for name in tree.basic_events]
    gates = []
    for name in tree.gate_names:
        gate = tree.gate(name)
        if gate.gate_type is GateType.AND:
            dual = Gate(
                name=gate.name,
                gate_type=GateType.OR,
                children=gate.children,
                description=gate.description,
            )
        elif gate.gate_type is GateType.OR:
            dual = Gate(
                name=gate.name,
                gate_type=GateType.AND,
                children=gate.children,
                description=gate.description,
            )
        else:
            n = gate.arity
            dual = Gate(
                name=gate.name,
                gate_type=GateType.VOT,
                children=gate.children,
                threshold=n - gate.threshold + 1,
                description=gate.description,
            )
        gates.append(dual)
    return FaultTree(basic_events=basic, gates=gates, top=tree.top)
