"""The small example fault trees that appear in the paper.

* :func:`figure1_tree` — Fig. 1, the CP/R excerpt of the COVID-19 tree
  (two AND gates under an OR top);
* :func:`figure3_or_tree` — Fig. 3 / Examples 2-3, a single OR gate with
  two basic events;
* :func:`table1_tree` — the tree of Sec. VI / Table I: ``e1 = AND(e2, e3)``
  with ``e3 = OR(e4, e5)`` (reconstructed from the example/counterexample
  vectors, see DESIGN.md);
* :func:`example_vot_tree` — a VOT(2/3) specimen used throughout the tests.

The full COVID-19 tree of Fig. 2 lives in :mod:`repro.casestudy.covid`.
"""

from __future__ import annotations

from .builder import FaultTreeBuilder
from .tree import FaultTree


def figure1_tree() -> FaultTree:
    """Fig. 1: Existence of COVID-19 Pathogens/Reservoir.

    MCSs: {IW, H3}, {IT, H2}.
    MPSs: {IW, IT}, {IW, H2}, {H3, IT}, {H3, H2}.
    """
    return (
        FaultTreeBuilder()
        .basic_event("IW", "Infected worker joining the team")
        .basic_event("H3", "Detection error")
        .basic_event("IT", "Infected object used by the team")
        .basic_event("H2", "General disinfection error")
        .and_gate("CP", "IW", "H3", description="Existence of COVID-19 Pathogens")
        .and_gate("CR", "IT", "H2", description="Existence of COVID-19 Reservoir")
        .or_gate(
            "CP/R",
            "CP",
            "CR",
            description="Existence of COVID-19 Pathogens/Reservoir",
        )
        .build("CP/R")
    )


def figure3_or_tree() -> FaultTree:
    """Fig. 3: a single OR gate over ``e1`` and ``e2``.

    Used by the paper's Examples 2 and 3: for ``MCS(e_top)``, ``b = (0, 1)``
    satisfies, and AllSat yields exactly ``(0, 1)`` and ``(1, 0)``.
    """
    return (
        FaultTreeBuilder()
        .basic_events("e1", "e2")
        .or_gate("Top", "e1", "e2")
        .build("Top")
    )


def table1_tree() -> FaultTree:
    """The Sec. VI / Table I tree: ``e1 = AND(e2, OR(e4, e5))``.

    Vectors in Table I order the basic events ``(e2, e4, e5)``.
    MCSs of e1: {e2, e4}, {e2, e5};  MPSs of e1: {e2}, {e4, e5}.
    """
    return (
        FaultTreeBuilder()
        .basic_events("e2", "e4", "e5")
        .or_gate("e3", "e4", "e5")
        .and_gate("e1", "e2", "e3")
        .build("e1")
    )


def example_vot_tree() -> FaultTree:
    """A VOT(2/3) gate over three basic events (the paper's Def. 1
    GateTypes extension); MCSs are the three pairs."""
    return (
        FaultTreeBuilder()
        .basic_events("a", "b", "c")
        .vot_gate("V", 2, "a", "b", "c")
        .build("V")
    )


def counterexample_section_tree() -> FaultTree:
    """The small tree used in Sec. VI's opening example: the Fig. 1 shape,
    where {IW, H3, IT} is a cut set but not minimal and the suitable
    counterexample is the contained MCS {IW, H3}."""
    return figure1_tree()
