"""The structure function ``Phi_T`` of a fault tree (paper Def. 2).

``Phi_T(b, e)`` gives the status (1 = failed) of element ``e`` under status
vector ``b``: a basic event takes its vector value, OR gates propagate a
failure if *some* child failed, AND gates if *all* children failed, and
VOT(k/N) gates if at least ``k`` children failed.

Evaluation is performed iteratively in a single bottom-up pass and shared
sub-DAGs are evaluated once, so it is linear in the tree size.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import UnknownElementError
from .elements import GateType
from .tree import FaultTree, StatusVector


def evaluate_all(tree: FaultTree, vector: StatusVector) -> Dict[str, bool]:
    """Status of *every* element of ``tree`` under ``vector``.

    This is the workhorse for the reference semantics, for failure
    propagation diagrams, and for the enumeration baselines.

    Args:
        tree: The fault tree.
        vector: Status vector over the tree's basic events.

    Returns:
        Mapping from every element name to its Boolean status.
    """
    tree.check_vector(vector)
    status: Dict[str, bool] = {
        name: bool(vector[name]) for name in tree.basic_events
    }
    # Iterative post-order over gates (the DAG may be deep and shared).
    stack = [(tree.top, False)]
    while stack:
        name, expanded = stack.pop()
        if name in status:
            continue
        if not expanded:
            stack.append((name, True))
            for child in tree.children(name):
                if child not in status:
                    stack.append((child, False))
            continue
        gate = tree.gate(name)
        child_values = [status[child] for child in gate.children]
        if gate.gate_type is GateType.OR:
            status[name] = any(child_values)
        elif gate.gate_type is GateType.AND:
            status[name] = all(child_values)
        else:  # VOT(k/N): sum of child statuses >= k (paper Sec. II).
            status[name] = sum(child_values) >= gate.threshold
    # Gates unreachable from the top do not exist in well-formed trees, but
    # evaluate them anyway for robustness when called on sub-structures.
    for name in tree.gate_names:
        if name not in status:
            _evaluate_from(tree, name, status)
    return status


def _evaluate_from(tree: FaultTree, root: str, status: Dict[str, bool]) -> None:
    stack = [(root, False)]
    while stack:
        name, expanded = stack.pop()
        if name in status:
            continue
        if not expanded:
            stack.append((name, True))
            for child in tree.children(name):
                if child not in status:
                    stack.append((child, False))
            continue
        gate = tree.gate(name)
        child_values = [status[child] for child in gate.children]
        if gate.gate_type is GateType.OR:
            status[name] = any(child_values)
        elif gate.gate_type is GateType.AND:
            status[name] = all(child_values)
        else:
            status[name] = sum(child_values) >= gate.threshold


def structure_function(
    tree: FaultTree, vector: StatusVector, element: Optional[str] = None
) -> bool:
    """``Phi_T(b, e)`` — the paper's Def. 2.

    Args:
        tree: The fault tree ``T``.
        vector: The status vector ``b`` (True = failed).
        element: The element ``e``; defaults to the top level event.

    Returns:
        True iff the element fails under ``b``.
    """
    target = element if element is not None else tree.top
    if target not in tree:
        raise UnknownElementError(target)
    return evaluate_all(tree, vector)[target]
