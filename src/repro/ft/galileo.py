"""Galileo-style fault-tree exchange format.

The Galileo ``.dft`` dialect is the de-facto interchange format of the
fault-tree community (used by Storm, the model checker the paper's authors
employ for the case study).  We support its static subset::

    toplevel "IWoS";
    "IWoS" and "CP/R" "MoT" "SH";
    "CP/R" or "CP" "CR";
    "V"    2of3 "a" "b" "c";
    "IW"   prob=0.1;
    "H1";

* ``and`` / ``or`` / ``<k>of<N>`` introduce gates;
* any other line declares a basic event, optionally with ``prob=`` (other
  attributes such as ``lambda=`` or ``dorm=`` are accepted and ignored);
* ``//``, ``#`` and ``/* ... */`` comments are stripped; names may be
  quoted (needed for ``"CP/R"``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..errors import GalileoFormatError
from .elements import BasicEvent, Gate, GateType
from .tree import FaultTree

_VOT_RE = re.compile(r"^(\d+)of(\d+)$")
_TOKEN_RE = re.compile(r'"([^"]*)"|(\S+)')


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    lines = []
    for line in text.splitlines():
        for marker in ("//", "#"):
            index = line.find(marker)
            if index >= 0:
                line = line[:index]
        lines.append(line)
    return "\n".join(lines)


def _tokenize(statement: str) -> List[str]:
    tokens = []
    for quoted, bare in _TOKEN_RE.findall(statement):
        tokens.append(quoted if quoted else bare)
    return tokens


def loads(text: str) -> FaultTree:
    """Parse Galileo text into a validated :class:`FaultTree`.

    Raises:
        GalileoFormatError: On any syntactic problem (missing ``toplevel``,
            malformed statement, bad VOT arity, ...).
    """
    top: Optional[str] = None
    gates: List[Gate] = []
    basic: Dict[str, BasicEvent] = {}
    order: List[str] = []

    statements = [
        s.strip()
        for s in _strip_comments(text).split(";")
        if s.strip()
    ]
    if not statements:
        raise GalileoFormatError("empty Galileo document")

    for statement in statements:
        tokens = _tokenize(statement)
        if not tokens:
            continue
        head = tokens[0]
        if head == "toplevel":
            if len(tokens) != 2:
                raise GalileoFormatError(
                    f"malformed toplevel statement: {statement!r}"
                )
            if top is not None:
                raise GalileoFormatError("duplicate toplevel statement")
            top = tokens[1]
            continue
        if len(tokens) >= 2 and tokens[1] in ("and", "or"):
            children = tuple(tokens[2:])
            if not children:
                raise GalileoFormatError(
                    f"gate {head!r} has no children"
                )
            gate_type = GateType.AND if tokens[1] == "and" else GateType.OR
            gates.append(
                Gate(name=head, gate_type=gate_type, children=children)
            )
            continue
        vot = _VOT_RE.match(tokens[1]) if len(tokens) >= 2 else None
        if vot:
            k, n = int(vot.group(1)), int(vot.group(2))
            children = tuple(tokens[2:])
            if len(children) != n:
                raise GalileoFormatError(
                    f"VOT gate {head!r} declares {n} children "
                    f"but lists {len(children)}"
                )
            gates.append(
                Gate(
                    name=head,
                    gate_type=GateType.VOT,
                    children=children,
                    threshold=k,
                )
            )
            continue
        # Anything else declares a basic event with key=value attributes.
        probability: Optional[float] = None
        for attr in tokens[1:]:
            if "=" not in attr:
                raise GalileoFormatError(
                    f"unrecognised statement: {statement!r}"
                )
            key, _, value = attr.partition("=")
            if key == "prob":
                try:
                    probability = float(value)
                except ValueError:
                    raise GalileoFormatError(
                        f"bad probability {value!r} for {head!r}"
                    ) from None
        if head in basic:
            raise GalileoFormatError(f"duplicate basic event {head!r}")
        basic[head] = BasicEvent(name=head, probability=probability)
        order.append(head)

    if top is None:
        raise GalileoFormatError("missing toplevel statement")

    # Children that were never declared are implicit basic events (a common
    # shorthand in circulated .dft files).
    declared = set(basic) | {gate.name for gate in gates}
    for gate in gates:
        for child in gate.children:
            if child not in declared:
                basic[child] = BasicEvent(name=child)
                order.append(child)
                declared.add(child)

    return FaultTree(
        basic_events=[basic[name] for name in order],
        gates=gates,
        top=top,
    )


def _quote(name: str) -> str:
    return f'"{name}"'


def dumps(tree: FaultTree) -> str:
    """Serialise a tree to Galileo text (inverse of :func:`loads`)."""
    lines = [f"toplevel {_quote(tree.top)};"]
    for name in tree.gate_names:
        gate = tree.gate(name)
        children = " ".join(_quote(child) for child in gate.children)
        if gate.gate_type is GateType.VOT:
            kind = f"{gate.threshold}of{gate.arity}"
        else:
            kind = gate.gate_type.value
        lines.append(f"{_quote(name)} {kind} {children};")
    for name in tree.basic_events:
        be = tree.basic_event(name)
        if be.probability is not None:
            lines.append(f"{_quote(name)} prob={be.probability};")
        else:
            lines.append(f"{_quote(name)};")
    return "\n".join(lines) + "\n"


def load(path: str) -> FaultTree:
    """Parse a Galileo file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dump(tree: FaultTree, path: str) -> None:
    """Write ``tree`` to ``path`` in Galileo format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(tree))
