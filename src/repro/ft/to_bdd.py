"""Translation of fault trees to BDDs — the paper's ``Psi_FT`` (Def. 6).

``Psi_FT(e)`` maps an element to a BDD over the basic events::

    Psi(e) = B(e)                      if e is a basic event
    Psi(e) = OR  of Psi(children)      if t(e) = OR
    Psi(e) = AND of Psi(children)      if t(e) = AND
    Psi(e) = at-least-k combination    if t(e) = VOT(k/N)

Results are cached per (manager, tree) in a :class:`TreeTranslator`, the
"store the resulting BDDs" device of Algorithm 1.
"""

from __future__ import annotations

from typing import (
    Container,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..bdd.manager import BDDManager
from ..bdd.ref import Ref
from ..errors import SnapshotError, VariableError
from .edits import changed_elements
from .elements import GateType
from .tree import FaultTree

#: Prefix of the placeholder variables :meth:`TreeTranslator.abstract_root`
#: declares.  Double underscores keep them out of any Galileo namespace;
#: they never appear in the support of a spliced result.
HOLE_PREFIX = "__hole__"


def hole_variable(site: str) -> str:
    """Name of the placeholder variable standing in for ``Psi(site)``."""
    return HOLE_PREFIX + site


class TreeTranslator:
    """Caching ``Psi_FT`` for one tree inside one manager.

    The manager must declare (at least) the tree's basic events.  Element
    BDDs are computed on demand and memoised, so repeated formulae over the
    same elements reuse earlier work — exactly the "simple caching" the
    paper prescribes for Algorithm 1.

    Element boundaries are safe points for the kernel's automatic memory
    management (no raw edge is held across them — every intermediate the
    translator needs is pinned by a cached Ref), so each :meth:`element`
    call ends with a :meth:`~repro.bdd.manager.BDDManager.checkpoint`;
    a no-op unless automatic GC/reordering was enabled on the manager
    (e.g. via :func:`tree_to_bdd`'s ``auto_gc``/``auto_reorder`` knobs or
    :meth:`~repro.bdd.manager.BDDManager.configure_memory`).
    """

    def __init__(self, tree: FaultTree, manager: BDDManager) -> None:
        self.tree = tree
        self.manager = manager
        declared = set(manager.variables)
        missing = [be for be in tree.basic_events if be not in declared]
        if missing:
            manager.declare(*missing)
        self._cache: Dict[str, Ref] = {}
        # site -> Psi(top) with the site's subtree abstracted into a
        # placeholder variable (see abstract_root); invalidated whenever
        # rebase changes any structure.
        self._abstract: Dict[str, Ref] = {}

    def element(self, name: str) -> Ref:
        """``Psi_FT(name)`` with memoisation."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        # Iterative post-order so deep/shared DAGs never hit the Python
        # recursion limit.
        stack: List[tuple] = [(name, False)]
        while stack:
            current, expanded = stack.pop()
            if current in self._cache:
                continue
            if self.tree.is_basic(current):
                self._cache[current] = self.manager.var(current)
                continue
            if not expanded:
                stack.append((current, True))
                for child in self.tree.children(current):
                    if child not in self._cache:
                        stack.append((child, False))
                continue
            self._cache[current] = self._combine(current)
        self.manager.checkpoint()
        return self._cache[name]

    def _combine(self, name: str) -> Ref:
        gate = self.tree.gate(name)
        return self._combine_operands(
            gate, [self._cache[child] for child in gate.children]
        )

    def _combine_operands(self, gate, operands: List[Ref]) -> Ref:
        if gate.gate_type is GateType.OR:
            return self.manager.disjoin(operands)
        if gate.gate_type is GateType.AND:
            return self.manager.conjoin(operands)
        return self.manager.threshold(operands, gate.threshold)

    # ------------------------------------------------------------------
    # Incremental update (the variant-sweep delta path)
    # ------------------------------------------------------------------

    def rebase(self, new_tree: FaultTree) -> FrozenSet[str]:
        """Retarget the translator at an edited tree, keeping every
        element BDD whose structure function is unchanged.

        The kept entries are exactly the elements outside
        :func:`repro.ft.edits.changed_elements` — their ``Psi_FT`` BDDs
        denote the same Boolean function over the same leaves in both
        trees, so the memo stays sound.  Dirty entries (and all memoised
        abstract roots) are dropped and re-lowered lazily on the next
        :meth:`element` call.

        Returns:
            The dirty element names (useful for invalidating downstream
            formula caches keyed on these elements).
        """
        if new_tree is self.tree:
            return frozenset()
        dirty = changed_elements(self.tree, new_tree)
        for name in dirty:
            self._cache.pop(name, None)
        if dirty:
            self._abstract.clear()
        self.tree = new_tree
        declared = set(self.manager.variables)
        missing = [
            be for be in new_tree.basic_events if be not in declared
        ]
        if missing:
            self.manager.declare(*missing)
            # Park each new event next to its siblings in the order
            # (cheap while node-free, like the splice placeholder): an
            # event appended at the bottom would otherwise force every
            # splice touching it to recombine through all the levels in
            # between.
            for be in missing:
                levels = [
                    self.manager.level_of(sibling)
                    for parent in new_tree.parents(be)
                    for sibling in new_tree.children(parent)
                    if sibling != be
                    and new_tree.is_basic(sibling)
                    and sibling in declared
                ]
                if levels:
                    self.manager.move_to_level(be, min(levels))
        return dirty

    def abstract_root(self, site: str) -> Ref:
        """``Psi(top)`` with the subtree at ``site`` replaced by a
        placeholder variable (memoised per site).

        The placeholder (:func:`hole_variable`) is declared on demand
        and parked just *above* the site subtree's own variables in the
        order (via :meth:`~repro.bdd.manager.BDDManager.move_to_level`,
        cheap while the placeholder has no nodes).  Placement does not
        affect what :meth:`splice` computes, only what it costs: with
        the hole above the substituted BDD's support the compose is a
        graft — walk ``g``, drop in the two cofactors — instead of an
        ITE recombination through every level between the hole and the
        root.  The result is a function of the basic events *and* the
        placeholder; substituting any BDD ``g`` for the placeholder
        (see :meth:`splice`) yields exactly the top BDD of a tree whose
        ``site`` subtree computes ``g`` — shared occurrences of
        ``site`` all route through the one variable.
        """
        cached = self._abstract.get(site)
        if cached is not None:
            return cached
        if site not in self.tree:
            raise VariableError(
                f"abstract_root: {site!r} is not an element of the tree"
            )
        hole = hole_variable(site)
        if hole not in set(self.manager.variables):
            self.manager.declare(hole)
        if site != self.tree.top:
            # Park the hole above the site BDD's support while it is
            # still node-free (the top case skips the probe: compose
            # against a bare placeholder is ``g`` wherever it sits).
            support = self.manager.support(self.element(site))
            if support:
                target = min(self.manager.level_of(v) for v in support)
                if self.manager.level_of(hole) > target:
                    self.manager.move_to_level(hole, target)
        placeholder = self.manager.var(hole)
        if site == self.tree.top:
            root = placeholder
        else:
            # Re-lower only the site's (transitive) parents against the
            # placeholder; every other element comes from the shared memo.
            dirty = self._ancestors(site)
            memo: Dict[str, Ref] = {site: placeholder}
            stack: List[tuple] = [(self.tree.top, False)]
            while stack:
                current, expanded = stack.pop()
                if current in memo:
                    continue
                if not expanded:
                    stack.append((current, True))
                    for child in self.tree.children(current):
                        if child in dirty and child not in memo:
                            stack.append((child, False))
                    continue
                gate = self.tree.gate(current)
                operands = [
                    memo[child]
                    if (child in dirty or child == site)
                    else self.element(child)
                    for child in gate.children
                ]
                memo[current] = self._combine_operands(gate, operands)
            root = memo[self.tree.top]
        self._abstract[site] = root
        self.manager.checkpoint()
        return root

    def splice(self, site: str, replacement: Ref) -> Ref:
        """Top BDD with ``Psi(site)`` substituted by ``replacement``.

        One memoised :meth:`~repro.bdd.manager.BDDManager.compose` call
        against the (cached) abstract root, so a sweep of many variants
        editing one site pays for one abstraction pass up front and a
        near-pure cache walk per variant afterwards.
        """
        root = self.abstract_root(site)
        result = self.manager.compose(root, hole_variable(site), replacement)
        self.manager.checkpoint()
        return result

    def _ancestors(self, name: str) -> FrozenSet[str]:
        seen: set = set()
        stack = [name]
        while stack:
            for parent in self.tree.parents(stack.pop()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return frozenset(seen)

    def top(self) -> Ref:
        """BDD of the top level event."""
        return self.element(self.tree.top)

    @property
    def cached_elements(self) -> Sequence[str]:
        """Element names translated so far (for cache-behaviour tests)."""
        return tuple(self._cache)

    def export_cache(self) -> Dict[str, Ref]:
        """Element-name -> BDD for everything translated so far.

        These are exactly the named roots a kernel snapshot should pin
        (see :meth:`repro.bdd.manager.BDDManager.save_snapshot`): the
        expensive, reusable part of a session is the per-element
        ``Psi_FT`` work, not the per-formula combinations on top.
        """
        return dict(self._cache)

    def adopt(self, cache: Mapping[str, Ref]) -> None:
        """Seed the element memo with pre-built BDDs.

        This is the warm-start half of the kernel-snapshot story: the
        roots returned by ``BDDManager.load_snapshot`` (saved from
        :meth:`export_cache`) drop straight back into the memo, so a
        fresh session skips ``Psi_FT`` entirely.

        Raises:
            SnapshotError: If a name is not an element of this tree or a
                handle belongs to a different manager — a snapshot taken
                from another tree must fail loudly, not answer queries
                from stale BDDs.
        """
        elements = set(self.tree.elements)
        for name, ref in cache.items():
            if name not in elements:
                raise SnapshotError(
                    f"snapshot root {name!r} is not an element of the "
                    f"tree {self.tree.top!r}"
                )
            self.manager._unwrap(ref)  # ownership check
            self._cache[name] = ref

    def adopt_from(
        self, other: "TreeTranslator", skip: Container[str] = frozenset()
    ) -> None:
        """Bulk-seed the memo from a sibling translator on the same
        manager, skipping ``skip`` (e.g. the dirty set of an edit) and
        names that are not elements of this translator's tree.

        The one-pass, no-copy counterpart of
        ``adopt(other.export_cache())`` for the copy-on-write fork
        path, where per-entry ownership checks are redundant (the
        handles live in the shared manager by construction) and the
        filtering would otherwise walk the element list three times.

        Raises:
            SnapshotError: If ``other`` is bound to a different manager.
        """
        if other.manager is not self.manager:
            raise SnapshotError(
                "adopt_from requires translators sharing one manager"
            )
        tree = self.tree
        cache = self._cache
        for name, ref in other._cache.items():
            if name not in skip and name in tree:
                cache[name] = ref


def tree_to_bdd(
    tree: FaultTree,
    manager: Optional[BDDManager] = None,
    element: Optional[str] = None,
    order: Optional[Sequence[str]] = None,
    auto_gc: bool = False,
    auto_reorder: bool = False,
) -> Ref:
    """One-shot convenience wrapper around :class:`TreeTranslator`.

    Args:
        tree: Fault tree to translate.
        manager: Target manager; a fresh one is created if omitted.
        element: Element to translate (default: the top level event).
        order: Variable order for a fresh manager (default: declaration
            order).  Ignored when ``manager`` is given.  Heuristic orders
            from :mod:`repro.bdd.ordering` make good *seeds* for the
            in-place sifter the ``auto_reorder`` knob arms.
        auto_gc: Arm the manager's automatic garbage collection (dead
            intermediate gate BDDs are reclaimed at element boundaries).
        auto_reorder: Arm automatic in-place sifting when live nodes grow
            past the manager's trigger.

    Returns:
        The BDD for ``Psi_FT(element)``.
    """
    if manager is None:
        manager = BDDManager(order if order is not None else tree.basic_events)
    if auto_gc or auto_reorder:
        # Unrequested knobs pass None so a pre-armed manager stays armed.
        manager.configure_memory(
            auto_gc=True if auto_gc else None,
            auto_reorder=True if auto_reorder else None,
        )
    translator = TreeTranslator(tree, manager)
    return translator.element(element if element is not None else tree.top)
