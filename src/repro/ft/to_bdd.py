"""Translation of fault trees to BDDs — the paper's ``Psi_FT`` (Def. 6).

``Psi_FT(e)`` maps an element to a BDD over the basic events::

    Psi(e) = B(e)                      if e is a basic event
    Psi(e) = OR  of Psi(children)      if t(e) = OR
    Psi(e) = AND of Psi(children)      if t(e) = AND
    Psi(e) = at-least-k combination    if t(e) = VOT(k/N)

Results are cached per (manager, tree) in a :class:`TreeTranslator`, the
"store the resulting BDDs" device of Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..bdd.manager import BDDManager
from ..bdd.ref import Ref
from ..errors import SnapshotError
from .elements import GateType
from .tree import FaultTree


class TreeTranslator:
    """Caching ``Psi_FT`` for one tree inside one manager.

    The manager must declare (at least) the tree's basic events.  Element
    BDDs are computed on demand and memoised, so repeated formulae over the
    same elements reuse earlier work — exactly the "simple caching" the
    paper prescribes for Algorithm 1.

    Element boundaries are safe points for the kernel's automatic memory
    management (no raw edge is held across them — every intermediate the
    translator needs is pinned by a cached Ref), so each :meth:`element`
    call ends with a :meth:`~repro.bdd.manager.BDDManager.checkpoint`;
    a no-op unless automatic GC/reordering was enabled on the manager
    (e.g. via :func:`tree_to_bdd`'s ``auto_gc``/``auto_reorder`` knobs or
    :meth:`~repro.bdd.manager.BDDManager.configure_memory`).
    """

    def __init__(self, tree: FaultTree, manager: BDDManager) -> None:
        self.tree = tree
        self.manager = manager
        declared = set(manager.variables)
        missing = [be for be in tree.basic_events if be not in declared]
        if missing:
            manager.declare(*missing)
        self._cache: Dict[str, Ref] = {}

    def element(self, name: str) -> Ref:
        """``Psi_FT(name)`` with memoisation."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        # Iterative post-order so deep/shared DAGs never hit the Python
        # recursion limit.
        stack: List[tuple] = [(name, False)]
        while stack:
            current, expanded = stack.pop()
            if current in self._cache:
                continue
            if self.tree.is_basic(current):
                self._cache[current] = self.manager.var(current)
                continue
            if not expanded:
                stack.append((current, True))
                for child in self.tree.children(current):
                    if child not in self._cache:
                        stack.append((child, False))
                continue
            self._cache[current] = self._combine(current)
        self.manager.checkpoint()
        return self._cache[name]

    def _combine(self, name: str) -> Ref:
        gate = self.tree.gate(name)
        operands = [self._cache[child] for child in gate.children]
        if gate.gate_type is GateType.OR:
            return self.manager.disjoin(operands)
        if gate.gate_type is GateType.AND:
            return self.manager.conjoin(operands)
        return self.manager.threshold(operands, gate.threshold)

    def top(self) -> Ref:
        """BDD of the top level event."""
        return self.element(self.tree.top)

    @property
    def cached_elements(self) -> Sequence[str]:
        """Element names translated so far (for cache-behaviour tests)."""
        return tuple(self._cache)

    def export_cache(self) -> Dict[str, Ref]:
        """Element-name -> BDD for everything translated so far.

        These are exactly the named roots a kernel snapshot should pin
        (see :meth:`repro.bdd.manager.BDDManager.save_snapshot`): the
        expensive, reusable part of a session is the per-element
        ``Psi_FT`` work, not the per-formula combinations on top.
        """
        return dict(self._cache)

    def adopt(self, cache: Mapping[str, Ref]) -> None:
        """Seed the element memo with pre-built BDDs.

        This is the warm-start half of the kernel-snapshot story: the
        roots returned by ``BDDManager.load_snapshot`` (saved from
        :meth:`export_cache`) drop straight back into the memo, so a
        fresh session skips ``Psi_FT`` entirely.

        Raises:
            SnapshotError: If a name is not an element of this tree or a
                handle belongs to a different manager — a snapshot taken
                from another tree must fail loudly, not answer queries
                from stale BDDs.
        """
        elements = set(self.tree.elements)
        for name, ref in cache.items():
            if name not in elements:
                raise SnapshotError(
                    f"snapshot root {name!r} is not an element of the "
                    f"tree {self.tree.top!r}"
                )
            self.manager._unwrap(ref)  # ownership check
            self._cache[name] = ref


def tree_to_bdd(
    tree: FaultTree,
    manager: Optional[BDDManager] = None,
    element: Optional[str] = None,
    order: Optional[Sequence[str]] = None,
    auto_gc: bool = False,
    auto_reorder: bool = False,
) -> Ref:
    """One-shot convenience wrapper around :class:`TreeTranslator`.

    Args:
        tree: Fault tree to translate.
        manager: Target manager; a fresh one is created if omitted.
        element: Element to translate (default: the top level event).
        order: Variable order for a fresh manager (default: declaration
            order).  Ignored when ``manager`` is given.  Heuristic orders
            from :mod:`repro.bdd.ordering` make good *seeds* for the
            in-place sifter the ``auto_reorder`` knob arms.
        auto_gc: Arm the manager's automatic garbage collection (dead
            intermediate gate BDDs are reclaimed at element boundaries).
        auto_reorder: Arm automatic in-place sifting when live nodes grow
            past the manager's trigger.

    Returns:
        The BDD for ``Psi_FT(element)``.
    """
    if manager is None:
        manager = BDDManager(order if order is not None else tree.basic_events)
    if auto_gc or auto_reorder:
        # Unrequested knobs pass None so a pre-armed manager stays armed.
        manager.configure_memory(
            auto_gc=True if auto_gc else None,
            auto_reorder=True if auto_reorder else None,
        )
    translator = TreeTranslator(tree, manager)
    return translator.element(element if element is not None else tree.top)
