"""Fault-tree formalism (paper Sec. II): model, structure function,
qualitative analysis, BDD translation, Galileo I/O and generators."""

from .analysis import (
    is_cut_set,
    is_minimal_cut_set,
    is_minimal_path_set,
    is_path_set,
    iter_vectors,
    minimal_cut_sets,
    minimal_cut_sets_enum,
    minimal_path_sets,
    minimal_path_sets_enum,
    minimize_sets,
    structural_importance,
)
from .builder import FaultTreeBuilder
from .dual import dual_tree
from .edits import (
    Edit,
    EditError,
    EventAdd,
    EventRemove,
    GateSwap,
    SubtreeReplace,
    WeightChange,
    apply_edits,
    changed_elements,
    changed_elements_from_edits,
    edit_from_dict,
    edits_from_any,
    signatures,
    splice_site,
)
from .elements import BasicEvent, Gate, GateType
from .examples import (
    example_vot_tree,
    figure1_tree,
    figure3_or_tree,
    table1_tree,
)
from .galileo import dump, dumps, load, loads
from .modules import is_module, modularization_report, modules
from .simplify import simplification_stats, simplify
from .random_trees import RandomTreeConfig, random_tree
from .structure import evaluate_all, structure_function
from .to_bdd import TreeTranslator, tree_to_bdd
from .tree import FaultTree, StatusVector

__all__ = [
    "BasicEvent",
    "Edit",
    "EditError",
    "EventAdd",
    "EventRemove",
    "FaultTree",
    "FaultTreeBuilder",
    "Gate",
    "GateSwap",
    "GateType",
    "RandomTreeConfig",
    "StatusVector",
    "SubtreeReplace",
    "TreeTranslator",
    "WeightChange",
    "apply_edits",
    "changed_elements",
    "changed_elements_from_edits",
    "dual_tree",
    "dump",
    "dumps",
    "edit_from_dict",
    "edits_from_any",
    "evaluate_all",
    "example_vot_tree",
    "figure1_tree",
    "figure3_or_tree",
    "is_cut_set",
    "is_minimal_cut_set",
    "is_minimal_path_set",
    "is_module",
    "is_path_set",
    "modularization_report",
    "modules",
    "iter_vectors",
    "load",
    "loads",
    "minimal_cut_sets",
    "minimal_cut_sets_enum",
    "minimal_path_sets",
    "minimal_path_sets_enum",
    "minimize_sets",
    "random_tree",
    "signatures",
    "splice_site",
    "simplification_stats",
    "simplify",
    "structural_importance",
    "structure_function",
    "table1_tree",
    "tree_to_bdd",
]
