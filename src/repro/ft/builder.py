"""Fluent builder for fault trees.

Example:
    >>> from repro.ft import FaultTreeBuilder
    >>> tree = (
    ...     FaultTreeBuilder()
    ...     .basic_events("IW", "H3", "IT", "H2")
    ...     .and_gate("CP", "IW", "H3")
    ...     .and_gate("CR", "IT", "H2")
    ...     .or_gate("CP/R", "CP", "CR")
    ...     .build("CP/R")
    ... )
    >>> tree.top
    'CP/R'
"""

from __future__ import annotations

from typing import List, Optional

from .elements import BasicEvent, Gate, GateType
from .tree import FaultTree


class FaultTreeBuilder:
    """Accumulates elements and produces a validated :class:`FaultTree`.

    All structural validation (uniqueness, acyclicity, connectedness) is
    deferred to :meth:`build`, so elements may be declared in any order.
    """

    def __init__(self) -> None:
        self._basic: List[BasicEvent] = []
        self._gates: List[Gate] = []

    def basic_event(
        self,
        name: str,
        description: str = "",
        probability: Optional[float] = None,
    ) -> "FaultTreeBuilder":
        """Declare one basic event."""
        self._basic.append(
            BasicEvent(name=name, description=description, probability=probability)
        )
        return self

    def basic_events(self, *names: str) -> "FaultTreeBuilder":
        """Declare several basic events without descriptions."""
        for name in names:
            self.basic_event(name)
        return self

    def and_gate(
        self, name: str, *children: str, description: str = ""
    ) -> "FaultTreeBuilder":
        """Declare an AND gate."""
        self._gates.append(
            Gate(
                name=name,
                gate_type=GateType.AND,
                children=tuple(children),
                description=description,
            )
        )
        return self

    def or_gate(
        self, name: str, *children: str, description: str = ""
    ) -> "FaultTreeBuilder":
        """Declare an OR gate."""
        self._gates.append(
            Gate(
                name=name,
                gate_type=GateType.OR,
                children=tuple(children),
                description=description,
            )
        )
        return self

    def vot_gate(
        self, name: str, threshold: int, *children: str, description: str = ""
    ) -> "FaultTreeBuilder":
        """Declare a VOT(k/N) gate: fails when at least ``threshold`` of the
        ``children`` fail."""
        self._gates.append(
            Gate(
                name=name,
                gate_type=GateType.VOT,
                children=tuple(children),
                threshold=threshold,
                description=description,
            )
        )
        return self

    def build(self, top: str) -> FaultTree:
        """Validate and return the finished tree with ``top`` as ``e_top``."""
        return FaultTree(basic_events=self._basic, gates=self._gates, top=top)
