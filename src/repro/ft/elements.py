"""Fault-tree elements: basic events and gates (paper Def. 1).

A fault tree is built from :class:`BasicEvent` leaves and :class:`Gate`
intermediate elements.  ``GateTypes = {AND, OR}`` extended with
``VOT(k/N)`` exactly as the paper does ("we can extend GateTypes with any
gate derived from AND and OR").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import GateArityError


class GateType(enum.Enum):
    """Gate types supported by the (static) fault trees of the paper."""

    AND = "and"
    OR = "or"
    VOT = "vot"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BasicEvent:
    """A leaf of the fault tree (an element that "need not be refined").

    Attributes:
        name: Unique identifier, e.g. ``"IW"``.
        description: Optional human-readable label, e.g.
            ``"Infected worker joining the team"``.
        probability: Optional failure probability.  BFL itself is Boolean;
            the attribute is carried for Galileo-format round-trips and for
            the probabilistic extension the paper lists as future work.
    """

    name: str
    description: str = ""
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("basic events must have a non-empty name")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability of {self.name!r} must lie in [0, 1], "
                f"got {self.probability}"
            )


@dataclass(frozen=True)
class Gate:
    """An intermediate element with a gate type and a non-empty child tuple.

    Attributes:
        name: Unique identifier, e.g. ``"CP/R"``.
        gate_type: AND, OR or VOT.
        children: Names of the inputs, in order.  Def. 1 requires
            ``ch(e) != {}``.
        threshold: ``k`` for VOT(k/N) gates; ``None`` otherwise.
        description: Optional human-readable label.
    """

    name: str
    gate_type: GateType
    children: Tuple[str, ...]
    threshold: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gates must have a non-empty name")
        if not self.children:
            raise GateArityError(f"gate {self.name!r} must have children")
        if len(set(self.children)) != len(self.children):
            raise GateArityError(
                f"gate {self.name!r} lists a child more than once"
            )
        if self.gate_type is GateType.VOT:
            k = self.threshold
            n = len(self.children)
            if k is None:
                raise GateArityError(
                    f"VOT gate {self.name!r} needs a threshold"
                )
            # Def. 1 extension: VOT(k/N) with k, N > 1 and k <= N.
            if not 1 <= k <= n:
                raise GateArityError(
                    f"VOT gate {self.name!r}: threshold {k} outside 1..{n}"
                )
        elif self.threshold is not None:
            raise GateArityError(
                f"{self.gate_type} gate {self.name!r} cannot carry a threshold"
            )

    @property
    def arity(self) -> int:
        """Number of children (``N`` for VOT(k/N))."""
        return len(self.children)

    def describe_type(self) -> str:
        """Short human-readable gate description, e.g. ``VOT(2/3)``."""
        if self.gate_type is GateType.VOT:
            return f"VOT({self.threshold}/{self.arity})"
        return self.gate_type.name
