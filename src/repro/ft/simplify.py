"""Structure-preserving fault-tree simplification.

Real-world trees (and machine-generated ones, e.g. from
:mod:`repro.checker.synthesis`) accumulate redundant structure.  This
module normalises a tree while *provably preserving the structure
function* (property-tested on all vectors):

* single-child AND/OR gates are absorbed into their child;
* nested gates of the same associative type are flattened into their
  parent (only when the child gate is not shared and not referenced by
  name elsewhere — callers may protect gates they want to keep);
* duplicate children are merged.

VOT gates are left untouched (flattening changes their semantics); the
top element always survives so ``T.top`` stays valid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .elements import Gate, GateType
from .tree import FaultTree


def simplify(
    tree: FaultTree, keep: Iterable[str] = ()
) -> FaultTree:
    """Return a simplified tree with the same structure function.

    Args:
        tree: The tree to normalise.
        keep: Gate names that must survive (e.g. gates referenced by BFL
            formulae); the top element is always kept.

    Returns:
        A new validated :class:`FaultTree`.  Every surviving element
        computes exactly the same Boolean function as before.
    """
    protected: Set[str] = set(keep) | {tree.top}
    unknown = protected - set(tree.elements)
    if unknown:
        raise ValueError(
            "keep names not in the tree: " + ", ".join(sorted(unknown))
        )

    # VOT inputs keep their arity: absorbing a child gate may alias two
    # inputs to the same element, which both violates the duplicate-child
    # rule and changes the VOT(k/N) semantics (multiplicity matters).
    for gate_name in tree.gate_names:
        gate = tree.gate(gate_name)
        if gate.gate_type is GateType.VOT:
            protected.update(gate.children)

    # Resolution map: gate name -> the element that replaces it.
    replacement: Dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in replacement:
            name = replacement[name]
        return name

    # Pass 1: absorb single-child AND/OR gates (bottom-up via repeated
    # sweeps; the tree is small and acyclic so this terminates quickly).
    changed = True
    gates: Dict[str, Gate] = {name: tree.gate(name) for name in tree.gate_names}
    while changed:
        changed = False
        for name, gate in list(gates.items()):
            if name in protected or name not in gates:
                continue
            children = tuple(dict.fromkeys(resolve(c) for c in gate.children))
            if len(children) == 1 and gate.gate_type is not GateType.VOT:
                replacement[name] = children[0]
                del gates[name]
                changed = True

    # Pass 2: flatten same-type children that are used nowhere else.
    parents: Dict[str, List[str]] = {}
    for name, gate in gates.items():
        for child in gate.children:
            parents.setdefault(resolve(child), []).append(name)

    def flattenable(parent: Gate, child_name: str) -> bool:
        child = gates.get(child_name)
        if child is None or child_name in protected:
            return False
        if child.gate_type is not parent.gate_type:
            return False
        if child.gate_type is GateType.VOT:
            return False
        return len(parents.get(child_name, [])) == 1

    new_gates: Dict[str, Gate] = {}
    consumed: Set[str] = set()

    def expanded_children(gate: Gate) -> Tuple[str, ...]:
        result: List[str] = []
        stack = [resolve(c) for c in gate.children]
        while stack:
            child = stack.pop(0)
            if flattenable(gate, child):
                consumed.add(child)
                stack = [resolve(c) for c in gates[child].children] + stack
                continue
            if child not in result:
                result.append(child)
        return tuple(result)

    for name, gate in gates.items():
        new_gates[name] = Gate(
            name=name,
            gate_type=gate.gate_type,
            children=expanded_children(gate),
            threshold=gate.threshold,
            description=gate.description,
        )
    for name in consumed:
        new_gates.pop(name, None)

    # Drop gates that became unreachable from the top.
    reachable: Set[str] = set()
    stack = [resolve(tree.top)]
    while stack:
        current = stack.pop()
        if current in reachable:
            continue
        reachable.add(current)
        gate = new_gates.get(current)
        if gate is not None:
            stack.extend(gate.children)

    surviving_gates = [g for n, g in new_gates.items() if n in reachable]
    surviving_bes = [
        tree.basic_event(name)
        for name in tree.basic_events
        if name in reachable
    ]
    return FaultTree(
        basic_events=surviving_bes,
        gates=surviving_gates,
        top=resolve(tree.top),
    )


def simplification_stats(before: FaultTree, after: FaultTree) -> Dict[str, int]:
    """How much structure the simplification removed."""
    return {
        "gates_before": len(before.gate_names),
        "gates_after": len(after.gate_names),
        "gates_removed": len(before.gate_names) - len(after.gate_names),
        "events_before": len(before.basic_events),
        "events_after": len(after.basic_events),
    }
