"""The fault-tree model ``T = (BE, IE, t, ch)`` of the paper's Def. 1.

A :class:`FaultTree` is an immutable, validated directed acyclic graph with
a unique top element reachable from every other element (the paper's
well-formedness condition).  Shared subtrees and repeated basic events are
allowed — the COVID-19 tree of Fig. 2 uses both.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from ..errors import (
    StatusVectorError,
    UnknownElementError,
    WellFormednessError,
)
from .elements import BasicEvent, Gate, GateType

#: A status vector maps each basic-event name to True (failed) / False
#: (operational) — the paper's ``b`` with the usual 1 = failed convention.
StatusVector = Mapping[str, bool]


class FaultTree:
    """Immutable fault tree (Def. 1) with validation and graph queries.

    Args:
        basic_events: The leaves, in declaration order (this order is the
            default BDD variable order and the order of status vectors).
        gates: The intermediate elements.
        top: Name of the top element ``e_top``; must be a gate.

    Raises:
        WellFormednessError: If names clash, children are missing, the graph
            has a cycle, or some element cannot reach the top.
    """

    def __init__(
        self,
        basic_events: Sequence[BasicEvent],
        gates: Sequence[Gate],
        top: str,
    ) -> None:
        self._basic: Dict[str, BasicEvent] = {}
        for be in basic_events:
            if be.name in self._basic:
                raise WellFormednessError(f"duplicate basic event {be.name!r}")
            self._basic[be.name] = be
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self._gates:
                raise WellFormednessError(f"duplicate gate {gate.name!r}")
            if gate.name in self._basic:
                raise WellFormednessError(
                    f"{gate.name!r} is both a basic event and a gate "
                    "(Def. 1 requires BE and IE disjoint)"
                )
            self._gates[gate.name] = gate
        if top not in self._gates:
            raise WellFormednessError(
                f"top element {top!r} must be a declared gate"
            )
        self._top = top
        self._be_order: Tuple[str, ...] = tuple(be.name for be in basic_events)
        self._parents: Dict[str, Tuple[str, ...]] = {}
        self._validate()
        self._depth_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Validation (well-formedness condition of Def. 1)
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        parents: Dict[str, List[str]] = {name: [] for name in self.elements}
        for gate in self._gates.values():
            for child in gate.children:
                if child not in self._basic and child not in self._gates:
                    raise WellFormednessError(
                        f"gate {gate.name!r} references unknown child {child!r}"
                    )
                parents[child].append(gate.name)
        self._parents = {name: tuple(ps) for name, ps in parents.items()}

        # Acyclicity via iterative DFS with colour marking.
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self._gates}
        for start in self._gates:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[str, int]] = [(start, 0)]
            colour[start] = GREY
            while stack:
                name, child_index = stack[-1]
                children = self._gates[name].children
                if child_index == len(children):
                    stack.pop()
                    colour[name] = BLACK
                    continue
                stack[-1] = (name, child_index + 1)
                child = children[child_index]
                if child in self._basic:
                    continue
                if colour[child] == GREY:
                    raise WellFormednessError(
                        f"cycle through gate {child!r}"
                    )
                if colour[child] == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))

        # The top must be reachable from every element, i.e. every element
        # must occur in the top's closure and the top must have no parent.
        if self._parents[self._top]:
            raise WellFormednessError(
                f"top element {self._top!r} has a parent"
            )
        reachable = self.descendants(self._top) | {self._top}
        orphans = set(self.elements) - reachable
        if orphans:
            raise WellFormednessError(
                "elements not connected to the top: "
                + ", ".join(sorted(orphans))
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def top(self) -> str:
        """Name of the top level element ``e_top``."""
        return self._top

    @property
    def basic_events(self) -> Tuple[str, ...]:
        """Basic-event names in declaration order (``BE``)."""
        return self._be_order

    @property
    def gate_names(self) -> Tuple[str, ...]:
        """Intermediate-element names (``IE``)."""
        return tuple(self._gates)

    @property
    def elements(self) -> Tuple[str, ...]:
        """All element names (``E = BE u IE``), basic events first."""
        return self._be_order + tuple(self._gates)

    def __contains__(self, name: str) -> bool:
        return name in self._basic or name in self._gates

    def __len__(self) -> int:
        return len(self._basic) + len(self._gates)

    def is_basic(self, name: str) -> bool:
        """True iff ``name`` is a basic event."""
        self._require(name)
        return name in self._basic

    def basic_event(self, name: str) -> BasicEvent:
        """The :class:`BasicEvent` record for ``name``."""
        try:
            return self._basic[name]
        except KeyError:
            raise UnknownElementError(name) from None

    def gate(self, name: str) -> Gate:
        """The :class:`Gate` record for ``name``."""
        try:
            return self._gates[name]
        except KeyError:
            raise UnknownElementError(name) from None

    def _require(self, name: str) -> None:
        if name not in self:
            raise UnknownElementError(name)

    def gate_type(self, name: str) -> GateType:
        """Gate type ``t(name)`` of an intermediate element."""
        return self.gate(name).gate_type

    def children(self, name: str) -> Tuple[str, ...]:
        """``ch(name)`` for gates; the empty tuple for basic events."""
        self._require(name)
        if name in self._basic:
            return ()
        return self._gates[name].children

    def parents(self, name: str) -> Tuple[str, ...]:
        """Gates that list ``name`` among their children."""
        self._require(name)
        return self._parents[name]

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------

    def descendants(self, name: str) -> FrozenSet[str]:
        """All elements strictly below ``name`` (transitive children)."""
        self._require(name)
        seen: set = set()
        stack = list(self.children(name))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.children(current))
        return frozenset(seen)

    def basic_descendants(self, name: str) -> FrozenSet[str]:
        """Basic events below (or equal to) ``name``.

        These are the *structural* candidates for the influencing basic
        events IBE of the element; the semantic IBE (Sec. III-B) is computed
        by :mod:`repro.checker.independence`.
        """
        self._require(name)
        if name in self._basic:
            return frozenset({name})
        return frozenset(
            e for e in self.descendants(name) if e in self._basic
        )

    def depth(self, name: str) -> int:
        """Length of the shortest path from the top to ``name``."""
        self._require(name)
        if name in self._depth_cache:
            return self._depth_cache[name]
        frontier = {self._top}
        depth = 0
        seen = set(frontier)
        while frontier:
            if name in frontier:
                self._depth_cache[name] = depth
                return depth
            nxt = set()
            for element in frontier:
                for child in self.children(element):
                    if child not in seen:
                        seen.add(child)
                        nxt.add(child)
            frontier = nxt
            depth += 1
        raise UnknownElementError(name)  # pragma: no cover - validated away

    def shared_elements(self) -> FrozenSet[str]:
        """Elements with more than one parent (the DAG sharing points)."""
        return frozenset(
            name for name, parents in self._parents.items() if len(parents) > 1
        )

    # ------------------------------------------------------------------
    # Status vectors
    # ------------------------------------------------------------------

    def vector_from_failed(self, failed: Iterable[str]) -> Dict[str, bool]:
        """Status vector with exactly ``failed`` set to 1 (failed)."""
        failed_set = set(failed)
        unknown = failed_set - set(self._be_order)
        if unknown:
            raise StatusVectorError(
                "not basic events of this tree: " + ", ".join(sorted(unknown))
            )
        return {name: name in failed_set for name in self._be_order}

    def vector_from_operational(self, operational: Iterable[str]) -> Dict[str, bool]:
        """Status vector with exactly ``operational`` set to 0 (the MPS view)."""
        operational_set = set(operational)
        unknown = operational_set - set(self._be_order)
        if unknown:
            raise StatusVectorError(
                "not basic events of this tree: " + ", ".join(sorted(unknown))
            )
        return {name: name not in operational_set for name in self._be_order}

    def vector_from_bits(self, bits: Sequence[int]) -> Dict[str, bool]:
        """Status vector from 0/1 bits in basic-event declaration order,
        matching the paper's tuple notation ``b = (b1, ..., bk)``."""
        if len(bits) != len(self._be_order):
            raise StatusVectorError(
                f"expected {len(self._be_order)} bits, got {len(bits)}"
            )
        return {name: bool(bit) for name, bit in zip(self._be_order, bits)}

    def failed_set(self, vector: StatusVector) -> FrozenSet[str]:
        """The failed basic events of ``vector`` (the cut-set view)."""
        self.check_vector(vector)
        return frozenset(n for n in self._be_order if vector[n])

    def operational_set(self, vector: StatusVector) -> FrozenSet[str]:
        """The operational basic events of ``vector`` (the path-set view)."""
        self.check_vector(vector)
        return frozenset(n for n in self._be_order if not vector[n])

    def check_vector(self, vector: StatusVector) -> None:
        """Raise unless ``vector`` assigns exactly this tree's basic events.

        Extra keys are tolerated (evidence may mention auxiliary variables);
        missing ones are not.
        """
        missing = [n for n in self._be_order if n not in vector]
        if missing:
            raise StatusVectorError(
                "status vector misses basic events: " + ", ".join(missing)
            )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def describe(self, name: str) -> str:
        """Human-readable description of an element (falls back to name)."""
        self._require(name)
        if name in self._basic:
            return self._basic[name].description or name
        return self._gates[name].description or name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultTree top={self._top!r} "
            f"|BE|={len(self._basic)} |IE|={len(self._gates)}>"
        )

    def stats(self) -> Dict[str, int]:
        """Simple size statistics (used by the CLI and reports)."""
        return {
            "basic_events": len(self._basic),
            "gates": len(self._gates),
            "and_gates": sum(
                1 for g in self._gates.values() if g.gate_type is GateType.AND
            ),
            "or_gates": sum(
                1 for g in self._gates.values() if g.gate_type is GateType.OR
            ),
            "vot_gates": sum(
                1 for g in self._gates.values() if g.gate_type is GateType.VOT
            ),
            "shared_elements": len(self.shared_elements()),
        }
