"""Module (independent-subtree) detection for fault trees.

A gate ``m`` is a *module* when the elements below it occur nowhere else
in the tree: its subtree interacts with the rest of the model only
through ``m`` itself (Dutuit & Rauzy's classical notion).  Modules connect
directly to BFL's ``IDP`` operator — two gates whose subtrees are disjoint
modules are always independent — and they are the standard preprocessing
step for scalable quantitative analysis.
"""

from __future__ import annotations

from typing import FrozenSet, List

from .tree import FaultTree


def is_module(tree: FaultTree, name: str) -> bool:
    """True iff every element strictly below ``name`` has all its parents
    inside ``name``'s subtree (so the subtree is self-contained)."""
    if tree.is_basic(name):
        # A basic event is a module iff it occurs once.
        return len(tree.parents(name)) <= 1
    inside = tree.descendants(name) | {name}
    for descendant in tree.descendants(name):
        for parent in tree.parents(descendant):
            if parent not in inside:
                return False
    return True


def modules(tree: FaultTree) -> FrozenSet[str]:
    """All gate names that form modules (the top is always one)."""
    return frozenset(
        name for name in tree.gate_names if is_module(tree, name)
    )


def modularization_report(tree: FaultTree) -> List[str]:
    """Human-readable summary: one line per gate, module status and size."""
    lines = []
    for name in tree.gate_names:
        status = "module" if is_module(tree, name) else "shared "
        size = len(tree.basic_descendants(name))
        lines.append(f"{name:10} {status}  ({size} basic events)")
    return lines
