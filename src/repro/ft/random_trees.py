"""Seeded random fault-tree generation.

Used by the hypothesis property tests (cross-validating the BDD checker
against the enumerative reference semantics) and by the scalability /
ablation benchmarks, which sweep over tree size.

Trees are generated top-down.  Every gate receives 2..``max_children``
children; each child is, with the configured probabilities, a fresh subtree,
a fresh basic event, or a *shared* reference to an existing element (which
produces the DAG sharing and repeated basic events that make the COVID-19
tree interesting).  The generator guarantees well-formedness by
construction and re-validates through :class:`FaultTree`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .elements import BasicEvent, Gate, GateType
from .tree import FaultTree


@dataclass(frozen=True)
class RandomTreeConfig:
    """Knobs for :func:`random_tree`.

    Attributes:
        n_basic_events: Number of distinct basic events.
        max_children: Maximum children per gate (minimum is 2).
        p_vot: Probability that a gate is VOT (the rest split AND/OR evenly).
        p_share: Probability that a child slot reuses an existing element.
        max_depth: Depth at which subtrees are forced to be basic events.
        vot_boundary_bias: Probability that a VOT threshold is pinned to
            an arity boundary (``k == 1``, i.e. OR-equivalent, or
            ``k == n``, i.e. AND-equivalent) instead of drawn uniformly.
            A uniform draw over 2..``max_children`` children makes the
            boundaries so rare on small trees that property tests never
            exercised the degenerate VOT forms; bias forces them in.
    """

    n_basic_events: int = 8
    max_children: int = 4
    p_vot: float = 0.15
    p_share: float = 0.2
    max_depth: int = 5
    vot_boundary_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.n_basic_events < 1:
            raise ValueError("need at least one basic event")
        if self.max_children < 2:
            raise ValueError("gates need at least two candidate children")
        if not 0.0 <= self.p_vot <= 1.0 or not 0.0 <= self.p_share <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")
        if not 0.0 <= self.vot_boundary_bias <= 1.0:
            raise ValueError("probabilities must lie in [0, 1]")


def random_tree(
    seed: int, config: Optional[RandomTreeConfig] = None
) -> FaultTree:
    """Generate a pseudo-random well-formed fault tree.

    The same ``(seed, config)`` always produces the same tree.
    """
    cfg = config or RandomTreeConfig()
    rng = random.Random(seed)
    be_names = [f"e{i}" for i in range(1, cfg.n_basic_events + 1)]
    unused = list(be_names)
    used: List[str] = []
    gates: List[Gate] = []
    counter = [0]

    def fresh_gate_name() -> str:
        counter[0] += 1
        return f"g{counter[0]}"

    def pick_basic() -> str:
        if unused:
            name = unused.pop(rng.randrange(len(unused)))
            used.append(name)
            return name
        return rng.choice(used)

    def build(depth: int) -> str:
        # Leaves: always at max depth, increasingly often below it.
        if depth >= cfg.max_depth or (depth > 0 and rng.random() < 0.35):
            return pick_basic()
        name = fresh_gate_name()
        n_children = rng.randint(2, cfg.max_children)
        children: List[str] = []
        for _ in range(n_children):
            share_pool = [g.name for g in gates] + used
            if share_pool and rng.random() < cfg.p_share:
                candidate = rng.choice(share_pool)
                if candidate not in children:
                    children.append(candidate)
                    continue
            child = build(depth + 1)
            if child not in children:
                children.append(child)
        if len(children) < 2:
            extra = pick_basic()
            if extra not in children:
                children.append(extra)
        if len(children) >= 2 and rng.random() < cfg.p_vot:
            if rng.random() < cfg.vot_boundary_bias:
                threshold = rng.choice((1, len(children)))
            else:
                threshold = rng.randint(1, len(children))
            gate = Gate(
                name=name,
                gate_type=GateType.VOT,
                children=tuple(children),
                threshold=threshold,
            )
        else:
            gate_type = GateType.AND if rng.random() < 0.5 else GateType.OR
            gate = Gate(
                name=name, gate_type=gate_type, children=tuple(children)
            )
        gates.append(gate)
        return name

    top = build(0)
    if top in be_names:
        # Degenerate draw: wrap the single leaf in an OR top gate.
        top_gate = Gate(
            name="g_top", gate_type=GateType.OR, children=(top,)
        )
        gates.append(top_gate)
        top = "g_top"

    # Hang unused basic events under the top gate so every declared event
    # occurs in the tree (well-formedness requires connectedness).
    if unused:
        top_gate = next(g for g in gates if g.name == top)
        merged = tuple(top_gate.children) + tuple(unused)
        gates[gates.index(top_gate)] = Gate(
            name=top_gate.name,
            gate_type=top_gate.gate_type,
            children=merged,
            threshold=top_gate.threshold,
        )
        used.extend(unused)
        del unused[:]

    return FaultTree(
        basic_events=[BasicEvent(name) for name in be_names],
        gates=gates,
        top=top,
    )
