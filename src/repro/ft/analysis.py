"""Qualitative fault-tree analysis: cut sets, path sets, MCS and MPS.

Implements Defs. 3 and 4 of the paper twice:

* **enumeration baselines** (``*_enum``) — walk all ``2^n`` status vectors
  with the structure function; exponential but obviously correct, used as
  the reference implementation in tests and as the baseline arm of the
  scalability benchmark;
* **BDD-based algorithms** — translate with ``Psi_FT`` and extract
  minimal/maximal satisfying vectors, which is how the paper's tooling (and
  real FTA tools) do it.

Also provides Birnbaum-style *structural importance*, a classical
qualitative metric that falls out of the BDD machinery for free.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from ..bdd.allsat import iter_cubes
from ..bdd.manager import BDDManager
from ..bdd.minimal import (
    maximal_assignments_monotone,
    minimal_assignments_monotone,
)
from .structure import structure_function
from .to_bdd import tree_to_bdd
from .tree import FaultTree, StatusVector

#: Practical guard for the exponential baselines.
_ENUM_LIMIT = 24


def iter_vectors(tree: FaultTree) -> Iterator[Dict[str, bool]]:
    """All ``2^n`` status vectors, in lexicographic (0 first) order."""
    names = tree.basic_events
    for bits in itertools.product((False, True), repeat=len(names)):
        yield dict(zip(names, bits))


def _check_enum_size(tree: FaultTree) -> None:
    if len(tree.basic_events) > _ENUM_LIMIT:
        raise ValueError(
            f"enumeration baseline limited to {_ENUM_LIMIT} basic events; "
            f"tree has {len(tree.basic_events)} (use the BDD-based API)"
        )


# ----------------------------------------------------------------------
# Definitions 3 and 4, applied to a single vector
# ----------------------------------------------------------------------

def is_cut_set(
    tree: FaultTree, vector: StatusVector, element: Optional[str] = None
) -> bool:
    """Def. 3: ``b`` is a cut set for ``e`` iff ``Phi_T(b, e) = 1``."""
    return structure_function(tree, vector, element)


def is_path_set(
    tree: FaultTree, vector: StatusVector, element: Optional[str] = None
) -> bool:
    """Def. 4: ``b`` is a path set for ``e`` iff ``Phi_T(b, e) = 0``."""
    return not structure_function(tree, vector, element)


def is_minimal_cut_set(
    tree: FaultTree, vector: StatusVector, element: Optional[str] = None
) -> bool:
    """Def. 3: a cut set no proper subset of which is a cut set.

    Because structure functions are monotone it suffices to check the
    vectors obtained by clearing one failed bit.
    """
    if not is_cut_set(tree, vector, element):
        return False
    for name in tree.failed_set(vector):
        smaller = dict(vector)
        smaller[name] = False
        if is_cut_set(tree, smaller, element):
            return False
    return True


def is_minimal_path_set(
    tree: FaultTree, vector: StatusVector, element: Optional[str] = None
) -> bool:
    """Def. 4 (intent, see DESIGN.md): a path set whose operational set has
    no proper subset that is still a path set — equivalently, failing any
    single operational event makes the element fail."""
    if not is_path_set(tree, vector, element):
        return False
    for name in tree.operational_set(vector):
        larger = dict(vector)
        larger[name] = True
        if is_path_set(tree, larger, element):
            return False
    return True


# ----------------------------------------------------------------------
# Enumeration baselines
# ----------------------------------------------------------------------

def minimize_sets(sets: Iterable[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """Drop every set that strictly contains another one."""
    unique = sorted(set(sets), key=len)
    kept: List[FrozenSet[str]] = []
    for candidate in unique:
        if not any(smaller < candidate or smaller == candidate for smaller in kept):
            kept.append(candidate)
    return kept


def minimal_cut_sets_enum(
    tree: FaultTree, element: Optional[str] = None
) -> List[FrozenSet[str]]:
    """All MCSs of ``element`` by exhaustive enumeration (reference)."""
    _check_enum_size(tree)
    cuts = [
        tree.failed_set(vector)
        for vector in iter_vectors(tree)
        if is_cut_set(tree, vector, element)
    ]
    return sorted(minimize_sets(cuts), key=lambda s: (len(s), sorted(s)))


def minimal_path_sets_enum(
    tree: FaultTree, element: Optional[str] = None
) -> List[FrozenSet[str]]:
    """All MPSs of ``element`` by exhaustive enumeration (reference)."""
    _check_enum_size(tree)
    paths = [
        tree.operational_set(vector)
        for vector in iter_vectors(tree)
        if is_path_set(tree, vector, element)
    ]
    return sorted(minimize_sets(paths), key=lambda s: (len(s), sorted(s)))


# ----------------------------------------------------------------------
# BDD-based algorithms
# ----------------------------------------------------------------------

def minimal_cut_sets(
    tree: FaultTree,
    element: Optional[str] = None,
    manager: Optional[BDDManager] = None,
) -> List[FrozenSet[str]]:
    """All MCSs of ``element`` via the BDD engine.

    Translates the element with ``Psi_FT``, restricts to minimal satisfying
    vectors (structure functions are monotone, so the restriction-based
    construction applies) and reads one MCS off every 1-path.
    """
    if manager is None:
        manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager, element)
    scope = sorted(manager.support(root), key=manager.level_of)
    minimal = minimal_assignments_monotone(manager, root, scope)
    sets = [
        frozenset(name for name, value in cube.items() if value)
        for cube in iter_cubes(manager, minimal)
    ]
    return sorted(set(sets), key=lambda s: (len(s), sorted(s)))


def minimal_path_sets(
    tree: FaultTree,
    element: Optional[str] = None,
    manager: Optional[BDDManager] = None,
) -> List[FrozenSet[str]]:
    """All MPSs of ``element`` via the BDD engine.

    MPSs are the operational sets of the *maximal* vectors satisfying the
    element's negation (DESIGN.md deviation 1).
    """
    if manager is None:
        manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager, element)
    scope = sorted(manager.support(root), key=manager.level_of)
    negated = manager.negate(root)
    maximal = maximal_assignments_monotone(manager, negated, scope)
    sets = [
        frozenset(name for name, value in cube.items() if not value)
        for cube in iter_cubes(manager, maximal)
    ]
    return sorted(set(sets), key=lambda s: (len(s), sorted(s)))


def structural_importance(
    tree: FaultTree,
    basic_event: str,
    element: Optional[str] = None,
    manager: Optional[BDDManager] = None,
) -> Fraction:
    """Birnbaum structural importance of ``basic_event`` for ``element``.

    The fraction of assignments to the *other* basic events for which the
    event is critical (its value decides the element's status):
    ``|{b : Phi(b[e:=1]) != Phi(b[e:=0])}| / 2^(n-1)``.

    A structural importance of 0 means the event is superfluous — the same
    notion BFL's ``SUP`` operator captures symbolically.
    """
    if basic_event not in tree.basic_events:
        raise ValueError(f"{basic_event!r} is not a basic event of the tree")
    if manager is None:
        manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager, element)
    on = manager.restrict(root, basic_event, True)
    off = manager.restrict(root, basic_event, False)
    critical = manager.xor(on, off)
    others = [name for name in tree.basic_events if name != basic_event]
    if not others:
        return Fraction(1 if critical is manager.true else 0, 1)
    return Fraction(manager.sat_count(critical, others), 2 ** len(others))
