"""Edit scripts over fault trees — the "what-if" delta language.

A variant scenario is the base tree plus a short list of edits (swap a
gate type, replace a subtree, add/remove an event, change a failure
probability).  Each edit is a small frozen dataclass with a JSON
round-trip, so variant definitions can live in query files next to the
queries they parameterise (``bfl batch --variants``).

:func:`apply_edits` materialises the edited :class:`FaultTree`;
:func:`signatures`/:func:`changed_elements` compute which elements'
structure functions actually changed, which is what the incremental
translator (:meth:`repro.ft.to_bdd.TreeTranslator.rebase`) uses to keep
every untouched ``Psi_FT`` BDD instead of rebuilding the kernel.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..errors import ReproError
from .elements import BasicEvent, Gate, GateType
from .galileo import loads
from .tree import FaultTree


class EditError(ReproError):
    """An edit does not apply to the tree it was aimed at."""


@dataclass(frozen=True)
class GateSwap:
    """Change a gate's connective (children are kept as-is).

    ``threshold`` is required for VOT and forbidden otherwise, mirroring
    :class:`repro.ft.elements.Gate` validation.
    """

    gate: str
    gate_type: Union[GateType, str]
    threshold: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        kind = (
            self.gate_type.value
            if isinstance(self.gate_type, GateType)
            else str(self.gate_type)
        )
        data: Dict[str, Any] = {
            "op": "gate-swap", "gate": self.gate, "type": kind,
        }
        if self.threshold is not None:
            data["threshold"] = self.threshold
        return data


@dataclass(frozen=True)
class SubtreeReplace:
    """Replace the subtree rooted at ``element`` with a Galileo fragment.

    The fragment's ``toplevel`` takes over the *name* ``element`` (so
    formulae and parents keep referring to it); its other gates must be
    fresh names, while fragment basic events may either be fresh or
    reuse existing basic events (sharing them with the rest of the
    tree — a fragment ``prob=`` value overrides the base one).
    """

    element: str
    fragment: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": "subtree-replace",
            "element": self.element,
            "fragment": self.fragment,
        }


@dataclass(frozen=True)
class EventAdd:
    """Declare a new basic event and append it to ``gate``'s children."""

    gate: str
    event: str
    probability: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "op": "event-add", "gate": self.gate, "event": self.event,
        }
        if self.probability is not None:
            data["probability"] = self.probability
        return data


@dataclass(frozen=True)
class EventRemove:
    """Remove a basic event from the tree (and from every parent gate)."""

    event: str

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "event-remove", "event": self.event}


@dataclass(frozen=True)
class WeightChange:
    """Change a basic event's failure probability (structure untouched)."""

    event: str
    probability: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": "weight-change",
            "event": self.event,
            "probability": self.probability,
        }


Edit = Union[GateSwap, SubtreeReplace, EventAdd, EventRemove, WeightChange]

_OPS = {
    "gate-swap": GateSwap,
    "subtree-replace": SubtreeReplace,
    "event-add": EventAdd,
    "event-remove": EventRemove,
    "weight-change": WeightChange,
}


def edit_from_dict(data: Mapping[str, Any]) -> Edit:
    """Build one edit from its JSON-style mapping (inverse of ``to_dict``)."""
    op = data.get("op")
    if op not in _OPS:
        raise EditError(
            f"unknown edit op {op!r} (expected one of {', '.join(sorted(_OPS))})"
        )
    fields = dict(data)
    fields.pop("op")
    try:
        if op == "gate-swap":
            fields["gate_type"] = fields.pop("type")
            return GateSwap(**fields)
        return _OPS[op](**fields)
    except TypeError as exc:
        raise EditError(f"malformed {op!r} edit: {exc}") from exc


def edits_from_any(items: Iterable[Union[Edit, Mapping[str, Any]]]) -> List[Edit]:
    """Normalise a heterogeneous edit list (ready edits and/or mappings)."""
    edits: List[Edit] = []
    for item in items:
        if isinstance(item, tuple(_OPS.values())):
            edits.append(item)  # type: ignore[arg-type]
        elif isinstance(item, Mapping):
            edits.append(edit_from_dict(item))
        else:
            raise EditError(f"cannot interpret {item!r} as a tree edit")
    return edits


def _coerce_gate_type(value: Union[GateType, str]) -> GateType:
    if isinstance(value, GateType):
        return value
    try:
        return GateType(str(value).lower())
    except ValueError as exc:
        raise EditError(f"unknown gate type {value!r}") from exc


def apply_edits(tree: FaultTree, edits: Sequence[Edit]) -> FaultTree:
    """Apply an edit script, returning a new validated :class:`FaultTree`.

    Edits apply in order; elements that become unreachable from the top
    (e.g. a replaced subtree's private gates) are dropped, matching the
    well-formedness requirement of Def. 1.  The input tree is never
    mutated.  Each entry may be an :class:`Edit` or the mapping form
    accepted by :func:`edit_from_dict`.
    """
    edits = edits_from_any(edits)
    bes: Dict[str, BasicEvent] = {
        name: tree.basic_event(name) for name in tree.basic_events
    }
    gates: Dict[str, Gate] = {
        name: tree.gate(name) for name in tree.gate_names
    }
    top = tree.top
    for edit in edits:
        if isinstance(edit, GateSwap):
            _apply_gate_swap(gates, edit)
        elif isinstance(edit, SubtreeReplace):
            _apply_subtree_replace(bes, gates, edit)
        elif isinstance(edit, EventAdd):
            _apply_event_add(bes, gates, edit)
        elif isinstance(edit, EventRemove):
            _apply_event_remove(bes, gates, edit)
        elif isinstance(edit, WeightChange):
            _apply_weight_change(bes, edit)
        else:
            raise EditError(f"cannot interpret {edit!r} as a tree edit")
    if top not in gates:
        raise EditError(f"edit script removed the top gate {top!r}")
    # Prune to the top's closure; declaration order of surviving basic
    # events is preserved (it is the default variable order).
    reachable = _reachable(gates, bes, top)
    return FaultTree(
        basic_events=[be for name, be in bes.items() if name in reachable],
        gates=[gate for name, gate in gates.items() if name in reachable],
        top=top,
    )


def _apply_gate_swap(gates: Dict[str, Gate], edit: GateSwap) -> None:
    old = gates.get(edit.gate)
    if old is None:
        raise EditError(f"gate-swap targets unknown gate {edit.gate!r}")
    kind = _coerce_gate_type(edit.gate_type)
    try:
        gates[edit.gate] = Gate(
            name=old.name,
            gate_type=kind,
            children=old.children,
            threshold=edit.threshold,
            description=old.description,
        )
    except ReproError as exc:
        raise EditError(f"gate-swap on {edit.gate!r}: {exc}") from exc


def _apply_subtree_replace(
    bes: Dict[str, BasicEvent],
    gates: Dict[str, Gate],
    edit: SubtreeReplace,
) -> None:
    if edit.element not in bes and edit.element not in gates:
        raise EditError(
            f"subtree-replace targets unknown element {edit.element!r}"
        )
    # The replaced name must stay the same kind of element the fragment
    # top is — a BE name cannot silently become a gate (status vectors
    # and probability profiles index basic events by name).
    if edit.element in bes:
        raise EditError(
            f"subtree-replace target {edit.element!r} is a basic event; "
            "replace its parent gate instead"
        )
    try:
        fragment = loads(edit.fragment)
    except ReproError as exc:
        raise EditError(
            f"subtree-replace fragment for {edit.element!r} "
            f"does not parse: {exc}"
        ) from exc
    rename = {fragment.top: edit.element}
    for name in fragment.gate_names:
        target = rename.get(name, name)
        if target != edit.element and (target in bes or target in gates):
            raise EditError(
                f"subtree-replace fragment gate {target!r} collides with "
                "an existing element"
            )
    for name in fragment.basic_events:
        if name in gates:
            raise EditError(
                f"subtree-replace fragment event {name!r} collides with "
                f"existing gate {name!r}"
            )
    del gates[edit.element]
    for name in fragment.basic_events:
        be = fragment.basic_event(name)
        existing = bes.get(name)
        if existing is None:
            bes[name] = be
        elif be.probability is not None:
            bes[name] = BasicEvent(
                name=name,
                description=existing.description,
                probability=be.probability,
            )
    for name in fragment.gate_names:
        gate = fragment.gate(name)
        target = rename.get(name, name)
        gates[target] = Gate(
            name=target,
            gate_type=gate.gate_type,
            children=tuple(rename.get(c, c) for c in gate.children),
            threshold=gate.threshold,
            description=gate.description,
        )


def _apply_event_add(
    bes: Dict[str, BasicEvent], gates: Dict[str, Gate], edit: EventAdd
) -> None:
    if edit.event in bes or edit.event in gates:
        raise EditError(f"event-add name {edit.event!r} already exists")
    parent = gates.get(edit.gate)
    if parent is None:
        raise EditError(f"event-add targets unknown gate {edit.gate!r}")
    bes[edit.event] = BasicEvent(edit.event, probability=edit.probability)
    gates[edit.gate] = Gate(
        name=parent.name,
        gate_type=parent.gate_type,
        children=parent.children + (edit.event,),
        threshold=parent.threshold,
        description=parent.description,
    )


def _apply_event_remove(
    bes: Dict[str, BasicEvent], gates: Dict[str, Gate], edit: EventRemove
) -> None:
    if edit.event not in bes:
        raise EditError(f"event-remove targets unknown event {edit.event!r}")
    for name, gate in list(gates.items()):
        if edit.event not in gate.children:
            continue
        remaining = tuple(c for c in gate.children if c != edit.event)
        if not remaining:
            raise EditError(
                f"event-remove would leave gate {name!r} childless"
            )
        threshold = gate.threshold
        if threshold is not None:
            # Keep VOT well-formed: k may not exceed the new arity.
            threshold = min(threshold, len(remaining))
        gates[name] = Gate(
            name=gate.name,
            gate_type=gate.gate_type,
            children=remaining,
            threshold=threshold,
            description=gate.description,
        )
    del bes[edit.event]


def _apply_weight_change(
    bes: Dict[str, BasicEvent], edit: WeightChange
) -> None:
    old = bes.get(edit.event)
    if old is None:
        raise EditError(f"weight-change targets unknown event {edit.event!r}")
    try:
        bes[edit.event] = BasicEvent(
            name=old.name,
            description=old.description,
            probability=edit.probability,
        )
    except ReproError as exc:
        raise EditError(f"weight-change on {edit.event!r}: {exc}") from exc


def _reachable(
    gates: Mapping[str, Gate], bes: Mapping[str, BasicEvent], top: str
) -> FrozenSet[str]:
    seen = {top}
    stack = [top]
    while stack:
        name = stack.pop()
        gate = gates.get(name)
        if gate is None:
            continue
        for child in gate.children:
            if child not in seen:
                if child not in gates and child not in bes:
                    raise EditError(
                        f"gate {name!r} references unknown child {child!r}"
                    )
                seen.add(child)
                stack.append(child)
    return frozenset(seen)


# ----------------------------------------------------------------------
# Structural diffing (what the incremental translator keys on)
# ----------------------------------------------------------------------

Signature = Tuple[Any, ...]


def signatures(tree: FaultTree) -> Dict[str, Signature]:
    """Hashable structural signature of every element's structure function.

    A basic event's signature is its name; a gate's is its connective,
    threshold and (recursively) its children's signatures.  Two elements
    with equal signatures denote the same Boolean function over the same
    leaves, so a cached ``Psi_FT`` BDD keyed on an unchanged signature
    stays valid across an edit.  Failure probabilities are deliberately
    excluded — weight changes never invalidate structure.
    """
    memo: Dict[str, Signature] = {}
    for root in tree.elements:
        if root in memo:
            continue
        stack: List[Tuple[str, bool]] = [(root, False)]
        while stack:
            name, expanded = stack.pop()
            if name in memo:
                continue
            if tree.is_basic(name):
                memo[name] = ("be", name)
                continue
            if not expanded:
                stack.append((name, True))
                for child in tree.children(name):
                    if child not in memo:
                        stack.append((child, False))
                continue
            gate = tree.gate(name)
            memo[name] = (
                gate.gate_type.value,
                gate.threshold,
                tuple(memo[child] for child in gate.children),
            )
    return memo


def changed_elements(old: FaultTree, new: FaultTree) -> FrozenSet[str]:
    """Element names whose structure function may differ between trees.

    Includes names present in only one of the trees.  The guarantee is
    one-directional and that is the direction caches need: an element
    *not* in this set has an identical signature in both trees, so any
    BDD computed for it against ``old`` answers for ``new`` as well.

    Computed as a *local-record* diff propagated through parent edges —
    an element is dirty iff its own record changed or some descendant's
    did — which is O(elements) with cheap shallow tuples, where the
    full :func:`signatures` comparison rebuilds deep nested tuples for
    every element on every call.  (The record diff is conservative only
    in one contrived corner: renaming a child to a structurally
    identical twin dirties the parent although its deep signature is
    unchanged.  Treating it as dirty merely re-lowers a cached entry.)
    """
    old_records = _records(old)
    new_records = _records(new)
    changed = set(old_records.keys() ^ new_records.keys())
    for name in old_records.keys() & new_records.keys():
        if old_records[name] != new_records[name]:
            changed.add(name)
    # Dirtiness propagates to every ancestor (in whichever tree the
    # parent edge exists; on record-unchanged elements the edges agree).
    stack = list(changed)
    while stack:
        name = stack.pop()
        for tree in (old, new):
            if name in tree:
                for parent in tree.parents(name):
                    if parent not in changed:
                        changed.add(parent)
                        stack.append(parent)
    return frozenset(changed)


def changed_elements_from_edits(
    old: FaultTree, new: FaultTree, edits: Sequence[Any]
) -> FrozenSet[str]:
    """:func:`changed_elements` read off the edit script that produced
    ``new``, without building either tree's record table.

    The caches this feeds (see ``TreeTranslator.rebase``) only need the
    one-directional guarantee, which holds here too: every element
    whose local record an edit can touch is seeded — the edit's target
    gate, plus every name present in only one of the trees (fragment
    elements, added/removed events; parents of a removed event join
    through the ancestor closure) — so an element outside the result is
    record-identical in both trees.  The price of skipping the record
    diff is mild over-approximation: a no-op edit (a ``GateSwap`` to
    the connective the gate already has) dirties its target anyway,
    which merely re-lowers a still-valid cache entry.  Cost is
    O(edits + name sets + closure) instead of O(elements) record
    construction — the difference a per-variant fork path cares about.
    """
    edit_list = edits_from_any(edits)
    seeds: Set[str] = set()
    for edit in edit_list:
        if isinstance(edit, WeightChange):
            continue  # structure untouched by construction
        if isinstance(edit, GateSwap):
            seeds.add(edit.gate)
        elif isinstance(edit, SubtreeReplace):
            seeds.add(edit.element)
        elif isinstance(edit, EventAdd):
            seeds.add(edit.gate)
            seeds.add(edit.event)
        elif isinstance(edit, EventRemove):
            seeds.add(edit.event)
        else:  # future edit types: fall back to the full diff
            return changed_elements(old, new)
    old_names = set(old.basic_events) | set(old.gate_names)
    new_names = set(new.basic_events) | set(new.gate_names)
    changed = seeds | (old_names ^ new_names)
    stack = list(changed)
    while stack:
        name = stack.pop()
        for tree in (old, new):
            if name in tree:
                for parent in tree.parents(name):
                    if parent not in changed:
                        changed.add(parent)
                        stack.append(parent)
    return frozenset(changed)


#: Per-tree record tables.  FaultTree instances are immutable once
#: validated, so the table is computed at most once per tree — a variant
#: sweep forking hundreds of sessions off one base diffs that base for
#: the price of one pass.  Weak keys keep discarded variant trees (and
#: their tables) collectable.
_RECORDS_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _records(tree: FaultTree) -> Dict[str, Signature]:
    """Every element's *local* record: its own definition, children by
    name (the shallow counterpart of :func:`signatures`)."""
    cached = _RECORDS_CACHE.get(tree)
    if cached is not None:
        return cached
    table: Dict[str, Signature] = {
        name: ("be", name) for name in tree.basic_events
    }
    for name in tree.gate_names:
        gate = tree.gate(name)
        table[name] = (gate.gate_type.value, gate.threshold, gate.children)
    _RECORDS_CACHE[tree] = table
    return table


def _record(tree: FaultTree, name: str) -> Optional[Signature]:
    """One element's local record (``None`` for names not in the tree).

    Served from the memoised table when one exists, but never *builds*
    the table: callers probing a handful of names (``splice_site`` on a
    small dirty set) should stay O(names probed), not O(elements).
    """
    cached = _RECORDS_CACHE.get(tree)
    if cached is not None:
        return cached.get(name)
    if name not in tree:
        return None
    if tree.is_basic(name):
        return ("be", name)
    gate = tree.gate(name)
    return (gate.gate_type.value, gate.threshold, gate.children)


def _ancestors(tree: FaultTree, name: str) -> FrozenSet[str]:
    seen: set = set()
    stack = [name]
    while stack:
        for parent in tree.parents(stack.pop()):
            if parent not in seen:
                seen.add(parent)
                stack.append(parent)
    return frozenset(seen)


def splice_site(
    old: FaultTree,
    new: FaultTree,
    dirty: Optional[FrozenSet[str]] = None,
) -> Optional[str]:
    """The unique element whose subtree absorbs the whole diff, if any.

    When this returns a name ``X``, the two trees are identical outside
    the subtree rooted at ``X``: every locally-redefined element lies
    inside ``X``'s subtree and every other structurally-dirty element is
    an (unchanged-record) ancestor of ``X``, dirty only transitively.
    Then the new top equals the old *abstract* top with ``Psi(X)``
    substituted for the placeholder — the precondition of
    :meth:`repro.ft.to_bdd.TreeTranslator.splice`.  Returns ``None``
    when the diff is empty or has no single covering site (callers fall
    back to a plain rebase, which still reuses unchanged elements).

    ``dirty`` takes a precomputed :func:`changed_elements` result so a
    caller that already diffed the trees does not pay for it twice.
    """
    if dirty is None:
        dirty = changed_elements(old, new)
    if not dirty:
        return None
    record_changed = {
        name for name in dirty if _record(old, name) != _record(new, name)
    }
    candidates = sorted(
        name for name in record_changed if name in old and name in new
    )
    for site in candidates:
        # Redefined elements must be private to the site's subtree.
        # Descendant membership is NOT privacy on a sharing DAG: a gate
        # can sit under the site *and* be referenced from outside it, in
        # which case substituting Psi(site) leaves stale occurrences.
        # The exact condition is that no redefined element is reachable
        # from the top without passing through the site, in either tree.
        old_outside = _reachable_avoiding(old, site)
        new_outside = _reachable_avoiding(new, site)
        if any(
            name in old_outside or name in new_outside
            for name in record_changed
            if name != site
        ):
            continue
        ancestors = _ancestors(new, site)
        if all(name in ancestors for name in dirty - record_changed):
            return site
    return None


def _reachable_avoiding(tree: FaultTree, site: str) -> Set[str]:
    """Elements reachable from the top without expanding ``site`` (the
    part of the tree a ``splice(site, ...)`` leaves untouched)."""
    seen: Set[str] = set()
    stack = [tree.top]
    while stack:
        name = stack.pop()
        if name in seen or name == site:
            continue
        seen.add(name)
        if not tree.is_basic(name):
            stack.extend(tree.gate(name).children)
    return seen
