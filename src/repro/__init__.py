"""repro — a from-scratch reproduction of *BFL: a Logic to Reason about
Fault Trees* (Nicoletti, Hahn, Stoelinga; DSN 2022).

The package bundles:

* :mod:`repro.bdd` — a from-scratch ROBDD engine (Apply/Restrict/Rename,
  quantification, AllSat, minimal/maximal vectors, ordering heuristics);
* :mod:`repro.ft` — the fault-tree formalism of Def. 1 (AND/OR/VOT),
  structure function, MCS/MPS analysis, Galileo I/O, generators;
* :mod:`repro.logic` — BFL syntax, a textual DSL, syntactic sugar and the
  enumerative reference semantics;
* :mod:`repro.checker` — the model-checking algorithms (1-4), IDP/SUP,
  counterexample patterns and fault-tree synthesis;
* :mod:`repro.service` — the batch analysis layer: many queries, shared
  translation caches, one BDD session (the ``bfl batch`` engine);
* :mod:`repro.casestudy` — the COVID-19 fault tree of Fig. 2 and the nine
  Sec. VII properties;
* :mod:`repro.viz` — failure-propagation and DOT rendering;
* :mod:`repro.cli` — the ``bfl`` command-line tool.

Quickstart::

    from repro.casestudy import build_covid_tree
    from repro.checker import ModelChecker

    checker = ModelChecker(build_covid_tree())
    assert not checker.check("forall (IS => MoT)")
    print(checker.satisfaction_set("MCS(MoT) & IS").describe())
"""

from .casestudy import build_covid_tree
from .checker import ModelChecker
from .errors import ReproError
from .ft import FaultTree, FaultTreeBuilder
from .logic import MinimalityScope, atom, parse
from .service import BatchAnalyzer

__all__ = [
    "BatchAnalyzer",
    "FaultTree",
    "FaultTreeBuilder",
    "MinimalityScope",
    "ModelChecker",
    "ReproError",
    "atom",
    "build_covid_tree",
    "parse",
    "__version__",
]

__version__ = "1.0.0"
