"""Minimality scope for the MCS/MPS operators (DESIGN.md deviation 2).

When deciding whether a status vector is *minimal* for ``MCS(phi)`` (or
maximal for ``MPS(phi)``), two readings of the paper coexist:

* ``SUPPORT`` — compare vectors only on the basic events that actually
  influence ``phi`` (the support of its BDD / its IBE set); all other
  events are don't-cares.  This reproduces Table I's pattern-3/4 examples
  and all of Sec. VII, and is the default.
* ``FULL`` — compare on the complete status vector, the literal reading of
  the formal semantics in Sec. III-B (under which ``MCS(e3)`` also pins
  every unrelated event to 0).

Both the BDD checker and the enumerative reference semantics accept either
scope, and the test suite cross-validates them under both.
"""

from __future__ import annotations

import enum


class MinimalityScope(enum.Enum):
    """Which variables participate in MCS/MPS minimality comparisons."""

    SUPPORT = "support"
    FULL = "full"

    def __str__(self) -> str:
        return self.value
