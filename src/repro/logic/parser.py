"""A textual DSL for BFL.

The paper lists a Domain Specific Language as future work ("a step towards
usability"); this module provides one.  The concrete syntax mirrors the
paper's mathematical notation:

=====================================  =========================================
Paper                                  DSL
=====================================  =========================================
``forall (CP => CP/R)``                ``forall (CP => CP/R)``
``exists (CP and CR)``                 ``exists (CP & CR)``
``MCS(IWoS) and H4``                   ``MCS(IWoS) & H4``
``MPS(IWoS)[H1 -> 0, H2 -> 0]``        ``MPS(IWoS)[H1 := 0, H2 := 0]``
``Vot_{>=2}(H1, ..., H5)``             ``VOT(>= 2; H1, H2, H3, H4, H5)``
``IDP(CIO, CIS)``                      ``IDP(CIO, CIS)``
``SUP(PP)``                            ``SUP(PP)``
``[[ MCS(IWoS) and H4 ]]``             ``[[ MCS(IWoS) & H4 ]]`` (via
                                       :func:`parse_request`)
``P(MoT) >= 0.3`` (PFL)                ``P(MoT) >= 0.3``
``P(MoT | H1) < 0.5`` (PFL)            ``P(MoT | H1) < 0.5``
PFL probability settings               ``P(MoT)[H1 := 0.25] >= 0.1``
=====================================  =========================================

Operators by increasing precedence: ``<=>``/``<!>``, ``=>`` (right
associative), ``|``, ``&``, ``!``/``~``, evidence suffix ``[e := 0/1]``.
Element names may be quoted (``"CP/R"``) or bare; bare names may contain
letters, digits, ``_``, ``/`` and ``-``.  Keywords are case-insensitive.
Evidence also accepts ``->`` and ``|->`` as the assignment arrow.

PFL queries (``P(...)``) sit at the statement level, like
``exists``/``forall``.  Directly inside ``P(...)`` an *unparenthesised*
``|`` is the conditioning bar; write ``||``, ``\\/`` or parenthesise to
get disjunction there (everywhere else ``|`` stays disjunction).  After
the closing parenthesis an optional bracket of probability settings
``[e := 0.25, ...]`` overrides per-event failure probabilities for this
query (``0``/``1`` act as deterministic settings), and an optional
comparator + number turns the value query into a Boolean one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import BFLSyntaxError
from .ast_nodes import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    Formula,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    ProbabilityQuery,
    Statement,
    Synthesize,
    Vot,
)

_KEYWORDS = {
    "mcs",
    "mps",
    "idp",
    "sup",
    "vot",
    "exists",
    "forall",
    "synthesize",
    "true",
    "false",
}

_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("LLBRACKET", r"\[\["),
    ("RRBRACKET", r"\]\]"),
    ("EQUIV", r"<=>"),
    ("NEQUIV", r"<!>"),
    ("IMPLIES", r"=>"),
    ("ASSIGN", r":=|\|->|->"),
    ("LE", r"<="),
    ("GE", r">="),
    ("LT", r"<"),
    ("GT", r">"),
    ("EQ", r"="),
    ("AND", r"&&?|/\\"),
    ("OR", r"\|\||\\/"),
    ("BAR", r"\|"),
    ("NOT", r"!|~"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("FLOAT", r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+"),
    ("NUMBER", r"\d+"),
    ("QUOTED", r'"[^"]*"'),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_/\-]*"),
]

_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    position = 0
    while position < len(text):
        match = _MASTER_RE.match(text, position)
        if match is None:
            column = position - line_start
            raise BFLSyntaxError(
                f"unexpected character {text[position]!r}", line, column
            )
        kind = match.lastgroup
        value = match.group()
        if kind == "WS":
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rfind("\n") + 1
        else:
            tokens.append(_Token(kind, value, line, match.start() - line_start))
        position = match.end()
    tokens.append(_Token("EOF", "", line, position - line_start))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._index = 0
        # Directly inside P( ... ) a top-level single `|` is the
        # conditioning bar, not disjunction; parentheses (and every other
        # nesting construct) restore the default reading.
        self._bar_conditional = False

    # -- token helpers --------------------------------------------------

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _check(self, kind: str) -> bool:
        return self._current.kind == kind

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: str, what: str) -> _Token:
        if not self._check(kind):
            token = self._current
            raise BFLSyntaxError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _keyword(self) -> Optional[str]:
        """Lower-cased keyword if the current token is a NAME keyword."""
        if self._check("NAME") and self._current.text.lower() in _KEYWORDS:
            return self._current.text.lower()
        return None

    # -- grammar --------------------------------------------------------

    def parse_statement(self) -> Statement:
        statement = self._statement()
        self._expect("EOF", "end of input")
        return statement

    def _statement(self) -> Statement:
        if self._at_prob_query():
            return self._prob_query()
        keyword = self._keyword()
        if keyword == "exists":
            self._advance()
            return Exists(self._formula())
        if keyword == "forall":
            self._advance()
            return Forall(self._formula())
        if keyword == "idp":
            self._advance()
            self._expect("LPAREN", "'(' after IDP")
            left = self._formula()
            self._expect("COMMA", "',' between IDP arguments")
            right = self._formula()
            self._expect("RPAREN", "')' closing IDP")
            return IDP(left, right)
        if keyword == "sup":
            self._advance()
            self._expect("LPAREN", "'(' after SUP")
            name = self._element_name()
            self._expect("RPAREN", "')' closing SUP")
            return SUP(name)
        if keyword == "synthesize":
            opening = self._advance()
            self._expect("LPAREN", "'(' after SYNTHESIZE")
            formula = self._inner_formula()
            candidates: List[str] = []
            if self._accept("SEMI"):
                candidates.append(self._element_name())
                while self._accept("COMMA"):
                    candidates.append(self._element_name())
            self._expect("RPAREN", "')' closing SYNTHESIZE")
            try:
                return Synthesize(formula, tuple(candidates))
            except ValueError as error:
                raise BFLSyntaxError(
                    str(error), opening.line, opening.column
                ) from None
        return self._formula()

    def _formula(self) -> Formula:
        return self._equivalence()

    def _inner_formula(self) -> Formula:
        """A formula in a nested context (parentheses, MCS/VOT/IDP
        arguments), where ``|`` always means disjunction again."""
        saved = self._bar_conditional
        self._bar_conditional = False
        try:
            return self._formula()
        finally:
            self._bar_conditional = saved

    def _equivalence(self) -> Formula:
        left = self._implication()
        while True:
            if self._accept("EQUIV"):
                left = Equiv(left, self._implication())
            elif self._accept("NEQUIV"):
                left = NotEquiv(left, self._implication())
            else:
                return left

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._accept("IMPLIES"):
            # Right associative: a => b => c  ==  a => (b => c).
            return Implies(left, self._implication())
        return left

    def _disjunction(self) -> Formula:
        left = self._conjunction()
        while self._accept("OR") or (
            not self._bar_conditional and self._accept("BAR")
        ):
            left = Or(left, self._conjunction())
        return left

    def _conjunction(self) -> Formula:
        left = self._unary()
        while self._accept("AND"):
            left = And(left, self._unary())
        return left

    def _unary(self) -> Formula:
        if self._accept("NOT"):
            return Not(self._unary())
        return self._postfix()

    def _postfix(self) -> Formula:
        formula = self._primary()
        while self._check("LBRACKET"):
            self._advance()
            assignments = [self._substitution()]
            while self._accept("COMMA"):
                assignments.append(self._substitution())
            self._expect("RBRACKET", "']' closing evidence")
            formula = Evidence(formula, tuple(assignments))
        return formula

    def _substitution(self) -> Tuple[str, bool]:
        name = self._element_name()
        self._expect("ASSIGN", "':=' in evidence")
        token = self._expect("NUMBER", "0 or 1")
        if token.text not in ("0", "1"):
            raise BFLSyntaxError(
                f"evidence value must be 0 or 1, got {token.text!r}",
                token.line,
                token.column,
            )
        return name, token.text == "1"

    def _primary(self) -> Formula:
        if self._at_prob_query():
            token = self._current
            raise BFLSyntaxError(
                "probabilistic queries P(...) cannot be nested inside "
                "a formula",
                token.line,
                token.column,
            )
        if self._accept("LPAREN"):
            inner = self._inner_formula()
            self._expect("RPAREN", "')'")
            return inner
        keyword = self._keyword()
        if keyword in ("mcs", "mps"):
            self._advance()
            self._expect("LPAREN", f"'(' after {keyword.upper()}")
            inner = self._inner_formula()
            self._expect("RPAREN", f"')' closing {keyword.upper()}")
            return MCS(inner) if keyword == "mcs" else MPS(inner)
        if keyword == "vot":
            self._advance()
            return self._vot()
        if keyword == "true":
            self._advance()
            return Constant(True)
        if keyword == "false":
            self._advance()
            return Constant(False)
        if keyword in ("exists", "forall", "idp", "sup", "synthesize"):
            token = self._current
            raise BFLSyntaxError(
                f"layer-2 operator {keyword!r} cannot appear inside a formula",
                token.line,
                token.column,
            )
        if self._check("NAME") or self._check("QUOTED"):
            return Atom(self._element_name())
        token = self._current
        raise BFLSyntaxError(
            f"expected a formula, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _comparator(self) -> Optional[str]:
        """Consume a comparison operator token, if present (shared by
        VOT thresholds and PFL probability bounds)."""
        for kind, symbol in (
            ("GE", ">="),
            ("LE", "<="),
            ("EQ", "="),
            ("LT", "<"),
            ("GT", ">"),
        ):
            if self._accept(kind):
                return symbol
        return None

    def _vot(self) -> Formula:
        self._expect("LPAREN", "'(' after VOT")
        operator = self._comparator() or ">="
        token = self._expect("NUMBER", "VOT threshold")
        threshold = int(token.text)
        self._expect("SEMI", "';' between VOT threshold and operands")
        operands = [self._inner_formula()]
        while self._accept("COMMA"):
            operands.append(self._inner_formula())
        self._expect("RPAREN", "')' closing VOT")
        try:
            return Vot(operator, threshold, tuple(operands))
        except ValueError as error:
            raise BFLSyntaxError(str(error), token.line, token.column) from None

    def _element_name(self) -> str:
        if self._check("QUOTED"):
            return self._advance().text[1:-1]
        token = self._expect("NAME", "an element name")
        return token.text

    # -- PFL probability queries ----------------------------------------

    def _at_prob_query(self) -> bool:
        """True when the next tokens are ``P`` ``(`` — the start of a PFL
        query (an element named ``P`` on its own keeps working)."""
        return (
            self._check("NAME")
            and self._current.text.lower() == "p"
            and self._tokens[self._index + 1].kind == "LPAREN"
        )

    def _prob_query(self) -> ProbabilityQuery:
        opening = self._advance()  # the P
        self._expect("LPAREN", "'(' after P")
        saved = self._bar_conditional
        self._bar_conditional = True
        try:
            formula = self._formula()
            condition = None
            if self._accept("BAR"):
                condition = self._formula()
        finally:
            self._bar_conditional = saved
        self._expect("RPAREN", "')' closing P")
        settings: List[Tuple[str, float]] = []
        if self._accept("LBRACKET"):
            settings.append(self._prob_setting())
            while self._accept("COMMA"):
                settings.append(self._prob_setting())
            self._expect("RBRACKET", "']' closing probability settings")
        comparator = self._comparator()
        bound: Optional[float] = None
        if comparator is not None:
            bound = self._probability_value("probability bound")
        try:
            return ProbabilityQuery(
                formula=formula,
                condition=condition,
                comparator=comparator,
                bound=bound,
                settings=tuple(settings),
            )
        except ValueError as error:
            raise BFLSyntaxError(
                str(error), opening.line, opening.column
            ) from None

    def _prob_setting(self) -> Tuple[str, float]:
        name = self._element_name()
        self._expect("ASSIGN", "':=' in probability settings")
        return name, self._probability_value("a probability in [0, 1]")

    def _probability_value(self, what: str) -> float:
        if self._check("FLOAT") or self._check("NUMBER"):
            return float(self._advance().text)
        token = self._current
        raise BFLSyntaxError(
            f"expected {what}, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )


def parse(text: str) -> Statement:
    """Parse DSL text into a layer-1 :class:`Formula` or layer-2
    :class:`Query`.

    Raises:
        BFLSyntaxError: With a line/column position on bad input.
    """
    return _Parser(_tokenize(text)).parse_statement()


def parse_formula(text: str) -> Formula:
    """Parse text that must be a layer-1 formula."""
    statement = parse(text)
    if not isinstance(statement, Formula):
        raise BFLSyntaxError(
            "expected a layer-1 formula, got a layer-2 query"
        )
    return statement


def parse_request(text: str) -> Tuple[Statement, bool]:
    """Parse, recognising the paper's satisfaction-set brackets.

    ``[[ formula ]]`` means "compute all satisfying vectors" rather than
    "evaluate"; the second component of the result is True in that case.
    """
    stripped = text.strip()
    if stripped.startswith("[[") and stripped.endswith("]]"):
        return parse(stripped[2:-2]), True
    return parse(stripped), False


# ----------------------------------------------------------------------
# Pretty printing (the inverse of parsing)
# ----------------------------------------------------------------------

_BARE_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_/\-]*\Z")


def _format_name(name: str) -> str:
    if _BARE_NAME_RE.match(name) and name.lower() not in _KEYWORDS:
        return name
    return f'"{name}"'


def _precedence(formula: Formula) -> int:
    if isinstance(formula, (Equiv, NotEquiv)):
        return 1
    if isinstance(formula, Implies):
        return 2
    if isinstance(formula, Or):
        return 3
    if isinstance(formula, And):
        return 4
    if isinstance(formula, Not):
        return 5
    return 6


def _wrap(formula: Formula, parent_precedence: int) -> str:
    text = format_formula(formula)
    if _precedence(formula) < parent_precedence:
        return f"({text})"
    return text


def format_formula(formula: Formula) -> str:
    """Canonical DSL text for a formula; ``parse`` round-trips it."""
    if isinstance(formula, Atom):
        return _format_name(formula.name)
    if isinstance(formula, Constant):
        return "true" if formula.value else "false"
    if isinstance(formula, Not):
        return "!" + _wrap(formula.operand, 5)
    if isinstance(formula, And):
        return f"{_wrap(formula.left, 4)} & {_wrap(formula.right, 5)}"
    if isinstance(formula, Or):
        return f"{_wrap(formula.left, 3)} | {_wrap(formula.right, 4)}"
    if isinstance(formula, Implies):
        # Right associative: parenthesise a left operand of equal precedence.
        return f"{_wrap(formula.left, 3)} => {_wrap(formula.right, 2)}"
    if isinstance(formula, Equiv):
        return f"{_wrap(formula.left, 1)} <=> {_wrap(formula.right, 2)}"
    if isinstance(formula, NotEquiv):
        return f"{_wrap(formula.left, 1)} <!> {_wrap(formula.right, 2)}"
    if isinstance(formula, Evidence):
        inner = _wrap(formula.operand, 6)
        parts = ", ".join(
            f"{_format_name(name)} := {int(value)}"
            for name, value in formula.assignments
        )
        return f"{inner}[{parts}]"
    if isinstance(formula, MCS):
        return f"MCS({format_formula(formula.operand)})"
    if isinstance(formula, MPS):
        return f"MPS({format_formula(formula.operand)})"
    if isinstance(formula, Vot):
        operands = ", ".join(format_formula(op) for op in formula.operands)
        return f"VOT({formula.operator} {formula.threshold}; {operands})"
    raise TypeError(f"cannot format {formula!r}")


def _format_probability(value: float) -> str:
    return repr(float(value))


def format_statement(statement: Statement) -> str:
    """Canonical DSL text for a statement."""
    if isinstance(statement, ProbabilityQuery):
        # An unparenthesised top-level `|` inside P(...) is the
        # conditioning bar, so Or (and looser) operands are wrapped.
        inner = _wrap(statement.formula, 4)
        if statement.condition is not None:
            inner += f" | {_wrap(statement.condition, 4)}"
        text = f"P({inner})"
        if statement.settings:
            parts = ", ".join(
                f"{_format_name(name)} := {_format_probability(value)}"
                for name, value in statement.settings
            )
            text += f"[{parts}]"
        if statement.comparator is not None:
            text += (
                f" {statement.comparator} "
                f"{_format_probability(statement.bound)}"
            )
        return text
    if isinstance(statement, Exists):
        return f"exists ({format_formula(statement.operand)})"
    if isinstance(statement, Forall):
        return f"forall ({format_formula(statement.operand)})"
    if isinstance(statement, IDP):
        return (
            f"IDP({format_formula(statement.left)}, "
            f"{format_formula(statement.right)})"
        )
    if isinstance(statement, SUP):
        return f"SUP({_format_name(statement.element)})"
    if isinstance(statement, Synthesize):
        text = f"SYNTHESIZE({format_formula(statement.formula)}"
        if statement.candidates:
            text += "; " + ", ".join(
                _format_name(name) for name in statement.candidates
            )
        return text + ")"
    if isinstance(statement, Formula):
        return format_formula(statement)
    raise TypeError(f"cannot format {statement!r}")
