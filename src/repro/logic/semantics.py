"""Enumerative reference semantics for BFL (paper Sec. III-B).

This module evaluates BFL by *direct implementation of the satisfaction
relation*: the structure function for atoms, vector surgery for evidence,
explicit subset/superset enumeration for MCS/MPS, and exhaustive
quantification for the second layer.  Everything is exponential in the
number of basic events — deliberately so: it is the obviously-correct
baseline against which the BDD-based model checker (Sec. V) is
cross-validated in the tests, and the slow arm of the scalability
benchmark.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..errors import LogicError, StatusVectorError
from ..ft.structure import evaluate_all
from ..ft.tree import FaultTree, StatusVector
from .ast_nodes import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    Formula,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    Query,
    Statement,
    Vot,
)
from .scope import MinimalityScope
from .sugar import vot_comparator

#: Enumeration guard: 2^n vectors get unwieldy fast.
_MAX_BASIC_EVENTS = 22


class ReferenceSemantics:
    """Evaluate BFL statements on a fault tree by exhaustive enumeration.

    Args:
        tree: The fault tree ``T``.
        scope: Minimality scope for MCS/MPS (see
            :class:`~repro.logic.scope.MinimalityScope`).

    Raises:
        LogicError: If the tree is too large for enumeration.
    """

    def __init__(
        self,
        tree: FaultTree,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
    ) -> None:
        if len(tree.basic_events) > _MAX_BASIC_EVENTS:
            raise LogicError(
                "reference semantics enumerates all vectors and is limited "
                f"to {_MAX_BASIC_EVENTS} basic events"
            )
        self.tree = tree
        self.scope = scope
        self._status_cache: Dict[Tuple[bool, ...], Dict[str, bool]] = {}
        self._ibe_cache: Dict[Formula, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    # Vector helpers
    # ------------------------------------------------------------------

    def _key(self, vector: StatusVector) -> Tuple[bool, ...]:
        return tuple(bool(vector[name]) for name in self.tree.basic_events)

    def _statuses(self, vector: StatusVector) -> Dict[str, bool]:
        key = self._key(vector)
        cached = self._status_cache.get(key)
        if cached is None:
            cached = evaluate_all(self.tree, dict(zip(self.tree.basic_events, key)))
            self._status_cache[key] = cached
        return cached

    def iter_vectors(self) -> Iterator[Dict[str, bool]]:
        """All ``2^n`` status vectors of the tree."""
        names = self.tree.basic_events
        for bits in itertools.product((False, True), repeat=len(names)):
            yield dict(zip(names, bits))

    # ------------------------------------------------------------------
    # Layer 1: b, T |= phi
    # ------------------------------------------------------------------

    def holds(self, statement: Statement, vector: Optional[StatusVector] = None) -> bool:
        """``b, T |= phi`` for formulae / ``T |= psi`` for queries.

        Args:
            statement: A layer-1 formula or a layer-2 query.
            vector: The status vector ``b``; required for layer-1.
        """
        if isinstance(statement, Query):
            return self._holds_query(statement)
        if vector is None:
            raise StatusVectorError(
                "layer-1 formulae are evaluated against a status vector; "
                "pass one or wrap the formula in exists/forall"
            )
        self.tree.check_vector(vector)
        return self._eval(statement, {name: bool(vector[name]) for name in self.tree.basic_events})

    def _eval(self, formula: Formula, vector: Dict[str, bool]) -> bool:
        if isinstance(formula, Atom):
            if formula.name not in self.tree:
                raise LogicError(
                    f"formula mentions unknown element {formula.name!r}"
                )
            return self._statuses(vector)[formula.name]
        if isinstance(formula, Constant):
            return formula.value
        if isinstance(formula, Not):
            return not self._eval(formula.operand, vector)
        if isinstance(formula, And):
            return self._eval(formula.left, vector) and self._eval(
                formula.right, vector
            )
        if isinstance(formula, Or):
            return self._eval(formula.left, vector) or self._eval(
                formula.right, vector
            )
        if isinstance(formula, Implies):
            return (not self._eval(formula.left, vector)) or self._eval(
                formula.right, vector
            )
        if isinstance(formula, Equiv):
            return self._eval(formula.left, vector) == self._eval(
                formula.right, vector
            )
        if isinstance(formula, NotEquiv):
            return self._eval(formula.left, vector) != self._eval(
                formula.right, vector
            )
        if isinstance(formula, Evidence):
            # The tuple [e1 -> v1, ..., ek -> vk] abbreviates the chain
            # phi[e1 -> v1]...[ek -> vk]; under the paper's semantics the
            # innermost (leftmost) substitution of a variable wins, exactly
            # as iterated Restrict behaves.  Apply right-to-left so earlier
            # assignments overwrite later ones.
            modified = dict(vector)
            for name, value in reversed(formula.assignments):
                if name not in self.tree.basic_events:
                    raise LogicError(
                        f"evidence target {name!r} is not a basic event"
                    )
                modified[name] = value
            return self._eval(formula.operand, modified)
        if isinstance(formula, Vot):
            count = sum(
                1 for op in formula.operands if self._eval(op, vector)
            )
            return vot_comparator(formula.operator)(count, formula.threshold)
        if isinstance(formula, MCS):
            return self._eval_mcs(formula, vector)
        if isinstance(formula, MPS):
            return self._eval_mps(formula, vector)
        raise TypeError(f"cannot evaluate {formula!r}")

    def _minimality_scope(self, operand: Formula) -> FrozenSet[str]:
        if self.scope is MinimalityScope.FULL:
            return frozenset(self.tree.basic_events)
        return self.influencing_basic_events(operand)

    def _eval_mcs(self, formula: MCS, vector: Dict[str, bool]) -> bool:
        """Sec. III-B: ``b |= MCS(phi)`` iff ``b |= phi`` and no vector with
        a strictly smaller failed set (within scope) satisfies ``phi``."""
        if not self._eval(formula.operand, vector):
            return False
        scope = self._minimality_scope(formula.operand)
        failed = [name for name in scope if vector[name]]
        for r in range(len(failed)):
            for keep in itertools.combinations(failed, r):
                smaller = dict(vector)
                for name in failed:
                    smaller[name] = name in keep
                if self._eval(formula.operand, smaller):
                    return False
        return True

    def _eval_mps(self, formula: MPS, vector: Dict[str, bool]) -> bool:
        """DESIGN.md deviation 1: ``b |= MPS(phi)`` iff ``b |= not phi`` and
        every vector with a strictly larger failed set (within scope)
        satisfies ``phi``."""
        if self._eval(formula.operand, vector):
            return False
        scope = self._minimality_scope(formula.operand)
        operational = [name for name in scope if not vector[name]]
        for r in range(1, len(operational) + 1):
            for flip in itertools.combinations(operational, r):
                larger = dict(vector)
                for name in flip:
                    larger[name] = True
                if not self._eval(formula.operand, larger):
                    return False
        return True

    # ------------------------------------------------------------------
    # Layer 2: T |= psi
    # ------------------------------------------------------------------

    def _holds_query(self, query: Query) -> bool:
        if isinstance(query, Exists):
            return any(
                self._eval(query.operand, vector) for vector in self.iter_vectors()
            )
        if isinstance(query, Forall):
            return all(
                self._eval(query.operand, vector) for vector in self.iter_vectors()
            )
        if isinstance(query, IDP):
            left = self.influencing_basic_events(query.left)
            right = self.influencing_basic_events(query.right)
            return not left & right
        if isinstance(query, SUP):
            return self._holds_query(
                IDP(Atom(query.element), Atom(self.tree.top))
            )
        raise TypeError(f"cannot evaluate {query!r}")

    # ------------------------------------------------------------------
    # IBE and satisfaction sets
    # ------------------------------------------------------------------

    def influencing_basic_events(self, formula: Formula) -> FrozenSet[str]:
        """The paper's ``IBE(phi)``: basic events whose value can flip the
        truth value of ``phi`` in some context (computed by enumeration)."""
        cached = self._ibe_cache.get(formula)
        if cached is not None:
            return cached
        influencing = set()
        for name in self.tree.basic_events:
            for vector in self.iter_vectors():
                low = dict(vector)
                low[name] = False
                high = dict(vector)
                high[name] = True
                if self._eval(formula, low) != self._eval(formula, high):
                    influencing.add(name)
                    break
        result = frozenset(influencing)
        self._ibe_cache[formula] = result
        return result

    def satisfying_vectors(self, formula: Formula) -> List[Dict[str, bool]]:
        """The paper's ``[[phi]]``: every status vector satisfying the
        formula, in lexicographic order."""
        return [
            vector
            for vector in self.iter_vectors()
            if self._eval(formula, vector)
        ]
