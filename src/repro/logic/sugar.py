"""Desugaring: rewrite derived BFL operators into the core grammar.

Implements the paper's "syntactic sugar" table literally::

    phi or phi'   ::=  not(not phi and not phi')
    phi => phi'   ::=  not(phi and not phi')
    phi <=> phi'  ::=  (phi => phi') and (phi' => phi)
    phi <!> phi'  ::=  not(phi <=> phi')
    SUP(e)        ::=  IDP(e, e_top)
    Vot_{op k}(phi_1..phi_N) ::= OR over subsets U with |U| op k of
                                 (AND_{u in U} phi_u  and  AND_{u not in U} not phi_u)

``MPS`` is the one place where the sugar table cannot be taken literally
(DESIGN.md deviation 1): :func:`desugar` therefore keeps ``MPS`` as a core
node.  The paper-literal rewrite ``MPS(phi) -> MCS(not phi)`` is still
available as :func:`mps_literal_rewrite` so the discrepancy can be
demonstrated (see ``tests/test_mps_semantics.py``).

The expansion of ``Vot`` is exponential in N — that is the point of the
table; the checker instead builds the threshold BDD directly, and the test
suite proves the two agree.
"""

from __future__ import annotations

import itertools
import operator
from typing import Callable, Dict

from .ast_nodes import (
    MCS,
    MPS,
    SUP,
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Exists,
    Forall,
    Formula,
    IDP,
    Implies,
    Not,
    NotEquiv,
    Or,
    Statement,
    Vot,
    conj,
    disj,
)

_COMPARATORS: Dict[str, Callable[[int, int], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    ">=": operator.ge,
    ">": operator.gt,
}


def vot_comparator(symbol: str) -> Callable[[int, int], bool]:
    """The Python comparator for a ``Vot`` operator symbol."""
    return _COMPARATORS[symbol]


def expand_vot(node: Vot) -> Formula:
    """The paper's exponential subset expansion of ``Vot_{op k}``."""
    n = len(node.operands)
    compare = vot_comparator(node.operator)
    disjuncts = []
    for size in range(n + 1):
        if not compare(size, node.threshold):
            continue
        for chosen in itertools.combinations(range(n), size):
            chosen_set = set(chosen)
            literals = [
                node.operands[i] if i in chosen_set else Not(node.operands[i])
                for i in range(n)
            ]
            disjuncts.append(conj(*literals))
    if not disjuncts:
        return Constant(False)
    return disj(*disjuncts)


def desugar(formula: Formula) -> Formula:
    """Rewrite ``formula`` into the core grammar
    (Atom / Constant / Not / And / Evidence / MCS / MPS)."""
    if isinstance(formula, (Atom, Constant)):
        return formula
    if isinstance(formula, Not):
        return Not(desugar(formula.operand))
    if isinstance(formula, And):
        return And(desugar(formula.left), desugar(formula.right))
    if isinstance(formula, Or):
        return Not(
            And(Not(desugar(formula.left)), Not(desugar(formula.right)))
        )
    if isinstance(formula, Implies):
        return Not(And(desugar(formula.left), Not(desugar(formula.right))))
    if isinstance(formula, Equiv):
        return desugar(
            And(
                Implies(formula.left, formula.right),
                Implies(formula.right, formula.left),
            )
        )
    if isinstance(formula, NotEquiv):
        return Not(desugar(Equiv(formula.left, formula.right)))
    if isinstance(formula, Evidence):
        return Evidence(desugar(formula.operand), formula.assignments)
    if isinstance(formula, MCS):
        return MCS(desugar(formula.operand))
    if isinstance(formula, MPS):
        return MPS(desugar(formula.operand))
    if isinstance(formula, Vot):
        return desugar(expand_vot(formula))
    raise TypeError(f"cannot desugar {formula!r}")


def mps_literal_rewrite(formula: Formula) -> Formula:
    """The paper-literal sugar ``MPS(phi) ::= MCS(not phi)``.

    Provided *only* to demonstrate that the literal reading collapses
    ``[[MPS(e_top)]]`` to the all-operational vector; not used by the
    checker (DESIGN.md deviation 1).
    """
    if isinstance(formula, MPS):
        return MCS(Not(mps_literal_rewrite(formula.operand)))
    if isinstance(formula, (Atom, Constant)):
        return formula
    if isinstance(formula, Not):
        return Not(mps_literal_rewrite(formula.operand))
    if isinstance(formula, And):
        return And(
            mps_literal_rewrite(formula.left), mps_literal_rewrite(formula.right)
        )
    if isinstance(formula, Or):
        return Or(
            mps_literal_rewrite(formula.left), mps_literal_rewrite(formula.right)
        )
    if isinstance(formula, Implies):
        return Implies(
            mps_literal_rewrite(formula.left), mps_literal_rewrite(formula.right)
        )
    if isinstance(formula, Evidence):
        return Evidence(mps_literal_rewrite(formula.operand), formula.assignments)
    if isinstance(formula, MCS):
        return MCS(mps_literal_rewrite(formula.operand))
    if isinstance(formula, Vot):
        return Vot(
            formula.operator,
            formula.threshold,
            tuple(mps_literal_rewrite(op) for op in formula.operands),
        )
    return formula


def desugar_statement(statement: Statement, top: str) -> Statement:
    """Desugar a statement; ``SUP(e)`` needs the tree's top element name."""
    if isinstance(statement, Formula):
        return desugar(statement)
    if isinstance(statement, Exists):
        return Exists(desugar(statement.operand))
    if isinstance(statement, Forall):
        return Forall(desugar(statement.operand))
    if isinstance(statement, IDP):
        return IDP(desugar(statement.left), desugar(statement.right))
    if isinstance(statement, SUP):
        return IDP(Atom(statement.element), Atom(top))
    raise TypeError(f"cannot desugar {statement!r}")
