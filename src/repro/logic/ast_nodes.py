"""Abstract syntax of BFL (paper Sec. III-A).

The logic has two syntactic layers::

    phi ::= e | not phi | phi and phi | phi[e -> 0] | phi[e -> 1] | MCS(phi)
    psi ::= exists phi | forall phi | IDP(phi, phi)

Layer-1 formulae (:class:`Formula`) are evaluated against a status vector;
layer-2 queries (:class:`Query`) quantify over vectors.  The derived
operators of the paper's "syntactic sugar" table (or, implies, equiv, xor,
MPS, SUP, Vot) are first-class AST nodes here so they can be printed,
pattern-matched and — crucially — *desugared* by :mod:`repro.logic.sugar`,
which lets the test suite verify the paper's sugar definitions.

Formula classes are immutable and hashable, so they can serve as cache keys
in Algorithm 1 (``store intermediate results BT(...) in a cache``).

Construction helpers allow idiomatic formula building::

    >>> from repro.logic import atom
    >>> iw, h3 = atom("IW"), atom("H3")
    >>> formula = (iw & h3).implies(atom("CP"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple, Union

from ..errors import LayerError

#: Comparison operators allowed in ``Vot`` (the paper's ``|><|``).
VOT_OPERATORS = ("<", "<=", "=", ">=", ">")


class Formula:
    """Base class of layer-1 formulae (the paper's ``phi``).

    Provides operator overloading (``&``, ``|``, ``~``, ``>>``) plus the
    named combinators used throughout the examples.
    """

    __slots__ = ()

    # -- combinators ----------------------------------------------------

    def __and__(self, other: "Formula") -> "And":
        return And(self, _as_formula(other))

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, _as_formula(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, _as_formula(other))

    def implies(self, other: "Formula") -> "Implies":
        """``self => other``."""
        return Implies(self, _as_formula(other))

    def equiv(self, other: "Formula") -> "Equiv":
        """``self <=> other``."""
        return Equiv(self, _as_formula(other))

    def nequiv(self, other: "Formula") -> "NotEquiv":
        """``self <!> other`` (the paper's ``not-equiv``)."""
        return NotEquiv(self, _as_formula(other))

    def given(self, **evidence: Union[bool, int]) -> "Evidence":
        """Attach evidence: ``formula.given(H1=0, H2=1)`` is
        ``formula[H1 -> 0][H2 -> 1]``.

        Raises:
            ValueError: If a value is not one of ``0``, ``1``, ``False``,
                ``True`` — evidence is a Boolean substitution, and
                silently coercing e.g. ``given(H1=2)`` to ``1`` hides a
                caller bug.
        """
        assignments = []
        for name, value in evidence.items():
            if not isinstance(value, (bool, int)) or value not in (0, 1):
                raise ValueError(
                    f"evidence value for {name!r} must be 0, 1, False or "
                    f"True, got {value!r}"
                )
            assignments.append((name, bool(value)))
        return Evidence(self, tuple(assignments))

    # -- structure ------------------------------------------------------

    def children(self) -> Tuple["Formula", ...]:
        """Direct subformulae (empty for atoms/constants)."""
        raise NotImplementedError

    def atoms(self) -> FrozenSet[str]:
        """Names of all fault-tree elements mentioned (including evidence
        targets)."""
        names = set()
        for node in self.walk():
            if isinstance(node, Atom):
                names.add(node.name)
            elif isinstance(node, Evidence):
                names.update(name for name, _ in node.assignments)
        return frozenset(names)

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal of the formula tree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


def _as_formula(value: Union["Formula", str]) -> "Formula":
    if isinstance(value, Formula):
        return value
    if isinstance(value, str):
        return Atom(value)
    raise TypeError(f"expected a Formula or element name, got {value!r}")


# ----------------------------------------------------------------------
# Core layer-1 constructors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Atom(Formula):
    """A fault-tree element ``e`` (basic *or* intermediate)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("atom names must be non-empty")

    def children(self) -> Tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Constant(Formula):
    """A Boolean constant (``true`` / ``false``); handy in patterns."""

    value: bool

    def children(self) -> Tuple[Formula, ...]:
        return ()


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``not phi``."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class And(Formula):
    """Conjunction ``phi and phi'``."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Evidence(Formula):
    """Evidence ``phi[e1 -> v1, ..., ek -> vk]`` (paper's ``phi[e -> 0/1]``).

    The paper's Property 6 chains several substitutions; we store them as an
    ordered tuple abbreviating the chain ``phi[e1 -> v1]...[ek -> vk]``.  If
    a variable is listed twice, the leftmost (innermost) substitution wins —
    matching iterated ``Restrict``.  Note ``phi[e -> 0]`` is *not*
    ``phi and not e`` — see the paper's remark in Sec. III-A.
    """

    operand: Formula
    assignments: Tuple[Tuple[str, bool], ...]

    def __post_init__(self) -> None:
        if not self.assignments:
            raise ValueError("evidence needs at least one assignment")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class MCS(Formula):
    """``MCS(phi)``: the current vector is a minimal satisfying vector."""

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


# ----------------------------------------------------------------------
# Sugared layer-1 constructors
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Or(Formula):
    """``phi or phi'  ==  not(not phi and not phi')``."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Implies(Formula):
    """``phi => phi'  ==  not(phi and not phi')``."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Equiv(Formula):
    """``phi <=> phi'  ==  (phi => phi') and (phi' => phi)``."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class NotEquiv(Formula):
    """``phi <!> phi'  ==  not(phi <=> phi')``."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class MPS(Formula):
    """``MPS(phi)``: the current vector's operational set is a minimal
    path set for ``phi``.

    The paper's sugar ``MPS(phi) ::= MCS(not phi)`` is implemented with the
    inclusion order *dualised* (maximal vectors of ``not phi``); see
    DESIGN.md deviation 1 for why the literal reading contradicts the
    paper's own results.
    """

    operand: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Vot(Formula):
    """``Vot_{op k}(phi_1, ..., phi_N)``: the number of operands that hold
    compares with ``k`` under ``op`` (default ``>=`` as in the paper's
    Property 4)."""

    operator: str
    threshold: int
    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if self.operator not in VOT_OPERATORS:
            raise ValueError(
                f"Vot operator must be one of {VOT_OPERATORS}, "
                f"got {self.operator!r}"
            )
        if not self.operands:
            raise ValueError("Vot needs at least one operand")
        if not 0 <= self.threshold <= len(self.operands):
            raise ValueError(
                f"Vot threshold {self.threshold} outside "
                f"0..{len(self.operands)}"
            )

    def children(self) -> Tuple[Formula, ...]:
        return self.operands


# ----------------------------------------------------------------------
# Layer 2 (the paper's psi)
# ----------------------------------------------------------------------

class Query:
    """Base class of layer-2 queries (evaluated on the tree alone)."""

    __slots__ = ()


@dataclass(frozen=True)
class Exists(Query):
    """``exists phi``: some status vector satisfies ``phi``."""

    operand: Formula


@dataclass(frozen=True)
class Forall(Query):
    """``forall phi``: every status vector satisfies ``phi``."""

    operand: Formula


@dataclass(frozen=True)
class IDP(Query):
    """``IDP(phi, phi')``: the formulae share no influencing basic event."""

    left: Formula
    right: Formula


@dataclass(frozen=True)
class SUP(Query):
    """``SUP(e) ::= IDP(e, e_top)``: element ``e`` is superfluous."""

    element: str

    def __post_init__(self) -> None:
        if not self.element:
            raise ValueError("SUP needs an element name")


@dataclass(frozen=True)
class Synthesize(Query):
    """``SYNTHESIZE(phi; e1, ..., ek)``: repair-region query.

    For a target property ``phi`` and a candidate event set ``C``
    (default: every basic event), project ``[[phi]]`` onto ``C`` by
    existentially quantifying the other events, and classify each
    candidate as **must-1** (failed in every satisfying completion),
    **must-0** (operational in every satisfying completion) or
    **don't-care**.  This is the BDD-quantification face of the paper's
    Sec. V-E synthesis discussion: instead of enumerating assignments,
    the satisfying region over ``C`` is computed with one quantification
    sweep plus two restrictions per candidate.

    An empty ``candidates`` tuple means "all basic events of the tree"
    (resolved at evaluation time, since the AST does not know the tree).
    """

    formula: Formula
    candidates: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_layer1(self.formula)
        for name in self.candidates:
            if not name:
                raise ValueError(
                    "SYNTHESIZE candidate names must be non-empty"
                )
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("SYNTHESIZE candidates must be distinct")


@dataclass(frozen=True)
class ProbabilityQuery(Query):
    """PFL-style probabilistic query over a layer-1 formula.

    The quantitative layer the paper lists as future work (realised by
    the authors as PFL): ``P(phi) |><| p``, the conditional form
    ``P(phi | psi) |><| p``, and probability-annotated *settings*
    ``P(phi)[e := 0.3] |><| p`` that override the failure probability of
    individual basic events for this query only (``0``/``1`` recover the
    deterministic setting operators).

    ``comparator``/``bound`` may both be ``None``, in which case the
    query asks for the probability *value* instead of a truth value
    (the batch service reports it in the ``probability`` field).
    """

    formula: Formula
    condition: Optional[Formula] = None
    comparator: Optional[str] = None
    bound: Optional[float] = None
    settings: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        require_layer1(self.formula)
        if self.condition is not None:
            require_layer1(self.condition)
        if (self.comparator is None) != (self.bound is None):
            raise ValueError(
                "probability comparator and bound must come together"
            )
        if self.comparator is not None and self.comparator not in VOT_OPERATORS:
            raise ValueError(
                f"probability comparator must be one of {VOT_OPERATORS}, "
                f"got {self.comparator!r}"
            )
        if self.bound is not None and not 0.0 <= self.bound <= 1.0:
            raise ValueError(
                f"probability bound {self.bound} outside [0, 1]"
            )
        for name, value in self.settings:
            if not name:
                raise ValueError("probability settings need element names")
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"probability setting for {name!r} outside [0, 1]: "
                    f"{value}"
                )


#: Anything the parser can return: a bare layer-1 formula or a query.
Statement = Union[Formula, Query]


def atom(name: str) -> Atom:
    """Convenience constructor: ``atom("IW")``."""
    return Atom(name)


def atoms(*names: str) -> Tuple[Atom, ...]:
    """Convenience constructor for several atoms at once."""
    return tuple(Atom(name) for name in names)


def conj(*formulae: Formula) -> Formula:
    """Right-folded conjunction of one or more formulae."""
    if not formulae:
        return Constant(True)
    result = formulae[-1]
    for item in reversed(formulae[:-1]):
        result = And(_as_formula(item), result)
    return result


def disj(*formulae: Formula) -> Formula:
    """Right-folded disjunction of one or more formulae."""
    if not formulae:
        return Constant(False)
    result = formulae[-1]
    for item in reversed(formulae[:-1]):
        result = Or(_as_formula(item), result)
    return result


def require_layer1(value: Statement) -> Formula:
    """Raise :class:`LayerError` unless ``value`` is a layer-1 formula."""
    if isinstance(value, Formula):
        return value
    raise LayerError(
        "a layer-2 query (exists/forall/IDP/SUP) cannot be nested "
        "inside a formula"
    )
