"""Rendering: ASCII trees, failure propagation, DOT export."""

from .ascii_tree import render_tree
from .dot import tree_to_dot
from .propagation import counterexample_view, propagation_view

__all__ = [
    "counterexample_view",
    "propagation_view",
    "render_tree",
    "tree_to_dot",
]
