"""Failure-propagation views (paper Sec. VI, Table I's picture columns).

Given a tree and a status vector, :func:`propagation_view` lists how the
failure travels from the failed leaves to the top.  Given an original
vector and an Algorithm-4 counterexample, :func:`counterexample_view`
renders the side-by-side "example vs counterexample" comparison of Table I:
which basic events changed, and how every element's status differs.
"""

from __future__ import annotations

from typing import List

from ..checker.counterexample import Counterexample
from ..ft.structure import evaluate_all
from ..ft.tree import FaultTree, StatusVector
from .ascii_tree import render_tree


def propagation_view(tree: FaultTree, vector: StatusVector) -> str:
    """Text block: vector, failed elements by depth, annotated tree."""
    status = evaluate_all(tree, vector)
    failed_bes = sorted(n for n in tree.basic_events if status[n])
    failed_gates = sorted(
        (tree.depth(n), n) for n in tree.gate_names if status[n]
    )
    lines: List[str] = []
    bits = ", ".join(f"{n}={int(status[n])}" for n in tree.basic_events)
    lines.append(f"status vector: ({bits})")
    lines.append(
        "failed basic events: "
        + ("{" + ", ".join(failed_bes) + "}" if failed_bes else "none")
    )
    if failed_gates:
        chain = " -> ".join(name for _, name in sorted(failed_gates, reverse=True))
        lines.append(f"failure propagates: {chain}")
    top_state = "FAILS" if status[tree.top] else "stays operational"
    lines.append(f"top level event {tree.top}: {top_state}")
    lines.append(render_tree(tree, vector))
    return "\n".join(lines)


def counterexample_view(
    tree: FaultTree, counterexample: Counterexample
) -> str:
    """Table-I style comparison of ``b`` and the counterexample ``b'``."""
    before = evaluate_all(tree, counterexample.original)
    after = evaluate_all(tree, counterexample.vector)
    lines: List[str] = []
    if not counterexample.changed:
        lines.append("vector already satisfies the formula; nothing to change")
    else:
        changes = ", ".join(
            f"{name}: {int(counterexample.original[name])}"
            f"->{int(counterexample.vector[name])}"
            for name in counterexample.changed
        )
        lines.append(f"changed basic events: {changes}")
        compliant = "yes" if counterexample.def7_compliant else "NO"
        lines.append(f"every change necessary (Def. 7): {compliant}")
    element_changes = [
        f"{name}: {int(before[name])}->{int(after[name])}"
        for name in tree.gate_names
        if before[name] != after[name]
    ]
    if element_changes:
        lines.append("gate status changes: " + ", ".join(element_changes))
    lines.append("--- example b ---")
    lines.append(render_tree(tree, counterexample.original))
    lines.append("--- counterexample b' ---")
    lines.append(render_tree(tree, counterexample.vector))
    return "\n".join(lines)
