"""ASCII rendering of fault trees, optionally annotated with a status vector.

This is the textual analogue of the paper's tree pictures: each element
shows its gate type and, when a status vector is given, whether it fails
(``[X]``) or stays operational (``[ ]``) under that vector — the failure
propagation the paper draws in Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ft.structure import evaluate_all
from ..ft.tree import FaultTree, StatusVector


def _label(
    tree: FaultTree, name: str, status: Optional[Dict[str, bool]]
) -> str:
    if tree.is_basic(name):
        kind = "BE"
    else:
        kind = tree.gate(name).describe_type()
    mark = ""
    if status is not None:
        mark = " [X]" if status[name] else " [ ]"
    description = tree.describe(name)
    suffix = f"  -- {description}" if description != name else ""
    return f"{name} ({kind}){mark}{suffix}"


def render_tree(
    tree: FaultTree,
    vector: Optional[StatusVector] = None,
    root: Optional[str] = None,
    show_descriptions: bool = False,
) -> str:
    """Draw ``tree`` (or the subtree under ``root``) as indented ASCII art.

    Args:
        tree: The fault tree.
        vector: Optional status vector; adds ``[X]``/``[ ]`` failure marks
            on every element (gates via the structure function).
        root: Element to start from (default: the top level event).
        show_descriptions: Append element descriptions after each node.

    Repeated (shared) elements are expanded at each occurrence, with a
    ``*`` marker after the first, mirroring how Fig. 2 repeats leaves.
    """
    status = evaluate_all(tree, vector) if vector is not None else None
    start = root if root is not None else tree.top
    lines: List[str] = []
    seen: set = set()

    def visit(name: str, prefix: str, connector: str) -> None:
        label = _label(tree, name, status)
        if not show_descriptions:
            label = label.split("  -- ")[0]
        repeat = " *" if name in seen and not tree.is_basic(name) else ""
        if name in seen and tree.is_basic(name):
            repeat = " *"
        lines.append(f"{prefix}{connector}{label}{repeat}")
        first_visit = name not in seen
        seen.add(name)
        children = tree.children(name)
        if not children or (not first_visit and not tree.is_basic(name)):
            # Shared gates are drawn once in full; later occurrences are
            # marked with '*' and not re-expanded.
            return
        child_prefix = prefix + ("   " if connector in ("", "`- ") else "|  ")
        for i, child in enumerate(children):
            last = i == len(children) - 1
            visit(child, child_prefix, "`- " if last else "|- ")

    visit(start, "", "")
    return "\n".join(lines)
