"""Graphviz DOT export for fault trees (the shape of the paper's Fig. 2).

Gates are drawn as house/invhouse/diamond shapes (AND/OR/VOT), basic events
as circles.  With a status vector, failed elements are filled red and
operational ones green, matching the red/green propagation pictures of
Table I.
"""

from __future__ import annotations

from typing import List, Optional

from ..ft.elements import GateType
from ..ft.structure import evaluate_all
from ..ft.tree import FaultTree, StatusVector

_GATE_SHAPES = {
    GateType.AND: "invhouse",
    GateType.OR: "house",
    GateType.VOT: "diamond",
}


def _escape(name: str) -> str:
    return name.replace('"', '\\"')


def tree_to_dot(
    tree: FaultTree,
    vector: Optional[StatusVector] = None,
    name: str = "fault_tree",
    show_descriptions: bool = False,
) -> str:
    """Render ``tree`` as a DOT digraph (top-down).

    Args:
        tree: The fault tree.
        vector: Optional status vector for red/green colouring.
        name: DOT graph name.
        show_descriptions: Use element descriptions as labels.
    """
    status = evaluate_all(tree, vector) if vector is not None else None
    lines: List[str] = [f"digraph {name} {{", "  rankdir=TB;"]
    for element in tree.elements:
        label = (
            tree.describe(element) if show_descriptions else element
        )
        attrs = []
        if tree.is_basic(element):
            attrs.append("shape=circle")
        else:
            gate = tree.gate(element)
            attrs.append(f"shape={_GATE_SHAPES[gate.gate_type]}")
            if gate.gate_type is GateType.VOT:
                label = f"{label}\\n{gate.describe_type()}"
            else:
                label = f"{label}\\n{gate.gate_type.name}"
        attrs.append(f'label="{_escape(label)}"')
        if status is not None:
            colour = "indianred1" if status[element] else "palegreen"
            attrs.append("style=filled")
            attrs.append(f"fillcolor={colour}")
        lines.append(f'  "{_escape(element)}" [{", ".join(attrs)}];')
    for gate_name in tree.gate_names:
        for child in tree.children(gate_name):
            lines.append(
                f'  "{_escape(gate_name)}" -> "{_escape(child)}";'
            )
    lines.append("}")
    return "\n".join(lines)
