"""Quantitative extension (the paper's future work #1): probabilities,
importance measures and PBFL-lite queries over BFL formulae."""

from .importance import ImportanceRow, importance_table, render_importance_table
from .measure import (
    MissingProbabilityError,
    bdd_probability,
    conditional_probability,
    enumeration_probability,
    event_probabilities,
    min_cut_upper_bound,
    rare_event_approximation,
)
from .queries import ProbQuery, ProbabilityChecker, parse_prob_query

__all__ = [
    "ImportanceRow",
    "MissingProbabilityError",
    "ProbQuery",
    "ProbabilityChecker",
    "bdd_probability",
    "parse_prob_query",
    "conditional_probability",
    "enumeration_probability",
    "event_probabilities",
    "importance_table",
    "min_cut_upper_bound",
    "rare_event_approximation",
    "render_importance_table",
]
