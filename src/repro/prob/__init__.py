"""Quantitative extension (the paper's future work #1): probabilities,
importance measures and PFL queries over BFL formulae, served by the
kernel's weighted-evaluation pass."""

from .importance import ImportanceRow, importance_table, render_importance_table
from .measure import (
    MissingProbabilityError,
    ZeroProbabilityEvidenceError,
    bdd_probability,
    bdd_probability_many,
    conditional_probability,
    enumeration_probability,
    event_probabilities,
    min_cut_upper_bound,
    rare_event_approximation,
    recursive_probability,
)
from .queries import (
    ProbQuery,
    ProbabilityChecker,
    ProbabilityOutcome,
    parse_prob_query,
)

__all__ = [
    "ImportanceRow",
    "MissingProbabilityError",
    "ProbQuery",
    "ProbabilityChecker",
    "ProbabilityOutcome",
    "ZeroProbabilityEvidenceError",
    "bdd_probability",
    "bdd_probability_many",
    "parse_prob_query",
    "conditional_probability",
    "enumeration_probability",
    "event_probabilities",
    "importance_table",
    "min_cut_upper_bound",
    "rare_event_approximation",
    "recursive_probability",
    "render_importance_table",
]
