"""PFL: probabilistic queries over BFL formulae.

The paper's future work asks for "a probabilistic fault tree logic" —
realised by the authors as PFL.  This module provides the query surface
over the kernel's weighted-evaluation pass:

    P(phi) |><| c                  e.g.  P(MoT) >= 0.3
    P(phi | psi) |><| c            e.g.  P(MoT | H1 & VW) < 0.5
    P(phi)[e := p, ...] |><| c     per-query probability settings

where ``phi``/``psi`` are any layer-1 BFL formulae, evaluated against
independent basic-event failure probabilities.  Probabilities are
computed on exactly the BDD that Algorithm 1 builds for ``phi``, so
every BFL construct — evidence, MCS/MPS, VOT — participates for free,
and the BDDs land in the same manager (and manager-level probability
cache) the qualitative checker uses, which is what makes repeated
queries cheap.

Note the design decision documented here: for ``P(phi)`` the probability
mass of a formula is the measure of its satisfying *status vectors*
(``[[phi]]``); under the SUPPORT minimality scope the don't-care variables
contribute their full mass, which is the measure-theoretically consistent
reading.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..checker.translate import FormulaTranslator
from ..errors import BFLSyntaxError
from ..ft.tree import FaultTree
from ..logic.ast_nodes import Formula, ProbabilityQuery
from ..logic.parser import parse, parse_formula
from ..logic.scope import MinimalityScope
from .measure import (
    MissingProbabilityError,
    ZeroProbabilityEvidenceError,
    bdd_probability,
    bdd_probability_many,
    event_probabilities,
)

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": lambda a, b: abs(a - b) < 1e-12,
    ">=": operator.ge,
    ">": operator.gt,
}


@dataclass(frozen=True)
class ProbQuery:
    """``P(formula) |><| bound`` (the unconditional PFL fragment).

    Predates :class:`~repro.logic.ast_nodes.ProbabilityQuery` (which adds
    conditioning and probability settings) and is kept as the stable
    plain-data form for callers that build queries programmatically.
    """

    formula: Formula
    comparator: str
    bound: float

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"comparator must be one of {sorted(_COMPARATORS)}, "
                f"got {self.comparator!r}"
            )
        if not 0.0 <= self.bound <= 1.0:
            raise ValueError(f"bound {self.bound} outside [0, 1]")


def parse_prob_query(text: str) -> ProbQuery:
    """Parse ``"P(<formula>) <cmp> <bound>"`` into a :class:`ProbQuery`.

    Parsed by the BFL DSL grammar (one grammar for the whole surface);
    conditional or setting-annotated queries do not fit ``ProbQuery`` —
    parse those with :func:`repro.logic.parser.parse` and hand the
    :class:`~repro.logic.ast_nodes.ProbabilityQuery` to
    :meth:`ProbabilityChecker.evaluate`.

    Example:
        >>> parse_prob_query("P(MoT & !H1) >= 0.25")
        ProbQuery(formula=..., comparator='>=', bound=0.25)
    """
    try:
        statement = parse(text)
    except BFLSyntaxError as error:
        # The historical contract: malformed text raises ValueError —
        # with the underlying diagnostic, which for shape-valid but
        # semantically invalid queries (e.g. a bound outside [0, 1]) is
        # the part that actually explains the rejection.
        raise ValueError(
            f"cannot parse probability query {text!r}; expected "
            f"'P(<formula>) <cmp> <bound>' ({error})"
        ) from error
    if not isinstance(statement, ProbabilityQuery):
        raise ValueError(
            f"cannot parse probability query {text!r}; expected "
            "'P(<formula>) <cmp> <bound>'"
        )
    if statement.comparator is None:
        raise ValueError(
            f"probability query {text!r} has no comparator/bound"
        )
    if statement.condition is not None or statement.settings:
        raise ValueError(
            "ProbQuery covers 'P(<formula>) <cmp> <bound>' only; use "
            "ProbabilityChecker.evaluate for conditional or "
            "setting-annotated queries"
        )
    return ProbQuery(
        formula=statement.formula,
        comparator=statement.comparator,
        bound=statement.bound,
    )


@dataclass(frozen=True)
class ProbabilityOutcome:
    """Everything :meth:`ProbabilityChecker.evaluate` learned.

    Attributes:
        value: ``P(phi)`` or ``P(phi | psi)``.
        holds: The verdict of ``value |><| bound`` (``None`` for a bare
            value query without comparator).
        condition_probability: ``P(psi)`` for conditional queries.
    """

    value: float
    holds: Optional[bool] = None
    condition_probability: Optional[float] = None


class ProbabilityChecker:
    """Quantitative companion to :class:`repro.checker.ModelChecker`.

    Args:
        tree: The fault tree (basic events need probabilities, or pass
            ``overrides``).  May be omitted when ``translator`` is given.
        overrides: Per-event probability overrides.
        scope: Minimality scope forwarded to the formula translator
            (ignored when ``translator`` is given).
        translator: Share an existing :class:`FormulaTranslator` — and
            thereby its BDD manager, Algorithm 1 cache and the kernel's
            probability cache — with a qualitative checker.  This is how
            the batch service serves mixed qualitative/probabilistic
            batteries from one manager.
    """

    def __init__(
        self,
        tree: Optional[FaultTree] = None,
        overrides: Optional[Mapping[str, float]] = None,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        translator: Optional[FormulaTranslator] = None,
    ) -> None:
        if translator is None:
            if tree is None:
                raise ValueError(
                    "ProbabilityChecker needs a tree or a translator"
                )
            translator = FormulaTranslator(tree, scope=scope)
        elif tree is None:
            tree = translator.tree
        elif tree is not translator.tree:
            raise ValueError(
                "tree and translator.tree disagree; pass one of the two"
            )
        self.tree = tree
        self.probabilities = event_probabilities(tree, overrides)
        self.translator = translator

    def _formula(self, formula) -> Formula:
        if isinstance(formula, str):
            return parse_formula(formula)
        return formula

    def probability(self, formula) -> float:
        """``P(formula)`` — the measure of ``[[formula]]``."""
        root = self.translator.bdd(self._formula(formula))
        return bdd_probability(self.translator.manager, root, self.probabilities)

    def conditional(self, formula, given) -> float:
        """``P(formula | given)``.

        Raises:
            ZeroProbabilityEvidenceError: If ``P(given) = 0``.
        """
        return self.evaluate(
            ProbabilityQuery(
                formula=self._formula(formula),
                condition=self._formula(given),
            )
        ).value

    def evaluate(
        self, query: Union[str, ProbabilityQuery, Formula]
    ) -> ProbabilityOutcome:
        """Answer a full PFL query (value, conditional, settings, bound).

        Accepts DSL text (``"P(MoT | H1) >= 0.3"``), a parsed
        :class:`~repro.logic.ast_nodes.ProbabilityQuery`, or a bare
        layer-1 formula (meaning ``P(formula)``).
        """
        if isinstance(query, str):
            statement = parse(query)
        else:
            statement = query
        if isinstance(statement, Formula):
            statement = ProbabilityQuery(formula=statement)
        if not isinstance(statement, ProbabilityQuery):
            raise ValueError(
                f"expected a probabilistic query, got {statement!r}"
            )
        probabilities = self.probabilities
        if statement.settings:
            probabilities = dict(probabilities)
            for name, value in statement.settings:
                if name not in self.tree.basic_events:
                    raise MissingProbabilityError(
                        f"probability setting for unknown basic event "
                        f"{name!r}"
                    )
                probabilities[name] = float(value)
        manager = self.translator.manager
        f = self.translator.bdd(statement.formula)
        condition_probability: Optional[float] = None
        if statement.condition is None:
            value = bdd_probability(manager, f, probabilities)
        else:
            g = self.translator.bdd(statement.condition)
            condition_probability = bdd_probability(manager, g, probabilities)
            if condition_probability == 0.0:
                raise ZeroProbabilityEvidenceError(
                    "conditioning on a zero-probability event"
                )
            joint = bdd_probability(
                manager, manager.and_(f, g), probabilities
            )
            value = joint / condition_probability
        holds: Optional[bool] = None
        if statement.comparator is not None:
            holds = _COMPARATORS[statement.comparator](
                value, statement.bound
            )
        return ProbabilityOutcome(
            value=value,
            holds=holds,
            condition_probability=condition_probability,
        )

    def sweep(
        self,
        formula,
        profiles: Sequence[Mapping[str, float]],
    ) -> List[float]:
        """``P(formula)`` under many probability profiles at once.

        Each profile is a per-event override mapping applied on top of
        the tree's base probabilities (exactly like a query's
        ``[e := p]`` settings); the result is one probability per
        profile, in order.  The formula's BDD is built once and handed
        to the kernel's vectorised multi-profile sweep
        (:meth:`BDDManager.probability_many
        <repro.bdd.manager.BDDManager.probability_many>`), so a variant
        battery or a sensitivity grid pays one traversal instead of one
        :meth:`probability` call per profile.

        Raises:
            MissingProbabilityError: On overrides for unknown basic
                events.
        """
        base = self.probabilities
        known = self.tree.basic_events
        merged: List[Mapping[str, float]] = []
        for overrides in profiles:
            unknown = set(overrides) - set(known)
            if unknown:
                raise MissingProbabilityError(
                    "overrides for unknown basic events: "
                    + ", ".join(sorted(unknown))
                )
            if overrides:
                weights = dict(base)
                for name, value in overrides.items():
                    weights[name] = float(value)
                merged.append(weights)
            else:
                merged.append(base)
        root = self.translator.bdd(self._formula(formula))
        return bdd_probability_many(self.translator.manager, root, merged)

    def check(self, query: Union[ProbQuery, ProbabilityQuery, str]) -> bool:
        """Evaluate ``P(formula) |><| bound`` to its verdict."""
        if isinstance(query, ProbQuery):
            value = self.probability(query.formula)
            return _COMPARATORS[query.comparator](value, query.bound)
        outcome = self.evaluate(query)
        if outcome.holds is None:
            raise ValueError(
                "query has no comparator/bound; use evaluate() for the "
                "probability value"
            )
        return outcome.holds

    def unreliability(self) -> float:
        """``P(e_top)`` — the classical top-event unreliability."""
        return self.probability(self.tree.top)
