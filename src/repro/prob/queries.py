"""PBFL-lite: probabilistic queries over BFL formulae.

The paper's future work asks for "a probabilistic fault tree logic".  This
module provides the natural first step: a layer-2 query

    P(phi) |><| c          e.g.  P(MoT | MCS-free evidence ...) >= 0.3

where ``phi`` is any layer-1 BFL formula, evaluated against independent
basic-event failure probabilities.  Probabilities are computed on exactly
the BDD that Algorithm 1 builds for ``phi``, so every BFL construct —
evidence, MCS/MPS, VOT — participates for free.

Note the design decision documented here: for ``P(phi)`` the probability
mass of a formula is the measure of its satisfying *status vectors*
(``[[phi]]``); under the SUPPORT minimality scope the don't-care variables
contribute their full mass, which is the measure-theoretically consistent
reading.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..checker.translate import FormulaTranslator
from ..ft.tree import FaultTree
from ..logic.ast_nodes import Formula
from ..logic.parser import parse_formula
from ..logic.scope import MinimalityScope
from .measure import bdd_probability, event_probabilities

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": lambda a, b: abs(a - b) < 1e-12,
    ">=": operator.ge,
    ">": operator.gt,
}


@dataclass(frozen=True)
class ProbQuery:
    """``P(formula) |><| bound``."""

    formula: Formula
    comparator: str
    bound: float

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"comparator must be one of {sorted(_COMPARATORS)}, "
                f"got {self.comparator!r}"
            )
        if not 0.0 <= self.bound <= 1.0:
            raise ValueError(f"bound {self.bound} outside [0, 1]")


_QUERY_RE = None  # compiled lazily below


def parse_prob_query(text: str) -> ProbQuery:
    """Parse ``"P(<formula>) <cmp> <bound>"`` into a :class:`ProbQuery`.

    Example:
        >>> parse_prob_query("P(MoT & !H1) >= 0.25")
        ProbQuery(formula=..., comparator='>=', bound=0.25)
    """
    import re

    global _QUERY_RE
    if _QUERY_RE is None:
        _QUERY_RE = re.compile(
            r"^\s*P\s*\((?P<formula>.*)\)\s*"
            r"(?P<cmp><=|>=|<|>|=)\s*(?P<bound>[0-9.eE+\-]+)\s*$",
            re.DOTALL,
        )
    match = _QUERY_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse probability query {text!r}; expected "
            "'P(<formula>) <cmp> <bound>'"
        )
    return ProbQuery(
        formula=parse_formula(match.group("formula")),
        comparator=match.group("cmp"),
        bound=float(match.group("bound")),
    )


class ProbabilityChecker:
    """Quantitative companion to :class:`repro.checker.ModelChecker`.

    Args:
        tree: The fault tree (basic events need probabilities, or pass
            ``overrides``).
        overrides: Per-event probability overrides.
        scope: Minimality scope forwarded to the formula translator.
    """

    def __init__(
        self,
        tree: FaultTree,
        overrides: Optional[Mapping[str, float]] = None,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
    ) -> None:
        self.tree = tree
        self.probabilities = event_probabilities(tree, overrides)
        self.translator = FormulaTranslator(tree, scope=scope)

    def _formula(self, formula) -> Formula:
        if isinstance(formula, str):
            return parse_formula(formula)
        return formula

    def probability(self, formula) -> float:
        """``P(formula)`` — the measure of ``[[formula]]``."""
        root = self.translator.bdd(self._formula(formula))
        return bdd_probability(self.translator.manager, root, self.probabilities)

    def conditional(self, formula, given) -> float:
        """``P(formula | given)``."""
        manager = self.translator.manager
        f = self.translator.bdd(self._formula(formula))
        g = self.translator.bdd(self._formula(given))
        denominator = bdd_probability(manager, g, self.probabilities)
        if denominator == 0.0:
            raise ZeroDivisionError("conditioning on a zero-probability event")
        joint = bdd_probability(manager, manager.and_(f, g), self.probabilities)
        return joint / denominator

    def check(self, query: ProbQuery) -> bool:
        """Evaluate ``P(formula) |><| bound``."""
        value = self.probability(query.formula)
        return _COMPARATORS[query.comparator](value, query.bound)

    def unreliability(self) -> float:
        """``P(e_top)`` — the classical top-event unreliability."""
        return self.probability(self.tree.top)
