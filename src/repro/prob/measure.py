"""Quantitative fault-tree analysis: failure probabilities over BDDs.

The paper's first item of future work is "to extend BFL to model
probabilities ... system reliability, availability and mean time to
failure".  This module provides the standard machinery:

* :func:`bdd_probability` — exact top-event probability by Shannon
  expansion over the BDD (Rauzy's classical algorithm; linear in the
  BDD).  Since the PFL engine landed this delegates to the kernel's
  iterative weighted-evaluation pass and its manager-level cache; the
  historical per-call recursion survives as
  :func:`recursive_probability` (benchmark baseline / oracle only);
* :func:`enumeration_probability` — the 2^n reference baseline;
* :func:`conditional_probability` — P(phi | evidence), which is how BFL's
  evidence operator lifts to the quantitative world;
* bounds: the min-cut upper bound and rare-event approximation.

Basic events carry independent failure probabilities (the
``BasicEvent.probability`` attribute; events with no probability are
rejected explicitly rather than silently defaulted).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from ..bdd.manager import BDDManager
from ..bdd.ref import Ref
from ..errors import FaultTreeError, MissingWeightError
from ..ft.analysis import minimal_cut_sets
from ..ft.structure import structure_function
from ..ft.tree import FaultTree


class MissingProbabilityError(FaultTreeError):
    """A basic event has no failure probability attached."""


class ZeroProbabilityEvidenceError(FaultTreeError, ZeroDivisionError):
    """Conditioning on evidence whose probability is zero.

    Subclasses :class:`FaultTreeError` so the batch service can report it
    per-query (every library error derives from ``ReproError``), and
    ``ZeroDivisionError`` for callers of the historical
    :func:`conditional_probability` contract.
    """


def event_probabilities(
    tree: FaultTree, overrides: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """Collect per-event failure probabilities, applying ``overrides``.

    Raises:
        MissingProbabilityError: If any basic event ends up without one.
    """
    overrides = dict(overrides or {})
    unknown = set(overrides) - set(tree.basic_events)
    if unknown:
        raise MissingProbabilityError(
            "overrides for unknown basic events: " + ", ".join(sorted(unknown))
        )
    result: Dict[str, float] = {}
    missing = []
    for name in tree.basic_events:
        if name in overrides:
            value = overrides[name]
        else:
            value = tree.basic_event(name).probability
        if value is None:
            missing.append(name)
            continue
        if not 0.0 <= value <= 1.0:
            raise MissingProbabilityError(
                f"probability of {name!r} outside [0, 1]: {value}"
            )
        result[name] = float(value)
    if missing:
        raise MissingProbabilityError(
            "no failure probability for: " + ", ".join(missing)
        )
    return result


def bdd_probability(
    manager: BDDManager, node: Ref, probabilities: Mapping[str, float]
) -> float:
    """P(f = 1) for independent variables, by Shannon expansion.

    Delegates to the kernel's iterative weighted-evaluation pass
    (:meth:`BDDManager.probability <repro.bdd.manager.BDDManager.probability>`):
    explicit-stack traversal (deep chain BDDs no longer overflow the
    Python recursion limit), memoisation in the manager-level probability
    cache keyed on *regular* node indices (``f`` and ``~f`` share every
    entry, since ``P(~f) = 1 - P(f)`` on complement edges), and cache
    reuse across calls with the same probability profile.
    """
    try:
        return manager.probability(node, probabilities)
    except MissingWeightError as error:
        raise MissingProbabilityError(str(error)) from None


def bdd_probability_many(
    manager: BDDManager,
    node: Ref,
    profiles: "Sequence[Mapping[str, float]]",
) -> "List[float]":
    """P(f = 1) under many weight profiles, in one traversal.

    Delegates to the kernel's vectorised multi-profile sweep
    (:meth:`BDDManager.probability_many
    <repro.bdd.manager.BDDManager.probability_many>`): the reachable DAG
    is collected once and all profiles are evaluated simultaneously
    (one numpy pass of shape ``(nodes, profiles)`` when numpy is
    available), so a battery of per-scenario settings or a variant
    weight sweep pays one traversal instead of one per profile.
    """
    try:
        return manager.probability_many(node, profiles)
    except MissingWeightError as error:
        raise MissingProbabilityError(str(error)) from None


def recursive_probability(
    manager: BDDManager, node: Ref, probabilities: Mapping[str, float]
) -> float:
    """The pre-kernel recursive baseline (per-call cache, ``f``/``~f``
    cached as distinct ``uid`` entries).

    Kept as the comparison arm for ``benchmarks/bench_prob.py`` and as an
    independent oracle in the cross-validation tests.  Do not use on deep
    BDDs: the recursion tracks BDD depth and raises ``RecursionError``
    near the interpreter limit — the bug that motivated the kernel pass.
    """
    cache: Dict[int, float] = {}

    def walk(current: Ref) -> float:
        if current.is_terminal:
            return 1.0 if current.value else 0.0
        cached = cache.get(current.uid)
        if cached is not None:
            return cached
        name = manager.name_of(current.level)
        try:
            p = probabilities[name]
        except KeyError:
            raise MissingProbabilityError(
                f"no probability for BDD variable {name!r}"
            ) from None
        value = p * walk(current.high) + (1.0 - p) * walk(current.low)
        cache[current.uid] = value
        return value

    return walk(node)


def enumeration_probability(
    tree: FaultTree,
    element: Optional[str] = None,
    overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """Reference: sum vector probabilities over all 2^n status vectors."""
    probabilities = event_probabilities(tree, overrides)
    names = tree.basic_events
    total = 0.0
    for bits in itertools.product((False, True), repeat=len(names)):
        vector = dict(zip(names, bits))
        if not structure_function(tree, vector, element):
            continue
        weight = 1.0
        for name, bit in vector.items():
            weight *= probabilities[name] if bit else 1.0 - probabilities[name]
        total += weight
    return total


def conditional_probability(
    manager: BDDManager,
    node: Ref,
    evidence: Ref,
    probabilities: Mapping[str, float],
) -> float:
    """P(node | evidence) = P(node and evidence) / P(evidence).

    Raises:
        ZeroProbabilityEvidenceError: If ``P(evidence) = 0`` (the
            conditional is undefined; as a ``FaultTreeError`` subclass
            the batch service reports it per-query instead of aborting).
    """
    denominator = bdd_probability(manager, evidence, probabilities)
    if denominator == 0.0:
        raise ZeroProbabilityEvidenceError(
            "conditioning on a zero-probability event"
        )
    joint = bdd_probability(
        manager, manager.and_(node, evidence), probabilities
    )
    return joint / denominator


def rare_event_approximation(
    tree: FaultTree,
    element: Optional[str] = None,
    overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """Sum of MCS probabilities — the classical upper-ish estimate used
    when probabilities are small."""
    probabilities = event_probabilities(tree, overrides)
    total = 0.0
    for cut in minimal_cut_sets(tree, element):
        product = 1.0
        for name in cut:
            product *= probabilities[name]
        total += product
    return total


def min_cut_upper_bound(
    tree: FaultTree,
    element: Optional[str] = None,
    overrides: Optional[Mapping[str, float]] = None,
) -> float:
    """The min-cut upper bound: ``1 - prod_cuts (1 - P(cut))``.

    Exact for disjoint cut sets; an upper bound in general (for coherent
    trees).
    """
    probabilities = event_probabilities(tree, overrides)
    survival = 1.0
    for cut in minimal_cut_sets(tree, element):
        product = 1.0
        for name in cut:
            product *= probabilities[name]
        survival *= 1.0 - product
    return 1.0 - survival
