"""Probabilistic importance measures (classical quantitative FTA).

These complement BFL's qualitative ``SUP`` operator with the standard
quantitative rankings (Birnbaum, improvement potential, Fussell-Vesely,
criticality), all computed from the same BDD used by the model checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..bdd.manager import BDDManager
from ..ft.analysis import minimal_cut_sets
from ..ft.to_bdd import tree_to_bdd
from ..ft.tree import FaultTree
from .measure import bdd_probability, event_probabilities


@dataclass(frozen=True)
class ImportanceRow:
    """All measures for one basic event."""

    name: str
    probability: float
    birnbaum: float
    improvement_potential: float
    criticality: float
    fussell_vesely: float


def importance_table(
    tree: FaultTree,
    element: Optional[str] = None,
    overrides: Optional[Mapping[str, float]] = None,
) -> List[ImportanceRow]:
    """Compute every importance measure for every basic event.

    * Birnbaum: ``P(top | e failed) - P(top | e operational)`` — how much
      the event's state moves the top probability;
    * improvement potential: ``P(top) - P(top | e operational)``;
    * criticality: Birnbaum scaled by ``p(e) / P(top)`` — the probability
      the event is *the* critical one given system failure;
    * Fussell-Vesely: probability-weighted share of the MCSs containing
      the event (rare-event form).

    Rows are sorted by descending Birnbaum importance.

    All ``2n + 1`` probability queries (top plus two restrictions per
    event) run against one manager, so the kernel's weighted-evaluation
    cache shares every subgraph value between them — the restricted BDDs
    differ near the root but agree below, and only the new nodes are
    ever valued.
    """
    probabilities = event_probabilities(tree, overrides)
    manager = BDDManager(tree.basic_events)
    root = tree_to_bdd(tree, manager, element)
    top_probability = bdd_probability(manager, root, probabilities)
    cuts = minimal_cut_sets(tree, element, manager=BDDManager(tree.basic_events))

    rows: List[ImportanceRow] = []
    for name in tree.basic_events:
        p = probabilities[name]
        failed = bdd_probability(
            manager, manager.restrict(root, name, True), probabilities
        )
        operational = bdd_probability(
            manager, manager.restrict(root, name, False), probabilities
        )
        birnbaum = failed - operational
        improvement = top_probability - operational
        criticality = (
            birnbaum * p / top_probability if top_probability > 0 else 0.0
        )
        fv_numerator = 0.0
        for cut in cuts:
            if name not in cut:
                continue
            product = 1.0
            for member in cut:
                product *= probabilities[member]
            fv_numerator += product
        fussell_vesely = (
            fv_numerator / top_probability if top_probability > 0 else 0.0
        )
        rows.append(
            ImportanceRow(
                name=name,
                probability=p,
                birnbaum=birnbaum,
                improvement_potential=improvement,
                criticality=criticality,
                fussell_vesely=fussell_vesely,
            )
        )
    rows.sort(key=lambda row: (-row.birnbaum, row.name))
    return rows


def render_importance_table(rows: List[ImportanceRow]) -> str:
    """Fixed-width text table for reports and the CLI."""
    header = (
        f"{'event':12} {'p':>8} {'Birnbaum':>10} {'ImprPot':>10} "
        f"{'Crit':>8} {'F-V':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.name:12} {row.probability:>8.4f} {row.birnbaum:>10.5f} "
            f"{row.improvement_potential:>10.5f} {row.criticality:>8.4f} "
            f"{row.fussell_vesely:>8.4f}"
        )
    return "\n".join(lines)
