"""The nine properties of the COVID-19 case study (paper Secs. IV and VII).

Each :class:`PropertySpec` carries the natural-language question, the BFL
text (in our DSL), and the result the paper reports.  Evaluating a spec
returns a :class:`PropertyOutcome` with one record per claim, so the report
generator and the golden tests share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..checker.engine import ModelChecker
from .covid import HUMAN_ERRORS


@dataclass(frozen=True)
class ClaimRecord:
    """One verified claim: what was computed, what the paper says."""

    description: str
    expected: object
    actual: object

    @property
    def matches(self) -> bool:
        return self.expected == self.actual


@dataclass(frozen=True)
class PropertyOutcome:
    """All claim records for one property."""

    pid: str
    question: str
    formula_text: str
    records: Tuple[ClaimRecord, ...]

    @property
    def all_match(self) -> bool:
        return all(record.matches for record in self.records)


@dataclass(frozen=True)
class PropertySpec:
    """A case-study property with its evaluator."""

    pid: str
    question: str
    formula_text: str
    evaluate: Callable[[ModelChecker], Tuple[ClaimRecord, ...]]

    def run(self, checker: ModelChecker) -> PropertyOutcome:
        return PropertyOutcome(
            pid=self.pid,
            question=self.question,
            formula_text=self.formula_text,
            records=self.evaluate(checker),
        )


def _sets(items: Sequence[Sequence[str]]) -> List[FrozenSet[str]]:
    return sorted(
        (frozenset(item) for item in items), key=lambda s: (len(s), sorted(s))
    )


# ----------------------------------------------------------------------
# Expected results, straight from the paper's Sec. VII
# ----------------------------------------------------------------------

#: Property 1 follow-up: the single MCS of MoT containing IS.
P1_MCS = _sets([("IS", "H1", "H5")])

#: Property 5: all MCSs of the TLE that include H4.
P5_MCS = _sets(
    [
        ("IW", "H3", "IT", "H1", "H4", "VW"),
        ("IT", "H2", "H1", "H4", "VW"),
    ]
)

#: Property 6: the two counterexample MPSs the paper constructs.
P6_MPS = _sets([("H1",), ("H2", "H3")])

#: Property 7: all twelve minimal path sets of the TLE.
P7_MPS = _sets(
    [
        ("IW", "IT"),
        ("IW", "H2"),
        ("IW", "H4", "IS", "UT"),
        ("IW", "H4", "H5", "UT"),
        ("H3", "IT"),
        ("H3", "H2"),
        ("IT", "PP", "IS", "AB", "MV", "UT"),
        ("IT", "PP", "H5", "AB", "MV", "UT"),
        ("PP", "H4", "IS", "AB", "MV", "UT"),
        ("PP", "H4", "H5", "AB", "MV", "UT"),
        ("H1",),
        ("VW",),
    ]
)

_HUMAN_ERROR_DISJUNCTION = " | ".join(HUMAN_ERRORS)
_P4_MCS_QUERY = " | ".join(f"(MCS(IWoS) & {h})" for h in HUMAN_ERRORS)


def _p6_formula(checker: ModelChecker) -> str:
    """``MPS(IWoS)[H1..H5 -> 0, every other BE -> 1]`` wrapped in exists."""
    tree = checker.tree
    zeroed = ", ".join(f"{h} := 0" for h in HUMAN_ERRORS)
    oned = ", ".join(
        f"{name} := 1"
        for name in tree.basic_events
        if name not in HUMAN_ERRORS
    )
    return f"exists (MPS(IWoS)[{zeroed}, {oned}])"


# ----------------------------------------------------------------------
# Evaluators
# ----------------------------------------------------------------------


def _p1(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    verdict = checker.check("forall (IS => MoT)")
    mcs = checker.satisfaction_set("MCS(MoT) & IS").failed_sets()
    return (
        ClaimRecord("forall (IS => MoT) holds", False, verdict),
        ClaimRecord("[[MCS(MoT) & IS]] cut sets", P1_MCS, mcs),
    )


def _p2(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    verdict = checker.check(f"forall (MoT => ({_HUMAN_ERROR_DISJUNCTION}))")
    # The paper's explanation: droplet/airborne transmission can occur
    # without human error.
    dt_witness = checker.check(
        f"exists (DT & !({_HUMAN_ERROR_DISJUNCTION}) & MoT)"
    )
    return (
        ClaimRecord("forall (MoT => H1|..|H5) holds", False, verdict),
        ClaimRecord("MoT can occur without human error (e.g. DT)", True, dt_witness),
    )


def _p3(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    return (
        ClaimRecord(
            "forall (H4 => IWoS) holds",
            False,
            checker.check("forall (H4 => IWoS)"),
        ),
    )


def _p4(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    verdict = checker.check(
        f"forall (VOT(>= 2; {', '.join(HUMAN_ERRORS)}) => IWoS)"
    )
    n_mcs = len(checker.satisfaction_set(_P4_MCS_QUERY).failed_sets())
    return (
        ClaimRecord("forall (Vot>=2(H1..H5) => IWoS) holds", False, verdict),
        ClaimRecord("number of MCSs involving a human error", 12, n_mcs),
    )


def _p5(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    mcs = checker.satisfaction_set("MCS(IWoS) & H4").failed_sets()
    return (ClaimRecord("[[MCS(IWoS) & H4]] cut sets", P5_MCS, mcs),)


def _p6(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    verdict = checker.check(_p6_formula(checker))
    # Pattern-2 counterexamples: MPS vectors whose operational set only
    # involves human errors (the repair must stay within H1..H5).
    human = set(HUMAN_ERRORS)
    witnesses = [
        ops
        for ops in checker.satisfaction_set("MPS(IWoS)").operational_sets()
        if ops <= human
    ]
    return (
        ClaimRecord("the all-human-errors path set is minimal", False, verdict),
        ClaimRecord(
            "pattern-2 counterexample MPSs", P6_MPS, _sets(witnesses)
        ),
    )


def _p7(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    mps = checker.minimal_path_sets()
    return (ClaimRecord("[[MPS(IWoS)]] path sets", P7_MPS, mps),)


def _p8(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    result = checker.independence("CIO", "CIS")
    return (
        ClaimRecord("IDP(CIO, CIS) holds", False, result.independent),
        ClaimRecord(
            "shared influencing basic events", frozenset({"H1"}), result.shared
        ),
    )


def _p9(checker: ModelChecker) -> Tuple[ClaimRecord, ...]:
    return (
        ClaimRecord("SUP(PP) holds", False, checker.check("SUP(PP)")),
    )


#: The nine properties in paper order.
PROPERTIES: Tuple[PropertySpec, ...] = (
    PropertySpec(
        "P1",
        "Is an infected surface sufficient for the transmission of COVID?",
        "forall (IS => MoT)",
        _p1,
    ),
    PropertySpec(
        "P2",
        "Does the occurrence of Mode of Transmission require human errors?",
        f"forall (MoT => ({_HUMAN_ERROR_DISJUNCTION}))",
        _p2,
    ),
    PropertySpec(
        "P3",
        "Is an object disinfection error sufficient for the occurrence of the TLE?",
        "forall (H4 => IWoS)",
        _p3,
    ),
    PropertySpec(
        "P4",
        "Are at least 2 human errors sufficient for the occurrence of the TLE?",
        f"forall (VOT(>= 2; {', '.join(HUMAN_ERRORS)}) => IWoS)",
        _p4,
    ),
    PropertySpec(
        "P5",
        "What are all the MCSs for the TLE that include errors in disinfecting objects?",
        "[[ MCS(IWoS) & H4 ]]",
        _p5,
    ),
    PropertySpec(
        "P6",
        "Is not committing any human error sufficient to prevent the TLE?",
        "exists (MPS(IWoS)[H1 := 0, H2 := 0, H3 := 0, H4 := 0, H5 := 0, rest := 1])",
        _p6,
    ),
    PropertySpec(
        "P7",
        "What are the minimal ways to prevent the TLE?",
        "[[ MPS(IWoS) ]]",
        _p7,
    ),
    PropertySpec(
        "P8",
        "Are contact with an infected object and contact with an infected surface independent?",
        "IDP(CIO, CIS)",
        _p8,
    ),
    PropertySpec(
        "P9",
        "Is physical proximity superfluous for the occurrence of the TLE?",
        "SUP(PP)",
        _p9,
    ),
)


def run_all(checker: Optional[ModelChecker] = None) -> List[PropertyOutcome]:
    """Evaluate all nine properties (building the COVID checker if needed)."""
    if checker is None:
        from .covid import build_covid_tree

        checker = ModelChecker(build_covid_tree())
    return [spec.run(checker) for spec in PROPERTIES]
