"""Sec. VII end-to-end analysis report for the COVID-19 case study.

``python -m repro.cli covid-report`` (or :func:`render_report`) regenerates
the complete analysis of the paper's evaluation section: every property's
verdict, the MCS/MPS lists, the independence explanations, and a
paper-vs-computed scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..checker.engine import ModelChecker
from .covid import build_covid_tree
from .properties import PROPERTIES, PropertyOutcome


@dataclass(frozen=True)
class CaseStudyReport:
    """Evaluated case study: outcomes plus tree statistics."""

    outcomes: Tuple[PropertyOutcome, ...]
    tree_stats: Tuple[Tuple[str, int], ...]
    mcs_count: int
    mps_count: int

    @property
    def all_match(self) -> bool:
        return all(outcome.all_match for outcome in self.outcomes)


def build_report(checker: ModelChecker = None) -> CaseStudyReport:
    """Run the full Sec. VII analysis."""
    if checker is None:
        checker = ModelChecker(build_covid_tree())
    outcomes = tuple(spec.run(checker) for spec in PROPERTIES)
    return CaseStudyReport(
        outcomes=outcomes,
        tree_stats=tuple(sorted(checker.tree.stats().items())),
        mcs_count=len(checker.minimal_cut_sets()),
        mps_count=len(checker.minimal_path_sets()),
    )


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "holds" if value else "does NOT hold"
    if isinstance(value, (list, tuple)) and value and isinstance(
        next(iter(value)), frozenset
    ):
        return "; ".join("{" + ", ".join(sorted(s)) + "}" for s in value)
    if isinstance(value, frozenset):
        return "{" + ", ".join(sorted(value)) + "}"
    return str(value)


def render_report(report: CaseStudyReport = None) -> str:
    """Human-readable text report (used by the CLI and the benchmarks)."""
    if report is None:
        report = build_report()
    lines: List[str] = []
    lines.append("COVID-19 case study (paper Fig. 2, Sec. VII)")
    lines.append("=" * 60)
    stats = ", ".join(f"{key}={value}" for key, value in report.tree_stats)
    lines.append(f"tree: {stats}")
    lines.append(
        f"TLE minimal cut sets: {report.mcs_count}; "
        f"minimal path sets: {report.mps_count}"
    )
    lines.append("")
    for outcome in report.outcomes:
        lines.append(f"{outcome.pid}: {outcome.question}")
        lines.append(f"    BFL: {outcome.formula_text}")
        for record in outcome.records:
            status = "OK " if record.matches else "MISMATCH"
            lines.append(f"    [{status}] {record.description}")
            lines.append(f"          computed: {_format_value(record.actual)}")
            if not record.matches:
                lines.append(
                    f"          paper:    {_format_value(record.expected)}"
                )
        lines.append("")
    verdict = "ALL MATCH" if report.all_match else "MISMATCHES PRESENT"
    lines.append(f"paper-vs-computed: {verdict}")
    return "\n".join(lines)
