"""The COVID-19 fault tree of the paper's Fig. 2.

The tree models COVID-19 infection risk on construction sites (after
Bakeli & Hafidi 2020, modified by the paper).  The paper prints Fig. 2
only graphically; the structure below was reverse-engineered from *all*
quantitative results of Secs. IV and VII and reproduces every one of them
verbatim — see DESIGN.md Sec. 2 for the derivation and
``tests/test_covid_properties.py`` for the golden checks.

Structure (13 basic events, 15 gates)::

    IWoS = AND(CP/R, MoT, SH)            COVID-19 infected worker on site
    CP/R = OR(CP, CR)                    pathogens / reservoir exist
      CP = AND(IW, H3)                   pathogens:  infected worker + detection error
      CR = AND(IT, H2)                   reservoir:  infected object + disinfection error
    MoT  = OR(CT, DT, AT, CVT)           mode of transmission
      CT  = OR(CIW, CIO, CIS)            contact transmission
        CIW = AND(IW, PP, H1)            contact with infected worker
        CIO = AND(IT, MH1), MH1 = AND(H1, H4)   contact with infected object
        CIS = AND(IS, MH2), MH2 = AND(H1, H5)   contact with infected surface
      DT  = AND(IW, PP)                  droplet transmission
      AT  = AND(IW, AM),  AM = OR(AB, MV)  airborne transmission
      CVT = OR(UT)                       vehicle transmission
    SH   = AND(VW, H1)                   susceptible host
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ft.builder import FaultTreeBuilder
from ..ft.tree import FaultTree

#: Human-readable glossary for the basic events (paper Secs. I, IV, VII).
BASIC_EVENT_DESCRIPTIONS: Dict[str, str] = {
    "IW": "Infected worker joining the team",
    "IT": "Infected object used by the team",
    "IS": "Infected surface",
    "PP": "Physical proximity",
    "VW": "Vulnerable worker on site",
    "UT": "Use of common transport",
    "AB": "Air blowing between workers",
    "MV": "Mechanical ventilation",
    "H1": "Non-respect of outbreak procedures",
    "H2": "General disinfection error",
    "H3": "Detection error",
    "H4": "Object disinfection error",
    "H5": "Surface disinfection error",
}

#: Human-readable glossary for the gates.
GATE_DESCRIPTIONS: Dict[str, str] = {
    "IWoS": "COVID-19 infected worker on site (top level event)",
    "CP/R": "Existence of COVID-19 pathogens/reservoir",
    "CP": "Existence of COVID-19 pathogens",
    "CR": "Existence of COVID-19 reservoir",
    "MoT": "Mode of transmission",
    "CT": "Contact transmission",
    "CIW": "Contact with infected worker",
    "CIO": "Contact with infected object",
    "CIS": "Contact with infected surface",
    "MH1": "Object hygiene errors (procedures + object disinfection)",
    "MH2": "Surface hygiene errors (procedures + surface disinfection)",
    "DT": "Droplet transmission",
    "AT": "Airborne transmission",
    "AM": "Air movement between workers",
    "CVT": "Vehicle transmission",
    "SH": "Susceptible host",
}

#: The five human errors of the case study (used by Properties 2, 4, 6).
HUMAN_ERRORS: Tuple[str, ...] = ("H1", "H2", "H3", "H4", "H5")


def build_covid_tree() -> FaultTree:
    """Construct the COVID-19 fault tree of Fig. 2.

    Basic events are declared in a stable order (pathogen branch first,
    then transmission, then host) that doubles as the default BDD variable
    order.
    """
    builder = FaultTreeBuilder()
    for name in ("IW", "H3", "IT", "H2", "PP", "H1", "H4", "IS", "H5", "AB", "MV", "UT", "VW"):
        builder.basic_event(name, BASIC_EVENT_DESCRIPTIONS[name])
    return (
        builder
        # Pathogens / reservoir (Fig. 1 is this subtree).
        .and_gate("CP", "IW", "H3", description=GATE_DESCRIPTIONS["CP"])
        .and_gate("CR", "IT", "H2", description=GATE_DESCRIPTIONS["CR"])
        .or_gate("CP/R", "CP", "CR", description=GATE_DESCRIPTIONS["CP/R"])
        # Contact transmission.
        .and_gate("CIW", "IW", "PP", "H1", description=GATE_DESCRIPTIONS["CIW"])
        .and_gate("MH1", "H1", "H4", description=GATE_DESCRIPTIONS["MH1"])
        .and_gate("CIO", "IT", "MH1", description=GATE_DESCRIPTIONS["CIO"])
        .and_gate("MH2", "H1", "H5", description=GATE_DESCRIPTIONS["MH2"])
        .and_gate("CIS", "IS", "MH2", description=GATE_DESCRIPTIONS["CIS"])
        .or_gate("CT", "CIW", "CIO", "CIS", description=GATE_DESCRIPTIONS["CT"])
        # Droplet / airborne / vehicle transmission.
        .and_gate("DT", "IW", "PP", description=GATE_DESCRIPTIONS["DT"])
        .or_gate("AM", "AB", "MV", description=GATE_DESCRIPTIONS["AM"])
        .and_gate("AT", "IW", "AM", description=GATE_DESCRIPTIONS["AT"])
        .or_gate("CVT", "UT", description=GATE_DESCRIPTIONS["CVT"])
        .or_gate("MoT", "CT", "DT", "AT", "CVT", description=GATE_DESCRIPTIONS["MoT"])
        # Susceptible host and the top level event.
        .and_gate("SH", "VW", "H1", description=GATE_DESCRIPTIONS["SH"])
        .and_gate("IWoS", "CP/R", "MoT", "SH", description=GATE_DESCRIPTIONS["IWoS"])
        .build("IWoS")
    )
