"""COVID-19 case study (paper Secs. IV and VII)."""

from .covid import (
    BASIC_EVENT_DESCRIPTIONS,
    GATE_DESCRIPTIONS,
    HUMAN_ERRORS,
    build_covid_tree,
)
from .properties import (
    PROPERTIES,
    ClaimRecord,
    PropertyOutcome,
    PropertySpec,
    run_all,
)
from .report import CaseStudyReport, build_report, render_report

__all__ = [
    "BASIC_EVENT_DESCRIPTIONS",
    "CaseStudyReport",
    "ClaimRecord",
    "GATE_DESCRIPTIONS",
    "HUMAN_ERRORS",
    "PROPERTIES",
    "PropertyOutcome",
    "PropertySpec",
    "build_covid_tree",
    "build_report",
    "render_report",
    "run_all",
]
