"""Content-addressed on-disk snapshot store (the server's warm cache tier).

A :class:`SnapshotStore` is a directory of kernel snapshots keyed by the
PR-5 sha256 Galileo tree fingerprint
(:func:`repro.service.batch.tree_fingerprint`): one file per distinct
tree, named ``<fingerprint>.json``.  Content addressing makes the store
self-validating — an entry can only ever warm-start a scenario whose
tree hashes to the same fingerprint, so renamed scenarios, edited trees
and multi-tenant servers all share one cache directory safely.

Entries hold the *binary* (v2) kernel snapshot from
:meth:`~repro.bdd.manager.BDDManager.save_snapshot` — raw int64 column
bytes that load via buffer adoption instead of per-node decoding — with
the ``bytes`` payloads base64-wrapped so the file stays JSON.  The v2
sha256 content checksum is computed over the raw columns and survives
the wrapping, so on-disk bit rot is still caught at load time
(:class:`~repro.errors.SnapshotIntegrityError`) and the caller degrades
to a cold build.

The store is deliberately dumb: ``get``/``put``/``delete`` plus stats.
Which entries exist when, and what happens on corruption, is decided by
the session pool (:mod:`repro.service.pool`) and the batch analyzer's
existing degrade-to-cold machinery.
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import SnapshotError

__all__ = ["SnapshotStore", "STORE_FORMAT", "STORE_VERSION"]

#: ``format`` stamp of a store entry file.
STORE_FORMAT = "bfl-kernel-store"
#: Entry layout version (bump on incompatible changes).
STORE_VERSION = 1

#: Marker key for base64-wrapped ``bytes`` payloads inside an entry.
_B64_KEY = "__bytes_b64__"


def _encode(value: Any) -> Any:
    """JSON-safe copy of a snapshot payload (bytes -> base64 wrapper)."""
    if isinstance(value, (bytes, bytearray)):
        return {_B64_KEY: base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode` (base64 wrappers -> bytes)."""
    if isinstance(value, dict):
        if set(value) == {_B64_KEY}:
            return base64.b64decode(value[_B64_KEY])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def _is_fingerprint(text: str) -> bool:
    """True for a plausible sha256 hex digest (the only keys we accept —
    they double as file names, so anything else would be a path-traversal
    hazard)."""
    return (
        len(text) == 64
        and all(ch in "0123456789abcdef" for ch in text)
    )


class SnapshotStore:
    """Directory of kernel snapshots keyed by tree fingerprint.

    Args:
        path: Store directory (created on first use).

    Entries are written atomically (tmp file + ``os.replace``), so a
    crashed or drained server never leaves a truncated entry behind.
    A *malformed* entry file (bad JSON, wrong format stamp) is treated
    as a cache miss — :meth:`get` returns ``None`` and counts it under
    ``stats()["malformed"]`` — while an entry whose *payload* is corrupt
    (checksum mismatch) is surfaced later, by the kernel's own integrity
    check, when the caller tries to load it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._malformed = 0

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------

    def _entry_path(self, fingerprint: str) -> Path:
        if not _is_fingerprint(fingerprint):
            raise SnapshotError(
                f"not a tree fingerprint: {fingerprint!r} (expected a "
                "sha256 hex digest)"
            )
        return self.path / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``fingerprint``, in the exact shape
        :class:`~repro.service.batch.BatchAnalyzer` accepts as a
        ``snapshots=`` value (``{"tree": fingerprint, "kernel": ...}``),
        or ``None`` when absent or unreadable."""
        entry_path = self._entry_path(fingerprint)
        try:
            with open(entry_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, json.JSONDecodeError, ValueError):
            self._malformed += 1
            return None
        if (
            not isinstance(data, dict)
            or data.get("format") != STORE_FORMAT
            or data.get("version") != STORE_VERSION
            or data.get("tree") != fingerprint
            or "kernel" not in data
        ):
            self._malformed += 1
            return None
        self._hits += 1
        return {"tree": fingerprint, "kernel": _decode(data["kernel"])}

    def put(self, fingerprint: str, kernel: Dict[str, Any]) -> Path:
        """Persist a kernel snapshot under ``fingerprint`` (atomic)."""
        entry_path = self._entry_path(fingerprint)
        self.path.mkdir(parents=True, exist_ok=True)
        data = {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "tree": fingerprint,
            "kernel": _encode(kernel),
        }
        tmp_path = f"{entry_path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(data, handle)
                handle.write("\n")
            os.replace(tmp_path, entry_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._puts += 1
        return entry_path

    def delete(self, fingerprint: str) -> bool:
        """Drop the entry for ``fingerprint``; True when one existed."""
        try:
            os.unlink(self._entry_path(fingerprint))
            return True
        except FileNotFoundError:
            return False

    def __contains__(self, fingerprint: str) -> bool:
        try:
            return self._entry_path(fingerprint).is_file()
        except SnapshotError:
            return False

    def fingerprints(self) -> List[str]:
        """Fingerprints with an entry file, sorted."""
        if not self.path.is_dir():
            return []
        return sorted(
            entry.stem
            for entry in self.path.glob("*.json")
            if _is_fingerprint(entry.stem)
        )

    def stats(self) -> Dict[str, Any]:
        """Counters + current directory footprint."""
        entries = self.fingerprints()
        total_bytes = 0
        for fingerprint in entries:
            try:
                total_bytes += self._entry_path(fingerprint).stat().st_size
            except OSError:
                pass
        return {
            "path": str(self.path),
            "entries": len(entries),
            "bytes": total_bytes,
            "hits": self._hits,
            "misses": self._misses,
            "puts": self._puts,
            "malformed": self._malformed,
        }
