"""Batch analysis service layer.

The paper frames fault-tree reasoning as *many* questions against *one*
tree: stakeholders ask whole batteries of MCS/MPS/IDP/check queries
(Sec. VII runs nine properties over the COVID-19 tree).  The
:class:`BatchAnalyzer` serves such batteries efficiently by

* parsing every query up front (with a text-level parse cache);
* deduplicating shared (sub)formulas through the structural
  Algorithm 1 translation cache, so ``MCS(TLE) & H1`` and
  ``MCS(TLE) & H2`` build the expensive ``MCS(TLE)`` BDD once;
* evaluating every query of a scenario against one shared
  :class:`~repro.bdd.manager.BDDManager` session, whose ITE/apply memo
  tables persist across queries and across batches;
* returning structured per-query results plus cache and timing
  metadata, ready for JSON serialisation (the ``bfl batch`` command);
* optionally fanning a battery out over a multi-process worker pool
  (``BatchAnalyzer(workers=N)``) with deterministic shard planning and
  merging, warm-starting workers from portable kernel snapshots
  (:mod:`repro.service.parallel`, ``bfl batch --workers/--snapshot``).

Quickstart::

    from repro import build_covid_tree
    from repro.service import BatchAnalyzer

    analyzer = BatchAnalyzer(build_covid_tree())
    report = analyzer.run([
        "forall (IS => MoT)",
        "[[ MCS(MoT) & IS ]]",
        {"kind": "mcs"},
        {"kind": "check", "formula": "MCS(TLE)", "failed": ["H1", "VW"]},
    ])
    print(report.to_json(indent=2))
"""

from .batch import AnalysisSession, BatchAnalyzer, tree_fingerprint
from .parallel import (
    Shard,
    estimate_cost,
    plan_shards,
    read_snapshot_file,
    write_snapshot_file,
)
from .pool import SessionPool, build_session, resolve_overrides
from .queries import BatchReport, QueryResult, QuerySpec, specs_from_any
from .server import AnalysisServer, ServerConfig, TokenBucket
from .store import SnapshotStore

__all__ = [
    "AnalysisServer",
    "AnalysisSession",
    "BatchAnalyzer",
    "BatchReport",
    "QueryResult",
    "QuerySpec",
    "ServerConfig",
    "SessionPool",
    "Shard",
    "SnapshotStore",
    "TokenBucket",
    "build_session",
    "estimate_cost",
    "plan_shards",
    "read_snapshot_file",
    "resolve_overrides",
    "specs_from_any",
    "tree_fingerprint",
    "write_snapshot_file",
]
