"""`bfl serve`: the long-lived analysis daemon with a warm cache tier.

Every other entry point in this repo is a one-shot process that pays a
cold kernel build per invocation.  :class:`AnalysisServer` is the
session-holding front-end the BFL/PFL papers' interactive workflow
actually wants: fault trees are registered once at startup, live
:class:`~repro.service.batch.AnalysisSession`s are kept hot in an LRU
:class:`~repro.service.pool.SessionPool`, and evicted or cold scenarios
warm-start from a content-addressed
:class:`~repro.service.store.SnapshotStore` instead of re-running
Algorithm 1 — the three-tier lifecycle (live kernel / binary snapshot /
cold tree) that ``benchmarks/bench_server.py`` gates at >= 10x.

The HTTP surface is stdlib ``asyncio`` only (mirroring the kernel's
numpy soft-dependency stance: the container may not have FastAPI, and a
five-endpoint JSON API does not need it).  The JSON battery format is
exactly ``bfl batch``'s query-file format, and every battery is
evaluated by a real :class:`~repro.service.batch.BatchAnalyzer` that
*adopts* the pooled sessions — so server answers are identical to a
sequential batch run by construction, per-request ``deadline_ms`` /
``query_timeout_ms`` ride the PR-8 :class:`~repro.runtime.limits.Governor`
unchanged, and failures come back as the same structured
``error_kind`` rows.

Operational behaviour (full reference: ``docs/server.md`` and
``docs/operations.md``):

* **Admission** — at most ``max_concurrency`` batteries evaluate at
  once; up to ``queue_limit`` more may wait.  Beyond that requests are
  rejected ``503 server-busy`` instead of queueing unboundedly.
* **Rate limiting** — an optional token bucket (``rate_limit``
  requests/sec, ``rate_burst`` burst) rejects excess requests with
  ``429 rate-limited`` and a ``retry_after_ms`` hint.  ``/healthz`` is
  exempt so liveness probes keep working under load.
* **Serialisation** — batteries touching the same scenario are
  serialised on per-scenario locks (they share one session; BDD
  managers are not re-entrant), while batteries over disjoint scenarios
  evaluate concurrently in worker threads.
* **Drain** — SIGTERM/SIGINT stop the listener, let in-flight batteries
  finish, persist every pooled session into the snapshot store, then
  exit; the next process warm-starts everything.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..errors import (
    QuerySpecError,
    RateLimitError,
    ReproError,
    ServerBusyError,
    error_kind,
)
from ..ft.tree import FaultTree
from ..logic.scope import MinimalityScope
from .batch import AnalysisSession, BatchAnalyzer, tree_fingerprint
from .pool import SessionPool, overrides_digest, resolve_overrides
from .queries import DEFAULT_SCENARIO, BatchReport, specs_from_any
from .store import SnapshotStore

logger = logging.getLogger(__name__)

__all__ = [
    "AnalysisServer",
    "Route",
    "ROUTES",
    "ServerConfig",
    "TokenBucket",
]


@dataclass(frozen=True)
class Route:
    """One HTTP endpoint (the drift-gated public surface).

    ``docs/server.md`` keeps its endpoint table between
    ``<!-- endpoints:begin -->`` / ``<!-- endpoints:end -->`` markers in
    sync with this tuple; ``benchmarks/docs_gate.py`` enforces it the
    same way the DSL kind tables track the query-kind registry.
    """

    method: str
    path: str
    summary: str


#: The server's complete endpoint surface, in documentation order.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/healthz", "liveness/readiness probe (rate-limit exempt)"),
    Route("GET", "/scenarios", "registered scenarios with fingerprints and cache-tier state"),
    Route("GET", "/stats", "server, session-pool and snapshot-store counters"),
    Route("POST", "/query", "answer one query (single spec, optionally wrapped with options)"),
    Route("POST", "/battery", "answer a battery (the bfl batch query-file format over HTTP)"),
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request-body keys a battery may carry beyond the query list.  The
#: rest of the ``bfl batch`` file surface (trees, variants, workers,
#: snapshots) is *server* state, fixed at startup — a request trying to
#: smuggle it in gets a 400 instead of silently diverging.
_BATTERY_OPTION_KEYS = frozenset(
    {"probabilities", "uniform", "deadline_ms", "query_timeout_ms"}
)


class TokenBucket:
    """Classic token-bucket limiter (``rate`` tokens/sec, ``burst`` cap).

    ``clock`` is injectable for deterministic tests.  Thread-safe,
    although the server only consults it from the event loop.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> Tuple[bool, float]:
        """``(admitted, retry_after_ms)`` — the hint is the time until
        the bucket refills a whole token."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            return False, (1.0 - self._tokens) / self.rate * 1000.0


@dataclass
class ServerConfig:
    """Knobs for :class:`AnalysisServer` (CLI flags map 1:1 onto these).

    Attributes:
        host: Bind address.
        port: Bind port (``0`` = ephemeral; read the bound port from
            ``server.port`` after ``start()``).
        pool_size: Live-session LRU capacity (hot tier).
        store_path: Snapshot-store directory (warm tier).  ``None``
            disables persistence: evicted sessions are simply dropped
            and cold starts rebuild from the tree.
        max_concurrency: Batteries evaluating at once (worker threads).
        queue_limit: Batteries allowed to *wait* for a worker slot
            before new requests are rejected ``503 server-busy``.
        rate_limit: Token-bucket refill rate in requests/sec
            (``None`` disables rate limiting).
        rate_burst: Token-bucket capacity (defaults to
            ``max(1, rate_limit)`` when left ``None``).
        deadline_ms: Default whole-battery deadline applied to requests
            that do not carry their own (``None`` = unbounded).
        query_timeout_ms: Default per-query budget, same override rule.
        scope / monotone_fast_path / auto_gc / auto_reorder /
        gc_trigger / reorder_trigger: Per-session kernel knobs, exactly
            :class:`~repro.service.batch.BatchAnalyzer`'s.  ``auto_gc``
            defaults *on* here — a daemon's sessions live long enough to
            accumulate dead intermediate BDDs worth reclaiming.
        probabilities / uniform: Server-default PFL weights; a request
            carrying its own ``probabilities``/``uniform`` replaces
            them for that request (and gets its own pooled sessions —
            PFL answers depend on the weights).
        max_body_bytes: Request-body cap (``413`` beyond it).
    """

    host: str = "127.0.0.1"
    port: int = 8346
    pool_size: int = 8
    store_path: Optional[str] = None
    max_concurrency: int = 4
    queue_limit: int = 16
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    deadline_ms: Optional[float] = None
    query_timeout_ms: Optional[float] = None
    scope: MinimalityScope = MinimalityScope.SUPPORT
    monotone_fast_path: bool = False
    auto_gc: bool = True
    auto_reorder: bool = False
    gc_trigger: Optional[int] = None
    reorder_trigger: Optional[int] = None
    probabilities: Dict[str, Any] = field(default_factory=dict)
    uniform: Optional[float] = None
    max_body_bytes: int = 8 * 1024 * 1024


class _HTTPError(Exception):
    """Internal: abort request handling with a specific status."""

    def __init__(
        self,
        status: int,
        message: str,
        kind: str,
        extra: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.extra = extra or {}
        self.headers = headers or {}


class AnalysisServer:
    """The `bfl serve` daemon: scenarios in, JSON batteries out.

    Args:
        trees: A single tree (scenario ``"default"``) or a mapping of
            scenario name -> tree, exactly as
            :class:`~repro.service.batch.BatchAnalyzer` takes them.
        config: Server knobs (default :class:`ServerConfig`).
        store: Pre-built snapshot store (overrides
            ``config.store_path``); mostly for tests.
        pool: Pre-built session pool; mostly for tests.
    """

    def __init__(
        self,
        trees: Union[FaultTree, Mapping[str, FaultTree]],
        config: Optional[ServerConfig] = None,
        *,
        store: Optional[SnapshotStore] = None,
        pool: Optional[SessionPool] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if isinstance(trees, FaultTree):
            trees = {DEFAULT_SCENARIO: trees}
        if not trees:
            raise QuerySpecError("AnalysisServer needs at least one tree")
        self._trees: Dict[str, FaultTree] = dict(trees)
        self._fingerprints: Dict[str, str] = {
            name: tree_fingerprint(tree)
            for name, tree in self._trees.items()
        }
        if store is None and self.config.store_path:
            store = SnapshotStore(self.config.store_path)
        self.store = store
        self.pool = pool or SessionPool(
            self.config.pool_size, store=self.store
        )
        self._bucket: Optional[TokenBucket] = None
        if self.config.rate_limit is not None:
            burst = self.config.rate_burst
            if burst is None:
                burst = max(1.0, float(self.config.rate_limit))
            self._bucket = TokenBucket(self.config.rate_limit, burst)
        # Event-loop state (created in start()).
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._scenario_locks: Dict[str, asyncio.Lock] = {}
        self._stopped: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._waiting = 0
        self._inflight = 0
        self._draining = False
        self._started_at = time.monotonic()
        self.port: Optional[int] = None
        #: Request counters surfaced under ``GET /stats``.
        self._counters: Dict[str, int] = {
            "total": 0,
            "batteries": 0,
            "queries_answered": 0,
            "rejected_rate_limited": 0,
            "rejected_busy": 0,
            "bad_requests": 0,
            "rewarms": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (``self.port`` holds the bound port)."""
        self._loop = asyncio.get_running_loop()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "bfl serve: listening on %s:%d (%d scenario(s), pool=%d, "
            "store=%s)",
            self.config.host,
            self.port,
            len(self._trees),
            self.pool.capacity,
            self.store.path if self.store is not None else "off",
        )

    async def begin_drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight
        batteries, persist the pool into the store, close connections."""
        if self._draining:
            return
        self._draining = True
        logger.info(
            "bfl serve: draining (%d in flight)", self._inflight
        )
        if self._server is not None:
            self._server.close()
        while self._inflight or self._waiting:
            await asyncio.sleep(0.005)
        persisted = await asyncio.to_thread(self.pool.persist_all)
        if persisted:
            logger.info(
                "bfl serve: persisted %d session(s) to the store",
                persisted,
            )
        for connection in list(self._connections):
            connection.cancel()
        if self._server is not None:
            await self._server.wait_closed()
        if self._stopped is not None:
            self._stopped.set()

    def request_drain(self) -> None:
        """Thread-safe drain trigger (tests, embedding harnesses)."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(self.begin_drain())
        )

    async def wait_stopped(self) -> None:
        if self._stopped is not None:
            await self._stopped.wait()

    def run(
        self,
        ready: Optional[Callable[["AnalysisServer"], None]] = None,
        install_signal_handlers: bool = True,
    ) -> None:
        """Blocking entry point (what ``bfl serve`` calls): start, run
        until a drain completes.  ``ready`` fires once the port is
        bound; SIGTERM/SIGINT trigger :meth:`begin_drain`."""

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self)
            if install_signal_handlers:
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(
                            signum,
                            lambda: asyncio.ensure_future(
                                self.begin_drain()
                            ),
                        )
                    except (NotImplementedError, RuntimeError):
                        pass
            await self.wait_stopped()

        asyncio.run(_main())

    # ------------------------------------------------------------------
    # HTTP plumbing (stdlib asyncio; request/response bodies are JSON)
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HTTPError as exc:
                    await self._write_error(writer, exc, close=True)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload, extra_headers = await self._dispatch(
                        method, path, body
                    )
                except _HTTPError as exc:
                    await self._write_error(
                        writer, exc, close=not keep_alive
                    )
                    if not keep_alive:
                        break
                    continue
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 — a handler bug
                    # must not kill the connection loop silently.
                    logger.exception("bfl serve: unhandled error")
                    self._counters["errors"] += 1
                    await self._write_error(
                        writer,
                        _HTTPError(
                            500, str(exc), error_kind(exc)
                        ),
                        close=not keep_alive,
                    )
                    if not keep_alive:
                        break
                    continue
                await self._write_json(
                    writer,
                    status,
                    payload,
                    headers=extra_headers,
                    close=not keep_alive,
                )
                if not keep_alive:
                    break
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HTTPError(
                400, "malformed request line", "bad-request"
            )
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise _HTTPError(
                400, "malformed Content-Length header", "bad-request"
            ) from exc
        if length < 0:
            raise _HTTPError(
                400, "malformed Content-Length header", "bad-request"
            )
        if length > self.config.max_body_bytes:
            raise _HTTPError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
                "payload-too-large",
            )
        body = await reader.readexactly(length) if length else b""
        # Query strings are not part of the API surface; strip them so
        # routing sees the bare path.
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Mapping[str, Any],
        headers: Optional[Mapping[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _write_error(
        self,
        writer: asyncio.StreamWriter,
        exc: _HTTPError,
        close: bool,
    ) -> None:
        payload = {"error": str(exc), "error_kind": exc.kind}
        payload.update(exc.extra)
        await self._write_json(
            writer, exc.status, payload, headers=exc.headers, close=close
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self._counters["total"] += 1
        if path == "/healthz" and method == "GET":
            return self._healthz()
        routes_for_path = [r for r in ROUTES if r.path == path]
        if not routes_for_path:
            raise _HTTPError(
                404,
                f"unknown path {path!r}",
                "not-found",
                extra={
                    "endpoints": [
                        f"{r.method} {r.path}" for r in ROUTES
                    ]
                },
            )
        if method not in {r.method for r in routes_for_path}:
            raise _HTTPError(
                405,
                f"{method} not allowed on {path}",
                "method-not-allowed",
                headers={
                    "Allow": ", ".join(
                        r.method for r in routes_for_path
                    )
                },
            )
        if self._bucket is not None:
            admitted, retry_after_ms = self._bucket.try_acquire()
            if not admitted:
                self._counters["rejected_rate_limited"] += 1
                raise _HTTPError(
                    429,
                    "rate limit exceeded "
                    f"({self.config.rate_limit:g} requests/sec)",
                    RateLimitError.kind,
                    extra={"retry_after_ms": round(retry_after_ms, 1)},
                    headers={
                        "Retry-After": str(
                            max(1, int(retry_after_ms / 1000.0 + 0.999))
                        )
                    },
                )
        if path == "/scenarios":
            return 200, self._scenarios_payload(), {}
        if path == "/stats":
            return 200, self._stats_payload(), {}
        if path == "/query":
            return await self._handle_query(body)
        if path == "/battery":
            return await self._handle_battery(body)
        raise _HTTPError(404, f"unknown path {path!r}", "not-found")

    def _healthz(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        status = "draining" if self._draining else "ok"
        payload = {
            "status": status,
            "scenarios": len(self._trees),
            "pooled_sessions": len(self.pool),
            "inflight": self._inflight,
        }
        return (503 if self._draining else 200), payload, {}

    def _scenarios_payload(self) -> Dict[str, Any]:
        pooled_prefixes = {
            key.split(":", 1)[0] for key in self.pool.keys()
        }
        scenarios = []
        for name in sorted(self._trees):
            tree = self._trees[name]
            fingerprint = self._fingerprints[name]
            scenarios.append(
                {
                    "name": name,
                    "fingerprint": fingerprint,
                    "top": tree.top,
                    "basic_events": len(tree.basic_events),
                    "pooled": fingerprint in pooled_prefixes,
                    "stored": (
                        self.store is not None
                        and fingerprint in self.store
                    ),
                }
            )
        return {"scenarios": scenarios}

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            "server": {
                "uptime_ms": round(
                    (time.monotonic() - self._started_at) * 1000.0, 1
                ),
                "draining": self._draining,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "max_concurrency": self.config.max_concurrency,
                "queue_limit": self.config.queue_limit,
                "rate_limit": self.config.rate_limit,
                "requests": dict(self._counters),
            },
            "pool": self.pool.stats(),
            "store": (
                self.store.stats() if self.store is not None else None
            ),
        }

    # ------------------------------------------------------------------
    # Battery evaluation
    # ------------------------------------------------------------------

    def _parse_body(self, body: bytes) -> Any:
        if not body:
            raise _HTTPError(
                400, "request body is empty", "bad-request"
            )
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(
                400, f"request body is not valid JSON: {exc}", "bad-request"
            ) from exc

    async def _handle_query(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        payload = self._parse_body(body)
        if isinstance(payload, dict) and "query" in payload:
            options = {
                key: value
                for key, value in payload.items()
                if key != "query"
            }
            unknown = set(options) - _BATTERY_OPTION_KEYS
            if unknown:
                raise _HTTPError(
                    400,
                    "unknown option(s) "
                    + ", ".join(sorted(unknown))
                    + " (allowed: "
                    + ", ".join(sorted(_BATTERY_OPTION_KEYS))
                    + ")",
                    "bad-request",
                )
            queries = [payload["query"]]
        elif isinstance(payload, (dict, str)):
            options = {}
            queries = [payload]
        else:
            raise _HTTPError(
                400,
                "POST /query takes one query spec (object or DSL "
                "string), optionally wrapped as {'query': ..., "
                "<options>}",
                "bad-request",
            )
        report = await self._admit_and_run(queries, options)
        data = report.to_dict()
        return (
            200,
            {
                "result": data["results"][0],
                "stats": data["stats"],
                "elapsed_ms": data["elapsed_ms"],
            },
            {},
        )

    async def _handle_battery(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        payload = self._parse_body(body)
        if isinstance(payload, list):
            payload = {"queries": payload}
        if not isinstance(payload, dict):
            raise _HTTPError(
                400,
                "POST /battery takes {'queries': [...], <options>} "
                "or a bare query list",
                "bad-request",
            )
        if "queries" not in payload:
            raise _HTTPError(
                400, "battery is missing 'queries'", "bad-request"
            )
        options = {
            key: value
            for key, value in payload.items()
            if key != "queries"
        }
        unknown = set(options) - _BATTERY_OPTION_KEYS
        if unknown:
            raise _HTTPError(
                400,
                "unknown battery field(s) "
                + ", ".join(sorted(unknown))
                + " (allowed: queries, "
                + ", ".join(sorted(_BATTERY_OPTION_KEYS))
                + "; trees/variants/workers are server state, fixed "
                "at startup)",
                "bad-request",
            )
        report = await self._admit_and_run(payload["queries"], options)
        return 200, report.to_dict(), {}

    async def _admit_and_run(
        self, queries: Any, options: Dict[str, Any]
    ) -> BatchReport:
        try:
            specs = specs_from_any(queries)
        except ReproError as exc:
            self._counters["bad_requests"] += 1
            raise _HTTPError(
                400, str(exc), error_kind(exc)
            ) from exc
        if self._draining:
            self._counters["rejected_busy"] += 1
            raise _HTTPError(
                503,
                "server is draining",
                ServerBusyError.kind,
                extra={"draining": True},
            )
        assert self._semaphore is not None
        if self._waiting >= self.config.queue_limit:
            self._counters["rejected_busy"] += 1
            raise _HTTPError(
                503,
                f"admission queue is full ({self._waiting} waiting, "
                f"limit {self.config.queue_limit})",
                ServerBusyError.kind,
            )
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        locked: List[asyncio.Lock] = []
        try:
            touched = sorted(
                {spec.tree for spec in specs if spec.tree in self._trees}
            )
            for name in touched:
                lock = self._scenario_locks.setdefault(
                    name, asyncio.Lock()
                )
                await lock.acquire()
                locked.append(lock)
            self._inflight += 1
            try:
                report = await asyncio.to_thread(
                    self._evaluate_battery, specs, options
                )
            finally:
                self._inflight -= 1
        except ReproError as exc:
            # Request-level configuration errors (bad deadline_ms,
            # stray probability events, ...) — the battery never ran.
            self._counters["bad_requests"] += 1
            raise _HTTPError(400, str(exc), error_kind(exc)) from exc
        finally:
            for lock in reversed(locked):
                lock.release()
            self._semaphore.release()
        self._counters["batteries"] += 1
        self._counters["queries_answered"] += len(report.results)
        return report

    def _pool_key(
        self,
        name: str,
        probabilities: Mapping[str, Any],
        uniform: Optional[float],
    ) -> str:
        """Pool key for one scenario under one set of request weights.

        The kernel is weight-independent, so the content address
        (fingerprint) is the key; requests carrying PFL overrides get a
        ``:digest`` suffix because a session's probability answers are
        baked at construction.
        """
        fingerprint = self._fingerprints[name]
        overrides = resolve_overrides(
            name, self._trees[name], probabilities, uniform
        )
        if not overrides:
            return fingerprint
        return f"{fingerprint}:{overrides_digest(overrides)}"

    def _evaluate_battery(
        self, specs: List[Any], options: Dict[str, Any]
    ) -> BatchReport:
        """Worker-thread core: adopt pooled sessions, warm-start the
        rest from the store, run a real :class:`BatchAnalyzer`."""
        config = self.config
        probabilities = options.get("probabilities")
        if probabilities is None:
            probabilities = config.probabilities
        uniform = options.get("uniform", config.uniform)
        deadline_ms = options.get("deadline_ms", config.deadline_ms)
        query_timeout_ms = options.get(
            "query_timeout_ms", config.query_timeout_ms
        )
        if not isinstance(probabilities, Mapping):
            raise QuerySpecError(
                f"probabilities must be a mapping, got "
                f"{type(probabilities).__name__}"
            )
        touched = sorted(
            {spec.tree for spec in specs if spec.tree in self._trees}
        )
        keys: Dict[str, str] = {}
        pinned: Dict[str, AnalysisSession] = {}
        snapshots: Dict[str, Mapping[str, Any]] = {}
        for name in touched:
            key = self._pool_key(name, probabilities, uniform)
            keys[name] = key
            session = self.pool.acquire(key)
            if session is not None:
                pinned[name] = session
            elif self.store is not None:
                entry = self.store.get(self._fingerprints[name])
                if entry is not None:
                    # Warm tier hit: the per-request analyzer will
                    # load_snapshot this instead of rebuilding (and
                    # degrade to a cold build if the entry rotted).
                    snapshots[name] = entry
                    self._counters["rewarms"] += 1
        try:
            analyzer = BatchAnalyzer(
                dict(self._trees),
                scope=config.scope,
                monotone_fast_path=config.monotone_fast_path,
                auto_gc=config.auto_gc,
                auto_reorder=config.auto_reorder,
                gc_trigger=config.gc_trigger,
                reorder_trigger=config.reorder_trigger,
                probabilities=probabilities,
                uniform=uniform,
                snapshots=snapshots,
                deadline_ms=deadline_ms,
                query_timeout_ms=query_timeout_ms,
            )
            for name, session in pinned.items():
                analyzer.adopt_session(name, session)
            report = analyzer.run(specs)
            # Capture the sessions this battery built (cold or rewarmed)
            # into the hot tier; pool.adopt pins them, and the finally
            # below releases every pin in one place.
            for name, session in analyzer.sessions.items():
                if name in keys and name not in pinned:
                    pinned[name] = self.pool.adopt(
                        keys[name],
                        session,
                        fingerprint=self._fingerprints[name],
                    )
            return report
        finally:
            for name in pinned:
                self.pool.release(keys[name])
