"""Session pooling: the warm tier between one-shot batteries and `bfl serve`.

This module owns the two pieces of per-scenario session lifecycle that
used to live inline in :class:`~repro.service.batch.BatchAnalyzer` and
that the analysis server (:mod:`repro.service.server`) needs on its own
terms:

* :func:`resolve_overrides` — the probability-override resolution rule
  (uniform floor, then flat entries, then the scenario-scoped map).
* :func:`build_session` — snapshot warm start with the degrade-to-cold
  protocol: a corrupt kernel snapshot is only an accelerator, so it is
  logged, reported as a structured warning, and the session is rebuilt
  from the tree.

:class:`BatchAnalyzer` delegates to both, so one-shot batteries and the
server share byte-identical behaviour by construction.

On top of those sits :class:`SessionPool`, the server's LRU tier of live
:class:`~repro.service.batch.AnalysisSession`s.  Pool keys are opaque
strings — the server uses ``<tree-fingerprint>`` for plain scenarios and
``<tree-fingerprint>:<overrides-digest>`` when a request carries its own
probability overrides (the kernel is overrides-independent, but a
session's PFL answers are not).  Entries carry the tree fingerprint
separately so an evicted session can be persisted into a
:class:`~repro.service.store.SnapshotStore` under its content address:
eviction demotes a scenario from the hot tier (live kernel) to the warm
tier (binary snapshot on disk), from which the next request rewarms it
via ``load_snapshot`` instead of a cold rebuild.

Pinning makes the pool safe under concurrency: a battery pins every
session it evaluates against, and pinned entries are never evicted or
snapshotted — the pool runs over capacity instead, shedding the excess
as pins release.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..ft.tree import FaultTree
from ..errors import SnapshotIntegrityError
from .batch import AnalysisSession

logger = logging.getLogger(__name__)

__all__ = [
    "SessionPool",
    "build_session",
    "overrides_digest",
    "resolve_overrides",
]


def resolve_overrides(
    name: str,
    tree: FaultTree,
    probabilities: Mapping[str, Any],
    uniform: Optional[float],
) -> Dict[str, float]:
    """Resolve the probability overrides for one scenario: uniform
    floor, then flat entries, then the scenario's own map.

    The ``probabilities`` mapping may mix the two shapes: a
    Mapping-valued entry scopes its contents to that scenario (and
    wins), a scalar-valued entry is a flat per-event probability
    "applied to every scenario" — so events a particular tree does
    not have are simply not for it, while scenario-scoped maps stay
    strict (unknown event names surface as per-query
    ``MissingProbabilityError`` diagnostics).
    """
    overrides: Dict[str, float] = {}
    if uniform is not None:
        overrides = {
            event: float(uniform) for event in tree.basic_events
        }
    overrides.update(
        {
            event: value
            for event, value in probabilities.items()
            if not isinstance(value, Mapping)
            and event in tree.basic_events
        }
    )
    scoped = probabilities.get(name)
    if isinstance(scoped, Mapping):
        overrides.update(scoped)
    return overrides


def overrides_digest(overrides: Mapping[str, float]) -> str:
    """Short stable digest of a resolved override map (pool-key salt:
    sessions built under different PFL weights must not be conflated,
    even though their kernels are interchangeable)."""
    payload = json.dumps(
        {str(k): float(v) for k, v in overrides.items()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_session(
    name: str,
    tree: FaultTree,
    *,
    snapshot: Optional[Mapping[str, Any]] = None,
    warnings: Optional[List[Dict[str, str]]] = None,
    **kwargs: Any,
) -> Tuple[AnalysisSession, bool]:
    """Build one scenario session, warm-starting from ``snapshot``.

    Returns ``(session, warm)`` where ``warm`` says whether the snapshot
    actually seeded the kernel.  A snapshot that fails its integrity
    check must not kill the battery: the snapshot is only an
    accelerator, so the failure is logged, appended to ``warnings`` as a
    structured row (the shape ``report.stats["warnings"]`` surfaces),
    and the session is rebuilt cold from the tree.
    """
    if snapshot is not None:
        try:
            return (
                AnalysisSession(name, tree, snapshot=snapshot, **kwargs),
                True,
            )
        except SnapshotIntegrityError as exc:
            message = (
                f"scenario {name!r}: kernel snapshot failed its "
                f"integrity check ({exc}); rebuilding from the tree"
            )
            logger.warning("%s", message)
            if warnings is not None:
                warnings.append(
                    {
                        "scenario": name,
                        "kind": exc.kind,
                        "message": message,
                    }
                )
    return AnalysisSession(name, tree, **kwargs), False


class _Entry:
    """One pooled session (mutable bookkeeping record)."""

    __slots__ = ("key", "fingerprint", "session", "pins")

    def __init__(
        self, key: str, fingerprint: Optional[str], session: AnalysisSession
    ) -> None:
        self.key = key
        self.fingerprint = fingerprint
        self.session = session
        self.pins = 0


class SessionPool:
    """Bounded LRU pool of live analysis sessions with spill-to-store.

    Args:
        capacity: Target number of live sessions.  Pinned entries never
            count against evictability, so the pool may temporarily run
            over capacity while batteries are in flight; the overflow is
            shed as pins release.
        store: Optional :class:`~repro.service.store.SnapshotStore`.
            When given, an evicted entry that knows its tree fingerprint
            is snapshotted (binary v2 encoding) into the store before it
            is dropped, so the scenario stays warm-startable.

    All methods are thread-safe; the pool is shared between the server's
    event loop and its worker threads.
    """

    def __init__(self, capacity: int = 8, store: Optional[Any] = None) -> None:
        if isinstance(capacity, bool) or not isinstance(capacity, int):
            raise TypeError(f"capacity must be an integer >= 1, got {capacity!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.store = store
        #: key -> entry, in LRU order (oldest first).
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._persisted = 0

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def acquire(self, key: str) -> Optional[AnalysisSession]:
        """The pooled session for ``key``, pinned, or ``None`` on miss.

        Every successful acquire must be paired with a :meth:`release`
        — sessions stay evictable only while unpinned.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            entry.pins += 1
            self._touch(entry)
            self._hits += 1
            return entry.session

    def adopt(
        self,
        key: str,
        session: AnalysisSession,
        fingerprint: Optional[str] = None,
    ) -> AnalysisSession:
        """Insert a freshly built session under ``key``, pinned.

        When ``key`` is already pooled (two requests raced to build the
        same scenario), the existing entry wins — it is pinned and
        returned, and the caller's duplicate is discarded — so
        concurrent batteries always converge on one session per key.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(key, fingerprint, session)
                self._entries[key] = entry
            entry.pins += 1
            self._touch(entry)
            return entry.session

    def release(self, key: str) -> None:
        """Unpin one acquire/adopt of ``key``; sheds LRU overflow."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            if entry.pins > 0:
                entry.pins -= 1
            self._evict_overflow()

    def discard(self, key: str) -> Optional[AnalysisSession]:
        """Drop ``key`` from the pool without persisting (tests /
        explicit invalidation); returns the removed session, if any."""
        with self._lock:
            entry = self._entries.pop(key, None)
            return entry.session if entry is not None else None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def persist_all(self) -> int:
        """Snapshot every fingerprinted entry into the store (drain
        path: the server calls this before exiting so the next process
        warm-starts everything).  Returns the number persisted."""
        with self._lock:
            count = 0
            for entry in self._entries.values():
                if self._persist(entry):
                    count += 1
            return count

    def _persist(self, entry: _Entry) -> bool:
        if self.store is None or entry.fingerprint is None:
            return False
        try:
            self.store.put(
                entry.fingerprint,
                entry.session.kernel_snapshot(binary=True),
            )
        except OSError as exc:
            logger.warning(
                "session pool: persisting %s failed: %s", entry.key, exc
            )
            return False
        self._persisted += 1
        return True

    # ------------------------------------------------------------------
    # LRU bookkeeping (callers hold self._lock)
    # ------------------------------------------------------------------

    def _touch(self, entry: _Entry) -> None:
        # dicts preserve insertion order; re-inserting moves to the end.
        self._entries.pop(entry.key, None)
        self._entries[entry.key] = entry

    def _evict_overflow(self) -> None:
        while len(self._entries) > self.capacity:
            victim = next(
                (e for e in self._entries.values() if e.pins == 0), None
            )
            if victim is None:
                # Everything is pinned: run over capacity until pins
                # release rather than evict a session mid-battery.
                return
            self._persist(victim)
            del self._entries[victim.key]
            self._evictions += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[str]:
        """Pooled keys, LRU order (oldest first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Pool counters (plus per-entry pin state, LRU order)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "sessions": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "persisted": self._persisted,
                "entries": [
                    {
                        "key": entry.key,
                        "fingerprint": entry.fingerprint,
                        "pins": entry.pins,
                        "nodes": entry.session.checker.manager.node_count(),
                    }
                    for entry in self._entries.values()
                ],
            }
