"""The batch analyzer: answer many BFL queries against shared BDD state.

Where :class:`~repro.checker.engine.ModelChecker` answers one question at
a time, :class:`BatchAnalyzer` is the query-serving engine for batteries:

1. **Parse phase** — every query's DSL text is parsed up front, through a
   per-scenario text cache (identical texts parse once).
2. **Translate phase** — the *distinct* statements of each scenario are
   pushed through Algorithm 1 once.  The translation cache is keyed on
   formula *structure* (the AST nodes are frozen dataclasses), so two
   queries sharing a subformula — ``MCS(TLE) & H1`` and ``MCS(TLE) & H2``
   — build the expensive ``MCS(TLE)`` BDD a single time, and the cache
   persists across :meth:`BatchAnalyzer.run` calls.
3. **Evaluate phase** — each query is answered against the now-warm
   translator; per-query wall time therefore measures the *marginal*
   cost under sharing.

One :class:`AnalysisSession` (tree + :class:`ModelChecker` + caches) is
kept per scenario; all queries of a scenario run inside a single
:class:`~repro.bdd.manager.BDDManager`, whose apply/ITE memo tables the
whole battery amortises.  ``report.stats`` quantifies the effect with
cache hit/miss deltas for the batch.
"""

from __future__ import annotations

import hashlib
import logging
import os
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..bdd.manager import BDDManager, OperationCacheStats
from ..checker.engine import ModelChecker
from ..errors import (
    QueryDeadlineError,
    ReproError,
    SnapshotError,
    error_kind,
)
from ..runtime.limits import Governor
from ..ft.galileo import dumps as galileo_dumps
from ..ft.tree import FaultTree
from ..engine import execute_kind, statements_for
from ..logic.ast_nodes import (
    SUP,
    Atom,
    Exists,
    Forall,
    Formula,
    IDP,
    ProbabilityQuery,
    Query,
    Statement,
    Synthesize,
)
from ..logic.parser import format_statement, parse_request
from ..logic.scope import MinimalityScope
from .queries import (
    DEFAULT_SCENARIO,
    BatchReport,
    QueryResult,
    QuerySpec,
    QuerySpecError,
    specs_from_any,
)

logger = logging.getLogger(__name__)


def tree_fingerprint(tree: FaultTree) -> str:
    """Stable structural identity of a tree (Galileo text digest).

    Guards kernel-snapshot warm starts: a snapshot records the
    fingerprint of the tree it was built from, and adopting it into a
    scenario with a different fingerprint raises instead of silently
    answering queries from stale BDDs.
    """
    return hashlib.sha256(galileo_dumps(tree).encode("utf-8")).hexdigest()


class AnalysisSession:
    """Persistent per-scenario state: one tree, one checker, one manager.

    Attributes:
        name: Scenario name.
        checker: The wrapped :class:`ModelChecker` (its translator and
            BDD manager live as long as the session).
    """

    def __init__(
        self,
        name: str,
        tree: FaultTree,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        order: Optional[Sequence[str]] = None,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
        probabilities: Optional[Mapping[str, float]] = None,
        snapshot: Optional[Mapping[str, Any]] = None,
        manager: Optional[BDDManager] = None,
    ) -> None:
        self.name = name
        # Warm start: rebuild the kernel from a portable snapshot and
        # drop its element roots straight into the tree-translation
        # cache, so the session never re-runs Psi_FT for the tree.
        # Alternatively a caller may pass an existing ``manager`` to
        # share a live kernel (the copy-on-write fork_variant path).
        if snapshot is not None and manager is not None:
            raise SnapshotError(
                "pass either a snapshot or a live manager, not both"
            )
        adopted = None
        if snapshot is not None:
            manager, adopted = BDDManager.load_snapshot(snapshot)
        self._session_config: Dict[str, Any] = {
            "scope": scope,
            "order": order,
            "monotone_fast_path": monotone_fast_path,
            "auto_gc": auto_gc,
            "auto_reorder": auto_reorder,
            "gc_trigger": gc_trigger,
            "reorder_trigger": reorder_trigger,
        }
        #: Name of the session this one was forked from (None for base
        #: sessions) and the edit script that produced it.
        self.variant_of: Optional[str] = None
        self.edits: Tuple[Any, ...] = ()
        self.checker = ModelChecker(
            tree,
            scope=scope,
            order=order,
            monotone_fast_path=monotone_fast_path,
            auto_gc=auto_gc,
            auto_reorder=auto_reorder,
            gc_trigger=gc_trigger,
            reorder_trigger=reorder_trigger,
            manager=manager,
        )
        if adopted:
            self.checker.translator.tree_translator.adopt(adopted)
        self._parse_cache: Dict[str, Statement] = {}
        self.parse_hits = 0
        self.parse_misses = 0
        #: Statements already pushed through the translate phase (this is
        #: the *cross-batch* record; within-batch dedup happens in run()).
        self.warmed: set = set()
        #: Per-event probability overrides for PFL queries (the tree's
        #: own BasicEvent.probability attributes fill the gaps).
        self._prob_overrides: Dict[str, float] = dict(probabilities or {})
        self._prob_checker = None

    def prob_checker(self):
        """The scenario's :class:`~repro.prob.ProbabilityChecker`,
        created lazily on the *shared* translator so probabilistic and
        qualitative queries reuse one BDD manager (and its probability
        cache).  Lazy because resolving event probabilities raises when
        they are missing — a purely qualitative battery should never pay
        (or trip over) that.
        """
        if self._prob_checker is None:
            from ..prob.queries import ProbabilityChecker

            self._prob_checker = ProbabilityChecker(
                overrides=self._prob_overrides,
                translator=self.checker.translator,
            )
        return self._prob_checker

    @property
    def tree(self) -> FaultTree:
        return self.checker.tree

    def parse(self, formula: Union[str, Statement]) -> Statement:
        """DSL text -> AST, memoised on the exact text."""
        if not isinstance(formula, str):
            return formula
        text = formula.strip()
        cached = self._parse_cache.get(text)
        if cached is not None:
            self.parse_hits += 1
            return cached
        self.parse_misses += 1
        statement, _ = parse_request(text)
        self._parse_cache[text] = statement
        return statement

    def prewarm(self, statement: Statement) -> None:
        """Run Algorithm 1 for ``statement`` so evaluation only walks BDDs.

        Layer-2 queries translate their operand(s); IDP/SUP additionally
        need supports, which the evaluate phase derives from the same
        cached BDDs.
        """
        translator = self.checker.translator
        if isinstance(statement, Formula):
            translator.bdd(statement)
        elif isinstance(statement, (Exists, Forall)):
            translator.bdd(statement.operand)
        elif isinstance(statement, IDP):
            translator.bdd(statement.left)
            translator.bdd(statement.right)
        elif isinstance(statement, SUP):
            translator.bdd(Atom(statement.element))
            translator.bdd(Atom(self.tree.top))
        elif isinstance(statement, ProbabilityQuery):
            translator.bdd(statement.formula)
            if statement.condition is not None:
                translator.bdd(statement.condition)
        elif isinstance(statement, Synthesize):
            # Region computation projects the target formula's BDD; the
            # candidate bookkeeping itself is cheap.
            translator.bdd(statement.formula)
        self.warmed.add(statement)

    def fork_variant(
        self,
        name: str,
        edits: Sequence[Any],
        probabilities: Optional[Mapping[str, float]] = None,
        tree: Optional[FaultTree] = None,
    ) -> "AnalysisSession":
        """Copy-on-write what-if session: same kernel, edited tree.

        The child session shares this session's ``BDDManager`` — node
        store, unique table and every operation memo stay warm — while
        owning its own translators, formula caches and probability
        overrides, so both sessions answer queries independently.  The
        child adopts every element BDD the edit script leaves
        structurally unchanged
        (:func:`repro.ft.edits.changed_elements_from_edits`),
        and when the script is confined to one subtree
        (:func:`repro.ft.edits.splice_site`) its top-level BDD is seeded
        by compose-splicing the re-lowered subtree into this session's
        cached abstract root — one memoised
        :meth:`~repro.bdd.manager.BDDManager.compose` per variant.  All
        adopted/spliced BDDs are pinned by the child's caches, so the
        shared kernel's GC and in-place sifting checkpoints remain safe.

        Args:
            name: Scenario name for the child session.
            edits: Edit script (:class:`repro.ft.edits.Edit` objects or
                their JSON-style mappings), applied to this session's
                tree in order.
            probabilities: Probability overrides for the child.  When
                given they *replace* inheritance; when omitted the child
                inherits this session's overrides minus any event a
                ``weight-change`` edit retargets (so the edit's value,
                now carried by the tree, takes effect) and minus events
                the script removed from the tree.
            tree: The already-materialised result of applying ``edits``
                to this session's tree, when the caller holds one (e.g.
                :class:`BatchAnalyzer` materialises variant trees at
                registration for validation and cost modelling).  Skips
                the redundant re-application; it must be equal to
                ``apply_edits(self.tree, edits)``.
        """
        from ..ft.edits import (
            EventAdd,
            GateSwap,
            WeightChange,
            apply_edits,
            changed_elements_from_edits,
            edits_from_any,
            splice_site,
        )

        edit_list = edits_from_any(edits)
        base_tree = self.tree
        new_tree = tree if tree is not None else apply_edits(
            base_tree, edit_list
        )
        if probabilities is not None:
            overrides = dict(probabilities)
        else:
            weight_targets = {
                edit.event
                for edit in edit_list
                if isinstance(edit, WeightChange)
            }
            if not weight_targets and all(
                isinstance(edit, (GateSwap, EventAdd))
                for edit in edit_list
            ):
                # No retargeted weights and no edit type that can
                # remove an event: inherit as-is.
                overrides = dict(self._prob_overrides)
            else:
                surviving = new_tree.basic_events
                overrides = {
                    event: value
                    for event, value in self._prob_overrides.items()
                    if event not in weight_targets and event in surviving
                }
        child = AnalysisSession(
            name,
            new_tree,
            probabilities=overrides,
            manager=self.checker.manager,
            **self._session_config,
        )
        child.variant_of = self.name
        child.edits = tuple(edit_list)
        dirty = changed_elements_from_edits(base_tree, new_tree, edit_list)
        parent_tt = self.checker.translator.tree_translator
        child_tt = child.checker.translator.tree_translator
        child_tt.adopt_from(parent_tt, skip=dirty)
        site = splice_site(base_tree, new_tree, dirty=dirty)
        if site is not None and site != new_tree.top:
            # Re-lower only the edited subtree (its unchanged children
            # were just adopted), then splice it into the parent's
            # memoised abstract root.
            subtree = child_tt.element(site)
            child_tt.adopt({new_tree.top: parent_tt.splice(site, subtree)})
        return child

    def kernel_snapshot(self, *, binary: bool = False) -> Dict[str, Any]:
        """Portable kernel snapshot of this session's manager, rooted at
        every element BDD translated so far (the reusable, per-tree part
        of the session — formula combinations are cheap to redo and are
        keyed on ASTs a snapshot cannot name).

        ``binary=True`` selects the zero-copy v2 array encoding (raw
        ``bytes`` columns a worker adopts as buffers without per-node
        decoding) — right for pickled worker payloads, wrong for JSON
        snapshot files, which stay on the list-based v1 layout."""
        translator = self.checker.translator
        return self.checker.manager.save_snapshot(
            roots=translator.tree_translator.export_cache(),
            binary=binary,
        )

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative cache counters (used for per-batch deltas)."""
        translator = self.checker.translator
        return {
            "formula_hits": translator.stats.formula_hits,
            "formula_misses": translator.stats.formula_misses,
            "element_requests": translator.stats.element_requests,
            "op": self.checker.manager.op_stats.copy(),
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
        }


class BatchAnalyzer:
    """Serve batteries of BFL queries over one or more fault trees.

    Args:
        trees: A single tree (registered under the scenario name
            ``"default"``) or a mapping of scenario name -> tree.
        scope: MCS/MPS minimality scope, applied to every scenario.
        monotone_fast_path: Passed through to each translator.
        auto_gc: Arm automatic BDD garbage collection on every scenario's
            manager.  Long-lived sessions accumulate dead intermediate
            BDDs (primed relations, quantifier witnesses, ...); with GC
            armed they are reclaimed at query boundaries, holding peak
            live nodes near the steady-state working set (the soak gate
            in ``benchmarks/bench_reorder_gc.py`` pins this to < 2x).
        auto_reorder: Arm automatic in-place Rudell sifting on every
            scenario's manager.
        gc_trigger: Optional live-node count arming the first collection.
        reorder_trigger: Optional live-node count arming the first sift.
        probabilities: Per-event failure probabilities for PFL queries.
            Scalar-valued entries (``{event: p}``) apply to every
            scenario that has the event; Mapping-valued entries
            (``{scenario: {event: p}}``) scope their contents to that
            scenario and win over flat entries.  The two shapes may be
            mixed.  Gaps fall back to the trees' own
            ``BasicEvent.probability`` attributes.
        uniform: Uniform probability for every basic event of every
            scenario (explicit ``probabilities`` entries win).
        workers: Number of worker processes for :meth:`run`.  ``1`` (the
            default) answers the battery in-process; ``N > 1`` plans the
            battery into balanced shards and fans them out over a
            process pool in which every worker owns private per-scenario
            BDD managers (see :mod:`repro.service.parallel`).  Results
            are merged back in battery order, so reports agree
            query-for-query with a sequential run.
        snapshots: Optional scenario-name -> kernel-snapshot mapping (as
            produced by :meth:`kernel_snapshots` or loaded from a ``bfl
            batch --snapshot`` file) to warm-start sessions from; each
            entry's tree fingerprint must match the scenario's tree.
        variants: Optional variant-name -> definition mapping, the
            programmatic face of the query-file ``variants:`` key.  Each
            definition is ``{"base": scenario, "edits": [...],
            "probabilities": {...}}`` (``base`` defaults to
            ``"default"``; ``probabilities`` is optional) where
            ``edits`` is a :mod:`repro.ft.edits` edit script.  A variant
            behaves like any other scenario in queries and reports, but
            its session is built by copy-on-write forking
            (:meth:`AnalysisSession.fork_variant`) of the warm base
            session — sharing the base kernel instead of rebuilding —
            which is what makes wide what-if sweeps cheap.
        deadline_ms: Wall-clock budget for a whole battery
            (:meth:`run`).  Translation and evaluation run under a
            kernel governor bounded by the remaining budget; once it is
            spent, every not-yet-answered query is reported as a
            structured ``error_kind="deadline"`` failure and the report
            still comes back complete and in order.
        query_timeout_ms: Default per-query wall-clock budget, applied
            to every query that does not carry its own
            ``QuerySpec.timeout_ms``.  A timed-out query becomes a
            structured ``error_kind="deadline"`` failure; the rest of
            the battery continues (the kernel is left consistent by the
            governor's abort protocol).
        shard_retries: Parallel mode only — how many times a failed
            shard (worker crash, watchdog expiry) is resubmitted to a
            respawned worker before its queries are reported as
            structured ``error_kind="worker-crash"`` failures.
        retry_backoff_ms: Parallel mode only — base delay before the
            first shard retry; doubles per attempt (exponential
            backoff).
        watchdog_ms: Parallel mode only — per-shard hang detector: a
            shard that produces no result within this wall-clock budget
            is treated as crashed (and retried, subject to
            ``shard_retries``).  ``None`` disables the watchdog.

    Example:
        >>> from repro.ft import figure1_tree
        >>> analyzer = BatchAnalyzer(figure1_tree())
        >>> report = analyzer.run(["exists CP/R", {"kind": "mcs"}])
        >>> [r.ok for r in report.results]
        [True, True]
    """

    def __init__(
        self,
        trees: Union[FaultTree, Mapping[str, FaultTree]],
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
        probabilities: Optional[Mapping[str, Any]] = None,
        uniform: Optional[float] = None,
        workers: int = 1,
        snapshots: Optional[Mapping[str, Mapping[str, Any]]] = None,
        variants: Optional[Mapping[str, Mapping[str, Any]]] = None,
        deadline_ms: Optional[float] = None,
        query_timeout_ms: Optional[float] = None,
        shard_retries: int = 2,
        retry_backoff_ms: float = 250.0,
        watchdog_ms: Optional[float] = None,
    ) -> None:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise QuerySpecError(
                f"workers must be an integer >= 1, got {workers!r}"
            )
        if workers < 1:
            raise QuerySpecError(
                f"workers must be an integer >= 1, got {workers}"
            )
        for label, value in (
            ("deadline_ms", deadline_ms),
            ("query_timeout_ms", query_timeout_ms),
            ("watchdog_ms", watchdog_ms),
        ):
            if value is not None and not value > 0:
                raise QuerySpecError(
                    f"{label} must be > 0, got {value!r}"
                )
        if (
            isinstance(shard_retries, bool)
            or not isinstance(shard_retries, int)
            or shard_retries < 0
        ):
            raise QuerySpecError(
                f"shard_retries must be an integer >= 0, got {shard_retries!r}"
            )
        if not retry_backoff_ms >= 0:
            raise QuerySpecError(
                f"retry_backoff_ms must be >= 0, got {retry_backoff_ms!r}"
            )
        self._deadline_ms = deadline_ms
        self._query_timeout_ms = query_timeout_ms
        self._shard_retries = shard_retries
        self._retry_backoff_ms = retry_backoff_ms
        self._watchdog_ms = watchdog_ms
        #: perf_counter() instant the current battery must finish by
        #: (armed per run(); None = no battery deadline).
        self._battery_deadline_at: Optional[float] = None
        #: Structured warnings accumulated while building sessions
        #: (e.g. a corrupt snapshot that degraded to a cold build);
        #: surfaced under ``report.stats["warnings"]``.
        self._warnings: List[Dict[str, str]] = []
        self._scope = scope
        self._monotone_fast_path = monotone_fast_path
        self._auto_gc = auto_gc
        self._auto_reorder = auto_reorder
        self._gc_trigger = gc_trigger
        self._reorder_trigger = reorder_trigger
        self._probabilities = dict(probabilities or {})
        self._uniform = uniform
        self._workers = workers
        self._snapshots: Dict[str, Mapping[str, Any]] = dict(snapshots or {})
        #: Registered scenario trees.  Sessions are built *lazily* from
        #: these on first use (``session()``): a parent running in
        #: parallel mode and every worker process then only ever pay
        #: for the scenarios their queries actually touch.
        self._trees: Dict[str, FaultTree] = {}
        self._sessions: Dict[str, AnalysisSession] = {}
        if isinstance(trees, FaultTree):
            self._register(DEFAULT_SCENARIO, trees)
        else:
            for name, tree in trees.items():
                self._register(name, tree)
        if not self._trees:
            raise QuerySpecError("BatchAnalyzer needs at least one tree")
        #: Variant-name -> {"base", "edits", "probabilities"}.  The
        #: derived trees join self._trees (queries, cost model and
        #: probability validation treat variants as ordinary scenarios);
        #: sessions are forked from the base session on first use.
        self._variants: Dict[str, Dict[str, Any]] = {}
        for variant_name, definition in (variants or {}).items():
            self._register_variant(variant_name, definition)
        # Scenario-scoped probability maps must name a registered
        # scenario — a typo would otherwise silently run the battery
        # against the uniform floor / tree-attached probabilities.
        unknown = [
            key
            for key, value in self._probabilities.items()
            if isinstance(value, Mapping) and key not in self._trees
        ]
        if unknown:
            raise QuerySpecError(
                "probability map(s) for unknown scenario(s): "
                + ", ".join(sorted(unknown))
                + " (registered: "
                + ", ".join(sorted(self._trees))
                + ")"
            )
        # Likewise a flat entry no scenario's tree can use is a typo,
        # not a probability — per-scenario filtering would otherwise
        # drop it silently.
        known_events = {
            event
            for tree in self._trees.values()
            for event in tree.basic_events
        }
        stray = [
            key
            for key, value in self._probabilities.items()
            if not isinstance(value, Mapping) and key not in known_events
        ]
        if stray:
            raise QuerySpecError(
                "probabilities for event(s) unknown to every scenario: "
                + ", ".join(sorted(stray))
            )

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------

    def add_scenario(self, name: str, tree: FaultTree) -> AnalysisSession:
        """Register (or replace) a named scenario tree and return its
        (freshly built) session."""
        if name in getattr(self, "_variants", {}):
            raise QuerySpecError(
                f"scenario name {name!r} is already a variant"
            )
        self._register(name, tree)
        return self.session(name)

    def add_variant(
        self,
        name: str,
        edits: Sequence[Any],
        base: str = DEFAULT_SCENARIO,
        probabilities: Optional[Mapping[str, float]] = None,
    ) -> AnalysisSession:
        """Register a copy-on-write variant scenario and return its
        session (forked from the — possibly just-built — base session).

        Equivalent to a ``variants:`` entry in a query file: ``edits``
        is a :mod:`repro.ft.edits` edit script applied to the ``base``
        scenario's tree; the session shares the base kernel.
        """
        definition: Dict[str, Any] = {"base": base, "edits": list(edits)}
        if probabilities is not None:
            definition["probabilities"] = dict(probabilities)
        self._register_variant(name, definition)
        return self.session(name)

    def _register_variant(
        self, name: str, definition: Mapping[str, Any]
    ) -> None:
        """Validate and record one variant definition; its tree is
        materialised now (cheap — pure tree surgery, no BDD work) so
        queries, probability validation and the shard planner's cost
        model can treat the variant as an ordinary scenario."""
        from ..ft.edits import apply_edits, edits_from_any

        if not isinstance(definition, Mapping):
            raise QuerySpecError(
                f"variant {name!r}: definition must be a mapping with "
                "an 'edits' key"
            )
        unknown = set(definition) - {"base", "edits", "probabilities"}
        if unknown:
            raise QuerySpecError(
                f"variant {name!r}: unknown field(s) "
                + ", ".join(sorted(unknown))
            )
        base = str(definition.get("base", DEFAULT_SCENARIO))
        if base in self._variants:
            raise QuerySpecError(
                f"variant {name!r}: base {base!r} is itself a variant "
                "(variants must fork from a registered tree scenario)"
            )
        if base not in self._trees:
            raise QuerySpecError(
                f"variant {name!r}: unknown base scenario {base!r} "
                f"(registered: {', '.join(sorted(self._trees)) or 'none'})"
            )
        if name in self._trees:
            raise QuerySpecError(
                f"variant name {name!r} is already a scenario"
            )
        if "edits" not in definition:
            raise QuerySpecError(f"variant {name!r}: missing 'edits'")
        try:
            edits = edits_from_any(definition["edits"])
            tree = apply_edits(self._trees[base], edits)
        except ReproError as exc:
            raise QuerySpecError(f"variant {name!r}: {exc}") from exc
        probabilities = definition.get("probabilities")
        if probabilities is not None and not isinstance(
            probabilities, Mapping
        ):
            raise QuerySpecError(
                f"variant {name!r}: 'probabilities' must be a mapping"
            )
        self._trees[name] = tree
        self._sessions.pop(name, None)
        self._variants[name] = {
            "base": base,
            "edits": tuple(edits),
            "probabilities": dict(probabilities or {}),
        }

    @property
    def variant_bases(self) -> Dict[str, str]:
        """Variant name -> base scenario name (for the shard planner:
        variants are grouped — and their cost discounted — with their
        base, whose warm kernel they fork)."""
        return {
            name: definition["base"]
            for name, definition in self._variants.items()
        }

    def _register(self, name: str, tree: FaultTree) -> None:
        """Record a scenario tree; the session is built lazily.

        A kernel snapshot registered for ``name`` is validated *now* —
        shape and tree fingerprint — so a stale or foreign snapshot
        raises :class:`~repro.errors.SnapshotError` at construction
        time instead of answering queries from the wrong BDDs later.
        """
        self._validated_kernel(name, tree)
        self._trees[name] = tree
        self._sessions.pop(name, None)

    def _validated_kernel(
        self, name: str, tree: FaultTree
    ) -> Optional[Mapping[str, Any]]:
        """The kernel snapshot registered for ``name`` (or None), after
        shape and fingerprint validation.  The fingerprint is mandatory:
        an entry that cannot prove which tree it was built from must not
        warm-start anything."""
        snapshot = self._snapshots.get(name)
        if snapshot is None:
            return None
        if (
            not isinstance(snapshot, Mapping)
            or "kernel" not in snapshot
            or "tree" not in snapshot
        ):
            raise SnapshotError(
                f"scenario {name!r}: snapshot entries need 'kernel' and "
                "'tree' (fingerprint) keys"
            )
        if snapshot["tree"] != tree_fingerprint(tree):
            raise SnapshotError(
                f"scenario {name!r}: snapshot was taken from a "
                "different tree (fingerprint mismatch)"
            )
        return snapshot["kernel"]

    def _build_session(self, name: str) -> AnalysisSession:
        # The warm-start / degrade-to-cold protocol lives in
        # repro.service.pool.build_session so the analysis server's
        # session pool and one-shot batteries share it by construction.
        from .pool import build_session

        tree = self._trees[name]
        kwargs: Dict[str, Any] = dict(
            scope=self._scope,
            monotone_fast_path=self._monotone_fast_path,
            auto_gc=self._auto_gc,
            auto_reorder=self._auto_reorder,
            gc_trigger=self._gc_trigger,
            reorder_trigger=self._reorder_trigger,
            probabilities=self._overrides_for(name, tree),
        )
        snapshot = self._validated_kernel(name, tree)
        session, warm = build_session(
            name,
            tree,
            snapshot=snapshot,
            warnings=self._warnings,
            **kwargs,
        )
        if snapshot is not None and not warm:
            # A corrupt cache entry must not be retried on the next
            # (lazy) build of this scenario.
            self._snapshots.pop(name, None)
        self._sessions[name] = session
        return session

    def _overrides_for(
        self, name: str, tree: FaultTree
    ) -> Dict[str, float]:
        """Resolve the probability overrides for one scenario (uniform
        floor, then flat entries, then the scenario-scoped map) — see
        :func:`repro.service.pool.resolve_overrides`, the shared rule."""
        from .pool import resolve_overrides

        return resolve_overrides(
            name, tree, self._probabilities, self._uniform
        )

    @property
    def scenarios(self) -> Tuple[str, ...]:
        """Registered scenario names."""
        return tuple(self._trees)

    @property
    def sessions(self) -> Dict[str, AnalysisSession]:
        """Scenario name -> *built* session (lazily-registered
        scenarios whose sessions were never needed are absent)."""
        return dict(self._sessions)

    def adopt_session(
        self, name: str, session: AnalysisSession
    ) -> AnalysisSession:
        """Install an externally held live session for scenario ``name``.

        This is the server's hot path: a pooled
        :class:`AnalysisSession` (warm kernel, warm caches) is adopted
        into a per-request analyzer so the battery runs against it
        instead of building a fresh session — and therefore answers
        exactly as a long-running sequential analyzer would.  The
        session's tree must match the registered scenario tree
        (fingerprint check), and variants cannot be adopted (they are
        always re-forked from their base's kernel).
        """
        if name in self._variants:
            raise QuerySpecError(
                f"scenario {name!r} is a variant — variant sessions are "
                "forked from their base, not adopted"
            )
        if name not in self._trees:
            raise QuerySpecError(
                f"unknown scenario {name!r} "
                f"(registered: {', '.join(sorted(self._trees)) or 'none'})"
            )
        if tree_fingerprint(session.tree) != tree_fingerprint(
            self._trees[name]
        ):
            raise SnapshotError(
                f"scenario {name!r}: adopted session was built from a "
                "different tree (fingerprint mismatch)"
            )
        self._sessions[name] = session
        return session

    @property
    def trees(self) -> Dict[str, FaultTree]:
        """Scenario name -> registered tree (no session is built)."""
        return dict(self._trees)

    def session(self, name: str = DEFAULT_SCENARIO) -> AnalysisSession:
        """The persistent session behind scenario ``name`` (built on
        first use; variant sessions are forked from their base's warm
        kernel rather than built from scratch)."""
        session = self._sessions.get(name)
        if session is not None:
            return session
        variant = self._variants.get(name)
        if variant is not None:
            base_session = self.session(variant["base"])
            # Resolve overrides exactly as a fresh build would (uniform
            # floor, flat entries, scenario-scoped map), then let the
            # variant definition's own probabilities win — so a variant
            # session answers PFL queries identically to a rebuilt one.
            overrides = self._overrides_for(name, self._trees[name])
            overrides.update(variant["probabilities"])
            session = base_session.fork_variant(
                name,
                variant["edits"],
                probabilities=overrides,
                tree=self._trees[name],
            )
            self._sessions[name] = session
            return session
        if name not in self._trees:
            raise QuerySpecError(
                f"unknown scenario {name!r} "
                f"(registered: {', '.join(sorted(self._trees)) or 'none'})"
            )
        return self._build_session(name)

    # ------------------------------------------------------------------
    # The batch pipeline
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Configured worker-process count (1 = in-process)."""
        return self._workers

    @property
    def shard_retries(self) -> int:
        """Parallel mode: resubmission budget per failed shard."""
        return self._shard_retries

    @property
    def retry_backoff_ms(self) -> float:
        """Parallel mode: base backoff before the first shard retry."""
        return self._retry_backoff_ms

    @property
    def watchdog_ms(self) -> Optional[float]:
        """Parallel mode: per-shard hang-detector budget (None = off)."""
        return self._watchdog_ms

    def run(
        self,
        queries: Iterable[Union[QuerySpec, str, Statement, Mapping[str, Any]]],
    ) -> BatchReport:
        """Answer a battery of queries.

        With ``workers == 1`` this is the in-process three-phase
        pipeline of the module docstring; with ``workers > 1`` the
        battery is sharded over a process pool (results merged back in
        battery order — see :mod:`repro.service.parallel`).
        """
        specs = specs_from_any(queries)
        if self._workers > 1 and len(specs) > 1:
            from .parallel import run_parallel

            return run_parallel(self, specs)
        return self._run_specs(specs)

    def prewarm_trees(self) -> None:
        """Translate every scenario's tree up front (``Psi_FT`` of the
        top event caches every element on the way), so
        :meth:`kernel_snapshots` — and the worker payloads built from
        the sessions — carry the full per-tree BDDs."""
        for name in self._trees:
            session = self.session(name)
            session.checker.translator.tree_translator.element(
                session.tree.top
            )

    def kernel_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Per-scenario kernel snapshots (plus tree fingerprints), in
        the shape the ``snapshots=`` constructor argument and the ``bfl
        batch --snapshot`` file expect.  Variant scenarios are omitted:
        their sessions share the base kernel and are re-forked from it
        in a few compose calls, so persisting a second copy of the node
        store would only bloat the snapshot file."""
        return {
            name: {
                "tree": tree_fingerprint(self._trees[name]),
                "kernel": self.session(name).kernel_snapshot(),
            }
            for name in self._trees
            if name not in self._variants
        }

    def _worker_config(self) -> Dict[str, Any]:
        """Picklable constructor kwargs for a worker-process clone.

        Sessions the parent has already warmed (explicit
        :meth:`prewarm_trees`, a snapshot warm start, or simply an
        earlier sequential batch) ship their element BDDs as kernel
        snapshots, so workers skip tree translation; scenarios whose
        sessions were never built forward the parent's own (already
        validated) snapshot entry, if any.
        """
        snapshots: Dict[str, Dict[str, Any]] = {}
        for name in self._trees:
            if name in self._variants:
                # Variant sessions share their base's kernel; workers
                # re-fork them from the base snapshot in-process, which
                # is cheaper than shipping a second copy of the store.
                continue
            session = self._sessions.get(name)
            if (
                session is not None
                and session.checker.translator.tree_translator.cached_elements
            ):
                # Worker payloads travel by pickle, so the binary v2
                # encoding applies: workers adopt the raw array columns
                # as buffers instead of decoding node lists.
                snapshots[name] = {
                    "tree": tree_fingerprint(session.tree),
                    "kernel": session.kernel_snapshot(binary=True),
                }
            elif name in self._snapshots:
                snapshots[name] = dict(self._snapshots[name])
        variants = {
            name: {
                "base": definition["base"],
                "edits": [edit.to_dict() for edit in definition["edits"]],
                "probabilities": dict(definition["probabilities"]),
            }
            for name, definition in self._variants.items()
        }
        return {
            "trees": {
                name: tree
                for name, tree in self._trees.items()
                if name not in self._variants
            },
            "scope": self._scope,
            "monotone_fast_path": self._monotone_fast_path,
            "auto_gc": self._auto_gc,
            "auto_reorder": self._auto_reorder,
            "gc_trigger": self._gc_trigger,
            "reorder_trigger": self._reorder_trigger,
            "probabilities": self._probabilities,
            "uniform": self._uniform,
            "snapshots": snapshots,
            "variants": variants,
            "workers": 1,
            # Per-query governance travels to the workers; the battery
            # deadline does too — each shard runs under it in parallel,
            # and the parent's shard watchdog backs it up.
            "deadline_ms": self._deadline_ms,
            "query_timeout_ms": self._query_timeout_ms,
        }

    @staticmethod
    def _zero_counters() -> Dict[str, Any]:
        """Baseline counters for a session first built *during* a batch
        (everything it has done, it has done for this batch)."""
        return {
            "formula_hits": 0,
            "formula_misses": 0,
            "element_requests": 0,
            "op": OperationCacheStats(),
            "parse_hits": 0,
            "parse_misses": 0,
        }

    def _battery_remaining_ms(self) -> Optional[float]:
        """Milliseconds left of the battery deadline (None = undated)."""
        if self._battery_deadline_at is None:
            return None
        return (self._battery_deadline_at - time.perf_counter()) * 1000.0

    def _query_budget_ms(self, spec: QuerySpec) -> Optional[float]:
        """Effective wall-clock budget for one query: its own
        ``timeout_ms`` (falling back to the analyzer default), clamped
        by whatever is left of the battery deadline."""
        timeout = (
            spec.timeout_ms
            if spec.timeout_ms is not None
            else self._query_timeout_ms
        )
        remaining = self._battery_remaining_ms()
        if timeout is None:
            return remaining
        if remaining is None:
            return timeout
        return min(timeout, remaining)

    def _error_result(
        self, spec: QuerySpec, message: str, kind: Optional[str]
    ) -> QueryResult:
        """A structured failure row for a query that never evaluated."""
        return QueryResult(
            id=spec.id,
            kind=spec.kind,
            tree=spec.tree,
            formula=(
                spec.formula if isinstance(spec.formula, str) else None
            ),
            ok=False,
            elapsed_ms=0.0,
            error=message,
            error_kind=kind,
        )

    def _run_specs(self, specs: List[QuerySpec]) -> BatchReport:
        """The in-process three-phase pipeline over normalised specs."""
        batch_start = time.perf_counter()
        if self._deadline_ms is not None:
            self._battery_deadline_at = (
                batch_start + self._deadline_ms / 1000.0
            )
        else:
            self._battery_deadline_at = None
        before = {
            name: session.snapshot() for name, session in self._sessions.items()
        }

        # Phase 1: parse everything up front.  Per-query errors are
        # (message, error_kind) pairs from here on.
        parse_start = time.perf_counter()
        parsed: List[
            Tuple[QuerySpec, Optional[Statement], Optional[Tuple[str, str]]]
        ] = []
        to_warm: Dict[str, List[Statement]] = {}
        seen: Dict[str, set] = {}
        #: (scenario, statement) -> tightest per-query budget among the
        #: queries that need it, so shared translation is governed by
        #: the most impatient dependent (plus the battery deadline).
        warm_timeout: Dict[Tuple[str, Statement], Optional[float]] = {}
        statement_count = 0
        for spec in specs:
            try:
                session = self.session(spec.tree)
                statements = self._statements_for(spec, session)
            except ReproError as error:
                parsed.append(
                    (spec, None, (str(error), error_kind(error)))
                )
                continue
            parsed.append((spec, statements[0] if statements else None, None))
            statement_count += len(statements)
            bucket = seen.setdefault(spec.tree, set())
            timeout = (
                spec.timeout_ms
                if spec.timeout_ms is not None
                else self._query_timeout_ms
            )
            for statement in statements:
                key = (spec.tree, statement)
                if statement not in bucket:
                    bucket.add(statement)
                    to_warm.setdefault(spec.tree, []).append(statement)
                    warm_timeout[key] = timeout
                elif timeout is not None:
                    prior = warm_timeout.get(key)
                    if prior is None or timeout < prior:
                        warm_timeout[key] = timeout
        parse_ms = (time.perf_counter() - parse_start) * 1000.0

        # Phase 2: shared translation, one Algorithm 1 run per distinct
        # statement per scenario — governed, so a pathological formula
        # cannot blow past the deadline while *building* its BDD.
        translate_start = time.perf_counter()
        translate_errors: Dict[Tuple[str, Statement], Tuple[str, str]] = {}
        for name, statements in to_warm.items():
            session = self._sessions[name]
            manager = session.checker.manager
            for statement in statements:
                timeout = warm_timeout.get((name, statement))
                remaining = self._battery_remaining_ms()
                budget = timeout
                if remaining is not None and (
                    budget is None or remaining < budget
                ):
                    budget = remaining
                if budget is not None and budget <= 0:
                    translate_errors[(name, statement)] = (
                        "battery deadline exceeded before translation",
                        QueryDeadlineError.kind,
                    )
                    continue
                if budget is not None:
                    manager.governor = Governor(
                        deadline_ms=budget, label=f"translate[{name}]"
                    ).start()
                try:
                    session.prewarm(statement)
                except ReproError as error:
                    translate_errors[(name, statement)] = (
                        str(error), error_kind(error)
                    )
                finally:
                    manager.governor = None
        translate_ms = (time.perf_counter() - translate_start) * 1000.0

        # Phase 3: evaluate each query against the warm caches.
        results: List[QueryResult] = []
        for spec, statement, error in parsed:
            if error is None and statement is not None:
                error = translate_errors.get((spec.tree, statement))
            if error is not None:
                message, kind = error
                results.append(self._error_result(spec, message, kind))
                continue
            remaining = self._battery_remaining_ms()
            if remaining is not None and remaining <= 0:
                # Budget spent: the battery still completes — every
                # unanswered query gets a structured deadline row.
                results.append(
                    self._error_result(
                        spec,
                        f"battery deadline of {self._deadline_ms:g} ms "
                        "exceeded before this query evaluated",
                        QueryDeadlineError.kind,
                    )
                )
                continue
            results.append(self._evaluate(spec, statement))
            # Query boundaries are safe points: results are plain Python
            # data by now, so dead intermediate BDDs may be reclaimed and
            # the order resifted before the next query.
            self._sessions[spec.tree].checker.manager.checkpoint()

        unique = sum(len(bucket) for bucket in seen.values())
        elapsed_ms = (time.perf_counter() - batch_start) * 1000.0
        stats: Dict[str, Any] = {
            "queries": {
                "total": len(specs),
                "errors": sum(1 for r in results if not r.ok),
                "statements": statement_count,
                "unique_statements": unique,
                "structural_dedup": statement_count - unique,
            },
            "phases": {
                "parse_ms": round(parse_ms, 3),
                "translate_ms": round(translate_ms, 3),
            },
            "scenarios": {
                name: self._scenario_stats(
                    self._sessions[name],
                    before.get(name, self._zero_counters()),
                )
                for name in sorted(seen)
            },
        }
        if self._warnings:
            # Structured degradation notes (snapshot integrity
            # fallbacks), drained per battery.
            stats["warnings"] = list(self._warnings)
            self._warnings = []
        return BatchReport(
            results=tuple(results), stats=stats, elapsed_ms=elapsed_ms
        )

    # Convenience wrappers -------------------------------------------------

    def check_many(
        self,
        formulas: Iterable[Union[str, Statement]],
        tree: str = DEFAULT_SCENARIO,
    ) -> List[Optional[bool]]:
        """Truth values for a battery of layer-2 checks (None on error)."""
        report = self.run(
            QuerySpec(id=f"q{i}", formula=formula, tree=tree)
            for i, formula in enumerate(formulas, start=1)
        )
        return [result.holds for result in report.results]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _statements_for(
        self, spec: QuerySpec, session: AnalysisSession
    ) -> List[Statement]:
        """The statement(s) a spec needs translated, from the query-kind
        registry (element names resolve inside the kind hooks, so
        MCS/MPS specs share the same cache entries as textual
        ``MCS(...)`` queries)."""
        return statements_for(spec, session)

    def _evaluate(
        self, spec: QuerySpec, statement: Optional[Statement]
    ) -> QueryResult:
        session = self._sessions[spec.tree]
        checker = session.checker
        start = time.perf_counter()
        fields: Dict[str, Any] = {}
        formula_text = (
            format_statement(statement) if statement is not None else None
        )
        error: Optional[str] = None
        kind: Optional[str] = None
        # Per-query governance: the spec's own timeout (or the analyzer
        # default), clamped by the battery deadline.  The governor is
        # removed in the finally below, so a trip never leaks into the
        # next query; its abort protocol leaves the kernel consistent.
        budget = self._query_budget_ms(spec)
        manager = checker.manager
        if budget is not None:
            manager.governor = Governor(
                deadline_ms=max(budget, 1e-3), label=f"query {spec.id}"
            ).start()
        if os.environ.get("REPRO_CHAOS"):
            from ..testing.chaos import governor_for

            tripper = governor_for(spec.id)
            if tripper is not None:
                manager.governor = tripper
        try:
            # One governed safe point at query start: catches a battery
            # deadline that expired between queries (and gives
            # budget-style governors a guaranteed tick even for queries
            # whose evaluation is served entirely from caches).
            if manager.governor is not None:
                manager._governed_point(manager.node_count())
            # One registry dispatch for every kind: promotion first (a
            # `check` whose formula parsed to P(...) / SYNTHESIZE(...)
            # is served by the specialised kind, so query files stay
            # kind-free), then the kind's execute hook.
            fields = execute_kind(session, spec, statement)
        except ReproError as exc:
            error = str(exc)
            kind = error_kind(exc)
        finally:
            manager.governor = None
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return QueryResult(
            id=spec.id,
            kind=spec.kind,
            tree=spec.tree,
            formula=formula_text,
            ok=error is None,
            elapsed_ms=elapsed_ms,
            error=error,
            error_kind=kind,
            **fields,
        )

    def _scenario_stats(
        self, session: AnalysisSession, before: Dict[str, Any]
    ) -> Dict[str, Any]:
        after = session.snapshot()
        op_delta = after["op"].delta(before["op"])
        op_delta["hits"] = after["op"].hits - before["op"].hits
        op_delta["misses"] = after["op"].misses - before["op"].misses
        manager = session.checker.manager
        kernel = manager.cache_stats()
        return {
            "translation": {
                "formula_hits": after["formula_hits"] - before["formula_hits"],
                "formula_misses": (
                    after["formula_misses"] - before["formula_misses"]
                ),
                "element_requests": (
                    after["element_requests"] - before["element_requests"]
                ),
            },
            "parse": {
                "hits": after["parse_hits"] - before["parse_hits"],
                "misses": after["parse_misses"] - before["parse_misses"],
            },
            "bdd": op_delta,
            "bdd_nodes": manager.node_count(),
            "bdd_peak_nodes": manager.peak_node_count(),
            # live unique-table entries (the terminal is stored outside it)
            "bdd_unique_table": kernel["unique_table_size"],
            # Open-addressed table health, surfaced in `bfl batch`
            # reports: capacity/probing behaviour of the unique table and
            # the lossy computed tables.  Collision/resize counters are
            # monotone for the manager's lifetime.
            "tables": {
                "unique": {
                    "capacity": kernel["unique_capacity"],
                    "entries": kernel["unique_table_size"],
                    "collisions": kernel["ut_collisions"],
                    "resizes": kernel["ut_resizes"],
                    "max_probe": kernel["ut_max_probe"],
                },
                "caches": {
                    "capacity": kernel["cache_capacity"],
                    "evictions": kernel["cache_evictions"],
                    "resizes": kernel["cache_resizes"],
                },
            },
            # Kernel memory management (garbage collection + in-place
            # reordering), surfaced in `bfl batch` reports.
            "memory": {
                "live_nodes": kernel["live_nodes"],
                "peak_live_nodes": kernel["peak_live_nodes"],
                "dead_nodes": kernel["dead_nodes"],
                "free_list": kernel["free_list"],
                "gc_runs": kernel["gc_runs"],
                "reclaimed": kernel["reclaimed"],
                # The weighted-evaluation cache shares the GC/reorder
                # lifecycle (dropped whenever indices can be reused).
                "prob_cache": kernel["prob_cache_size"],
            },
            "reorder": {
                "swaps": kernel["swaps"],
                "sift_runs": kernel["sift_runs"],
                "auto_reorders": kernel["auto_reorders"],
                "order": list(manager.variables),
            },
        }
