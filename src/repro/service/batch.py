"""The batch analyzer: answer many BFL queries against shared BDD state.

Where :class:`~repro.checker.engine.ModelChecker` answers one question at
a time, :class:`BatchAnalyzer` is the query-serving engine for batteries:

1. **Parse phase** — every query's DSL text is parsed up front, through a
   per-scenario text cache (identical texts parse once).
2. **Translate phase** — the *distinct* statements of each scenario are
   pushed through Algorithm 1 once.  The translation cache is keyed on
   formula *structure* (the AST nodes are frozen dataclasses), so two
   queries sharing a subformula — ``MCS(TLE) & H1`` and ``MCS(TLE) & H2``
   — build the expensive ``MCS(TLE)`` BDD a single time, and the cache
   persists across :meth:`BatchAnalyzer.run` calls.
3. **Evaluate phase** — each query is answered against the now-warm
   translator; per-query wall time therefore measures the *marginal*
   cost under sharing.

One :class:`AnalysisSession` (tree + :class:`ModelChecker` + caches) is
kept per scenario; all queries of a scenario run inside a single
:class:`~repro.bdd.manager.BDDManager`, whose apply/ITE memo tables the
whole battery amortises.  ``report.stats`` quantifies the effect with
cache hit/miss deltas for the batch.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..checker.engine import ModelChecker
from ..errors import ReproError
from ..ft.tree import FaultTree
from ..logic.ast_nodes import (
    MCS,
    MPS,
    SUP,
    Atom,
    Exists,
    Forall,
    Formula,
    IDP,
    ProbabilityQuery,
    Query,
    Statement,
)
from ..logic.parser import format_statement, parse_request
from ..logic.scope import MinimalityScope
from .queries import (
    DEFAULT_SCENARIO,
    BatchReport,
    QueryResult,
    QuerySpec,
    QuerySpecError,
    sets_view,
    specs_from_any,
)


class AnalysisSession:
    """Persistent per-scenario state: one tree, one checker, one manager.

    Attributes:
        name: Scenario name.
        checker: The wrapped :class:`ModelChecker` (its translator and
            BDD manager live as long as the session).
    """

    def __init__(
        self,
        name: str,
        tree: FaultTree,
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        order: Optional[Sequence[str]] = None,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
        probabilities: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.name = name
        self.checker = ModelChecker(
            tree,
            scope=scope,
            order=order,
            monotone_fast_path=monotone_fast_path,
            auto_gc=auto_gc,
            auto_reorder=auto_reorder,
            gc_trigger=gc_trigger,
            reorder_trigger=reorder_trigger,
        )
        self._parse_cache: Dict[str, Statement] = {}
        self.parse_hits = 0
        self.parse_misses = 0
        #: Statements already pushed through the translate phase (this is
        #: the *cross-batch* record; within-batch dedup happens in run()).
        self.warmed: set = set()
        #: Per-event probability overrides for PFL queries (the tree's
        #: own BasicEvent.probability attributes fill the gaps).
        self._prob_overrides: Dict[str, float] = dict(probabilities or {})
        self._prob_checker = None

    def prob_checker(self):
        """The scenario's :class:`~repro.prob.ProbabilityChecker`,
        created lazily on the *shared* translator so probabilistic and
        qualitative queries reuse one BDD manager (and its probability
        cache).  Lazy because resolving event probabilities raises when
        they are missing — a purely qualitative battery should never pay
        (or trip over) that.
        """
        if self._prob_checker is None:
            from ..prob.queries import ProbabilityChecker

            self._prob_checker = ProbabilityChecker(
                overrides=self._prob_overrides,
                translator=self.checker.translator,
            )
        return self._prob_checker

    @property
    def tree(self) -> FaultTree:
        return self.checker.tree

    def parse(self, formula: Union[str, Statement]) -> Statement:
        """DSL text -> AST, memoised on the exact text."""
        if not isinstance(formula, str):
            return formula
        text = formula.strip()
        cached = self._parse_cache.get(text)
        if cached is not None:
            self.parse_hits += 1
            return cached
        self.parse_misses += 1
        statement, _ = parse_request(text)
        self._parse_cache[text] = statement
        return statement

    def prewarm(self, statement: Statement) -> None:
        """Run Algorithm 1 for ``statement`` so evaluation only walks BDDs.

        Layer-2 queries translate their operand(s); IDP/SUP additionally
        need supports, which the evaluate phase derives from the same
        cached BDDs.
        """
        translator = self.checker.translator
        if isinstance(statement, Formula):
            translator.bdd(statement)
        elif isinstance(statement, (Exists, Forall)):
            translator.bdd(statement.operand)
        elif isinstance(statement, IDP):
            translator.bdd(statement.left)
            translator.bdd(statement.right)
        elif isinstance(statement, SUP):
            translator.bdd(Atom(statement.element))
            translator.bdd(Atom(self.tree.top))
        elif isinstance(statement, ProbabilityQuery):
            translator.bdd(statement.formula)
            if statement.condition is not None:
                translator.bdd(statement.condition)
        self.warmed.add(statement)

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative cache counters (used for per-batch deltas)."""
        translator = self.checker.translator
        return {
            "formula_hits": translator.stats.formula_hits,
            "formula_misses": translator.stats.formula_misses,
            "element_requests": translator.stats.element_requests,
            "op": self.checker.manager.op_stats.copy(),
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
        }


class BatchAnalyzer:
    """Serve batteries of BFL queries over one or more fault trees.

    Args:
        trees: A single tree (registered under the scenario name
            ``"default"``) or a mapping of scenario name -> tree.
        scope: MCS/MPS minimality scope, applied to every scenario.
        monotone_fast_path: Passed through to each translator.
        auto_gc: Arm automatic BDD garbage collection on every scenario's
            manager.  Long-lived sessions accumulate dead intermediate
            BDDs (primed relations, quantifier witnesses, ...); with GC
            armed they are reclaimed at query boundaries, holding peak
            live nodes near the steady-state working set (the soak gate
            in ``benchmarks/bench_reorder_gc.py`` pins this to < 2x).
        auto_reorder: Arm automatic in-place Rudell sifting on every
            scenario's manager.
        gc_trigger: Optional live-node count arming the first collection.
        reorder_trigger: Optional live-node count arming the first sift.
        probabilities: Per-event failure probabilities for PFL queries.
            Scalar-valued entries (``{event: p}``) apply to every
            scenario that has the event; Mapping-valued entries
            (``{scenario: {event: p}}``) scope their contents to that
            scenario and win over flat entries.  The two shapes may be
            mixed.  Gaps fall back to the trees' own
            ``BasicEvent.probability`` attributes.
        uniform: Uniform probability for every basic event of every
            scenario (explicit ``probabilities`` entries win).

    Example:
        >>> from repro.ft import figure1_tree
        >>> analyzer = BatchAnalyzer(figure1_tree())
        >>> report = analyzer.run(["exists CP/R", {"kind": "mcs"}])
        >>> [r.ok for r in report.results]
        [True, True]
    """

    def __init__(
        self,
        trees: Union[FaultTree, Mapping[str, FaultTree]],
        scope: MinimalityScope = MinimalityScope.SUPPORT,
        monotone_fast_path: bool = False,
        auto_gc: bool = False,
        auto_reorder: bool = False,
        gc_trigger: Optional[int] = None,
        reorder_trigger: Optional[int] = None,
        probabilities: Optional[Mapping[str, Any]] = None,
        uniform: Optional[float] = None,
    ) -> None:
        self._scope = scope
        self._monotone_fast_path = monotone_fast_path
        self._auto_gc = auto_gc
        self._auto_reorder = auto_reorder
        self._gc_trigger = gc_trigger
        self._reorder_trigger = reorder_trigger
        self._probabilities = dict(probabilities or {})
        self._uniform = uniform
        self._sessions: Dict[str, AnalysisSession] = {}
        if isinstance(trees, FaultTree):
            self.add_scenario(DEFAULT_SCENARIO, trees)
        else:
            for name, tree in trees.items():
                self.add_scenario(name, tree)
        if not self._sessions:
            raise QuerySpecError("BatchAnalyzer needs at least one tree")
        # Scenario-scoped probability maps must name a registered
        # scenario — a typo would otherwise silently run the battery
        # against the uniform floor / tree-attached probabilities.
        unknown = [
            key
            for key, value in self._probabilities.items()
            if isinstance(value, Mapping) and key not in self._sessions
        ]
        if unknown:
            raise QuerySpecError(
                "probability map(s) for unknown scenario(s): "
                + ", ".join(sorted(unknown))
                + " (registered: "
                + ", ".join(sorted(self._sessions))
                + ")"
            )
        # Likewise a flat entry no scenario's tree can use is a typo,
        # not a probability — per-scenario filtering would otherwise
        # drop it silently.
        known_events = {
            event
            for session in self._sessions.values()
            for event in session.tree.basic_events
        }
        stray = [
            key
            for key, value in self._probabilities.items()
            if not isinstance(value, Mapping) and key not in known_events
        ]
        if stray:
            raise QuerySpecError(
                "probabilities for event(s) unknown to every scenario: "
                + ", ".join(sorted(stray))
            )

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------

    def add_scenario(self, name: str, tree: FaultTree) -> AnalysisSession:
        """Register (or replace) a named scenario tree."""
        session = AnalysisSession(
            name,
            tree,
            scope=self._scope,
            monotone_fast_path=self._monotone_fast_path,
            auto_gc=self._auto_gc,
            auto_reorder=self._auto_reorder,
            gc_trigger=self._gc_trigger,
            reorder_trigger=self._reorder_trigger,
            probabilities=self._overrides_for(name, tree),
        )
        self._sessions[name] = session
        return session

    def _overrides_for(
        self, name: str, tree: FaultTree
    ) -> Dict[str, float]:
        """Resolve the probability overrides for one scenario: uniform
        floor, then flat entries, then the scenario's own map.

        The ``probabilities`` mapping may mix the two shapes: a
        Mapping-valued entry scopes its contents to that scenario (and
        wins), a scalar-valued entry is a flat per-event probability
        "applied to every scenario" — so events a particular tree does
        not have are simply not for it, while scenario-scoped maps stay
        strict (unknown event names surface as per-query
        ``MissingProbabilityError`` diagnostics).
        """
        overrides: Dict[str, float] = {}
        if self._uniform is not None:
            overrides = {
                event: float(self._uniform) for event in tree.basic_events
            }
        probs = self._probabilities
        overrides.update(
            {
                event: value
                for event, value in probs.items()
                if not isinstance(value, Mapping)
                and event in tree.basic_events
            }
        )
        scoped = probs.get(name)
        if isinstance(scoped, Mapping):
            overrides.update(scoped)
        return overrides

    @property
    def scenarios(self) -> Tuple[str, ...]:
        """Registered scenario names."""
        return tuple(self._sessions)

    def session(self, name: str = DEFAULT_SCENARIO) -> AnalysisSession:
        """The persistent session behind scenario ``name``."""
        try:
            return self._sessions[name]
        except KeyError:
            raise QuerySpecError(
                f"unknown scenario {name!r} "
                f"(registered: {', '.join(sorted(self._sessions)) or 'none'})"
            ) from None

    # ------------------------------------------------------------------
    # The batch pipeline
    # ------------------------------------------------------------------

    def run(
        self,
        queries: Iterable[Union[QuerySpec, str, Statement, Mapping[str, Any]]],
    ) -> BatchReport:
        """Answer a battery of queries; see the module docstring for the
        three-phase pipeline."""
        batch_start = time.perf_counter()
        specs = specs_from_any(queries)
        before = {
            name: session.snapshot() for name, session in self._sessions.items()
        }

        # Phase 1: parse everything up front.
        parse_start = time.perf_counter()
        parsed: List[Tuple[QuerySpec, Optional[Statement], Optional[str]]] = []
        to_warm: Dict[str, List[Statement]] = {}
        seen: Dict[str, set] = {}
        statement_count = 0
        for spec in specs:
            try:
                session = self.session(spec.tree)
                statements = self._statements_for(spec, session)
            except ReproError as error:
                parsed.append((spec, None, str(error)))
                continue
            parsed.append((spec, statements[0] if statements else None, None))
            statement_count += len(statements)
            bucket = seen.setdefault(spec.tree, set())
            for statement in statements:
                if statement not in bucket:
                    bucket.add(statement)
                    to_warm.setdefault(spec.tree, []).append(statement)
        parse_ms = (time.perf_counter() - parse_start) * 1000.0

        # Phase 2: shared translation, one Algorithm 1 run per distinct
        # statement per scenario.
        translate_start = time.perf_counter()
        translate_errors: Dict[Tuple[str, Statement], str] = {}
        for name, statements in to_warm.items():
            session = self._sessions[name]
            for statement in statements:
                try:
                    session.prewarm(statement)
                except ReproError as error:
                    translate_errors[(name, statement)] = str(error)
        translate_ms = (time.perf_counter() - translate_start) * 1000.0

        # Phase 3: evaluate each query against the warm caches.
        results: List[QueryResult] = []
        for spec, statement, error in parsed:
            if error is None and statement is not None:
                error = translate_errors.get((spec.tree, statement))
            if error is not None:
                results.append(
                    QueryResult(
                        id=spec.id,
                        kind=spec.kind,
                        tree=spec.tree,
                        formula=(
                            spec.formula
                            if isinstance(spec.formula, str)
                            else None
                        ),
                        ok=False,
                        elapsed_ms=0.0,
                        error=error,
                    )
                )
                continue
            results.append(self._evaluate(spec, statement))
            # Query boundaries are safe points: results are plain Python
            # data by now, so dead intermediate BDDs may be reclaimed and
            # the order resifted before the next query.
            self._sessions[spec.tree].checker.manager.checkpoint()

        unique = sum(len(bucket) for bucket in seen.values())
        elapsed_ms = (time.perf_counter() - batch_start) * 1000.0
        stats: Dict[str, Any] = {
            "queries": {
                "total": len(specs),
                "errors": sum(1 for r in results if not r.ok),
                "statements": statement_count,
                "unique_statements": unique,
                "structural_dedup": statement_count - unique,
            },
            "phases": {
                "parse_ms": round(parse_ms, 3),
                "translate_ms": round(translate_ms, 3),
            },
            "scenarios": {
                name: self._scenario_stats(session, before[name])
                for name, session in self._sessions.items()
                if name in seen
            },
        }
        return BatchReport(
            results=tuple(results), stats=stats, elapsed_ms=elapsed_ms
        )

    # Convenience wrappers -------------------------------------------------

    def check_many(
        self,
        formulas: Iterable[Union[str, Statement]],
        tree: str = DEFAULT_SCENARIO,
    ) -> List[Optional[bool]]:
        """Truth values for a battery of layer-2 checks (None on error)."""
        report = self.run(
            QuerySpec(id=f"q{i}", formula=formula, tree=tree)
            for i, formula in enumerate(formulas, start=1)
        )
        return [result.holds for result in report.results]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _statements_for(
        self, spec: QuerySpec, session: AnalysisSession
    ) -> List[Statement]:
        """The statement(s) a spec needs translated (element names are
        resolved here so MCS/MPS specs share the same cache entries as
        textual ``MCS(...)`` queries)."""
        if spec.kind == "mcs":
            target = spec.element if spec.element is not None else session.tree.top
            return [MCS(Atom(target))]
        if spec.kind == "mps":
            target = spec.element if spec.element is not None else session.tree.top
            return [MPS(Atom(target))]
        statements = [session.parse(spec.formula)]
        if spec.kind == "probability":
            statement = statements[0]
            if isinstance(statement, Formula):
                # A bare layer-1 formula means "compute P(formula)"; the
                # wrapper is a frozen dataclass, so structural dedup with
                # explicit P(...) texts still applies.
                statements = [ProbabilityQuery(formula=statement)]
            elif not isinstance(statement, ProbabilityQuery):
                raise QuerySpecError(
                    f"query {spec.id!r}: kind 'probability' needs a "
                    "layer-1 formula or a P(...) query"
                )
        if spec.kind == "independence":
            statements.append(session.parse(spec.other))
        return statements

    def _evaluate(
        self, spec: QuerySpec, statement: Optional[Statement]
    ) -> QueryResult:
        session = self._sessions[spec.tree]
        checker = session.checker
        start = time.perf_counter()
        holds = sets = vector_count = counterexample = independence = None
        probability = condition_probability = None
        formula_text = (
            format_statement(statement) if statement is not None else None
        )
        error: Optional[str] = None
        try:
            if isinstance(statement, ProbabilityQuery) and spec.kind in (
                "check", "probability"
            ):
                # A `check` whose formula parsed to P(...) is served as a
                # probabilistic query, so query files stay kind-free.
                if spec.failed is not None or spec.bits is not None:
                    raise QuerySpecError(
                        f"query {spec.id!r}: probabilistic queries "
                        "measure over all vectors; do not pass "
                        "failed=/bits= (use evidence or conditioning "
                        "inside P(...) instead)"
                    )
                outcome = session.prob_checker().evaluate(statement)
                probability = outcome.value
                holds = outcome.holds
                condition_probability = outcome.condition_probability
            elif spec.kind == "check":
                # ModelChecker.check rejects a vector on a layer-2 query
                # and a missing vector on a layer-1 formula; pass the
                # spec's vector through so those diagnostics surface.
                holds = checker.check(
                    statement,
                    failed=(
                        list(spec.failed) if spec.failed is not None else None
                    ),
                    bits=list(spec.bits) if spec.bits is not None else None,
                )
            elif spec.kind == "satisfaction-set":
                satset = checker.satisfaction_set(statement)
                vector_count = len(satset)
                holds = bool(satset)
                sets = sets_view(
                    satset.operational_sets()
                    if spec.view == "operational"
                    else satset.failed_sets()
                )
            elif spec.kind == "mcs":
                sets = sets_view(
                    checker.minimal_cut_sets(spec.element)
                )
            elif spec.kind == "mps":
                sets = sets_view(
                    checker.minimal_path_sets(spec.element)
                )
            elif spec.kind == "counterexample":
                cex = checker.counterexample(
                    statement,
                    failed=(
                        list(spec.failed) if spec.failed is not None else None
                    ),
                    bits=list(spec.bits) if spec.bits is not None else None,
                    method=spec.method,
                )
                counterexample = {
                    "original": dict(cex.original),
                    "vector": dict(cex.vector),
                    "changed": list(cex.changed),
                    "def7_compliant": cex.def7_compliant,
                }
            elif spec.kind == "independence":
                result = checker.independence(
                    statement, session.parse(spec.other)
                )
                holds = result.independent
                independence = {
                    "independent": result.independent,
                    "shared": sorted(result.shared),
                    "left_influencers": sorted(result.left_influencers),
                    "right_influencers": sorted(result.right_influencers),
                }
        except ReproError as exc:
            error = str(exc)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return QueryResult(
            id=spec.id,
            kind=spec.kind,
            tree=spec.tree,
            formula=formula_text,
            ok=error is None,
            elapsed_ms=elapsed_ms,
            holds=holds,
            sets=sets,
            vector_count=vector_count,
            counterexample=counterexample,
            independence=independence,
            probability=probability,
            condition_probability=condition_probability,
            error=error,
        )

    def _scenario_stats(
        self, session: AnalysisSession, before: Dict[str, Any]
    ) -> Dict[str, Any]:
        after = session.snapshot()
        op_delta = after["op"].delta(before["op"])
        op_delta["hits"] = after["op"].hits - before["op"].hits
        op_delta["misses"] = after["op"].misses - before["op"].misses
        manager = session.checker.manager
        kernel = manager.cache_stats()
        return {
            "translation": {
                "formula_hits": after["formula_hits"] - before["formula_hits"],
                "formula_misses": (
                    after["formula_misses"] - before["formula_misses"]
                ),
                "element_requests": (
                    after["element_requests"] - before["element_requests"]
                ),
            },
            "parse": {
                "hits": after["parse_hits"] - before["parse_hits"],
                "misses": after["parse_misses"] - before["parse_misses"],
            },
            "bdd": op_delta,
            "bdd_nodes": manager.node_count(),
            "bdd_peak_nodes": manager.peak_node_count(),
            # node store == unique table + the one stored terminal
            "bdd_unique_table": manager.node_count() - 1,
            # Kernel memory management (garbage collection + in-place
            # reordering), surfaced in `bfl batch` reports.
            "memory": {
                "live_nodes": kernel["live_nodes"],
                "peak_live_nodes": kernel["peak_live_nodes"],
                "dead_nodes": kernel["dead_nodes"],
                "free_list": kernel["free_list"],
                "gc_runs": kernel["gc_runs"],
                "reclaimed": kernel["reclaimed"],
                # The weighted-evaluation cache shares the GC/reorder
                # lifecycle (dropped whenever indices can be reused).
                "prob_cache": kernel["prob_cache_size"],
            },
            "reorder": {
                "swaps": kernel["swaps"],
                "sift_runs": kernel["sift_runs"],
                "auto_reorders": kernel["auto_reorders"],
                "order": list(manager.variables),
            },
        }
