"""Sharded multi-process batch execution.

The batch layer's workload is embarrassingly parallel: queries of a
battery are independent (each is answered purely from its scenario's
BDDs), and fault-tree BDD work parallelises naturally across trees and
scenarios.  This module turns :class:`~repro.service.batch.BatchAnalyzer`
into a multi-process engine in three deterministic steps:

1. **Shard planning** (:func:`plan_shards`) — queries are grouped by
   scenario (locality: one worker translates a tree once and amortises
   it over every query it owns), the groups are split until there is
   enough parallel slack, and the resulting chunks are packed into
   ``shard_count`` balanced shards by longest-processing-time-first
   placement over a cost model seeded from formula size and tree node
   counts (:func:`estimate_cost`).  The plan is a pure function of the
   battery — no randomness, no timing feedback — so reruns shard
   identically.

2. **Worker pool with bounded retry** (:func:`run_parallel`) — a
   :class:`concurrent.futures.ProcessPoolExecutor` whose initializer
   builds one private ``BatchAnalyzer`` (and therefore one private
   :class:`~repro.bdd.manager.BDDManager` per scenario) in every worker
   process; nothing is shared, nothing needs locking.  Workers can be
   warm-started from portable kernel snapshots
   (``BDDManager.save_snapshot``) shipped in the worker payload, so they
   skip per-scenario ``Psi_FT`` translation entirely.  A shard whose
   worker dies (crash, or a hang caught by the per-shard watchdog) is
   *resubmitted* to a freshly spawned pool — up to
   ``BatchAnalyzer(shard_retries=...)`` times, with exponential backoff
   — because one dead process must not permanently cost its queries.
   Worker-side exceptions travel back as picklable
   :class:`ShardFailure` records carrying the worker's own traceback,
   so crashes stay diagnosable from the merged report.

3. **Deterministic merge** (:func:`merge_reports`) — per-shard reports
   are stitched back in original battery order (query-for-query
   identical to a sequential run, timing aside), per-query errors such
   as ``ZeroProbabilityEvidenceError`` stay attached to their query, a
   shard that exhausted its retries surfaces as per-query ``worker
   shard failed`` errors with a structured ``error_kind`` rather than
   poisoning the batch, and stats are aggregated (counters summed,
   peaks maxed, a ``parallel`` block describing the plan, per-shard
   attempts and outcomes).

Fault injection for all of the above lives in
:mod:`repro.testing.chaos`: with the ``REPRO_CHAOS`` environment
variable set, workers consult the (deterministic, seedable) chaos plan
at shard start — the hook that lets the chaos gate kill workers
mid-shard and delay shards without any test-only branches elsewhere.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine import REGISTRY
from ..errors import SnapshotError, WorkerCrashError, error_kind
from ..ft.tree import FaultTree
from ..logic.parser import format_statement
from .queries import BatchReport, QueryResult, QuerySpec

#: Ceiling on the exponential shard-retry backoff.
_MAX_BACKOFF_MS = 5000.0

#: Marker / version of the multi-scenario snapshot-set file written by
#: ``bfl batch --snapshot`` (one kernel snapshot per scenario, each
#: paired with a tree fingerprint so a stale file fails loudly).
SNAPSHOT_SET_FORMAT = "repro-service-snapshots"
SNAPSHOT_SET_VERSION = 1

# ----------------------------------------------------------------------
# Cost model and shard planning
# ----------------------------------------------------------------------


#: Cost discount for queries against a copy-on-write variant scenario:
#: the fork shares the warm base kernel and splices one compose result,
#: so the per-query tree cost is a fraction of a cold build's.
_VARIANT_DISCOUNT = 0.25


def estimate_cost(
    spec: QuerySpec,
    tree: Optional[FaultTree],
    warm_variant: bool = False,
) -> float:
    """Relative cost estimate for one query (shard-balancing heuristic).

    Seeded from the two observables that dominate real batteries: the
    *tree size* (every BDD the query touches is built over the tree's
    events and gates) and the *formula size* (longer formulae mean more
    Algorithm 1 recursion and more BDD products), scaled by the query
    kind's registry weight (MCS/MPS and the satisfaction sets built on
    them run the primed-relation minimisation machinery; checks and
    probability queries mostly walk existing BDDs).  A kind may further
    scale its estimate with a ``cost_factor`` hook — a ``synthesize``
    candidate sweep grows linearly with its set count, so the planner
    spreads wide sweeps across workers.  ``warm_variant`` marks queries
    against a copy-on-write variant of a warm base tree, whose
    translation is nearly free — the tree term is discounted so the
    packer does not scatter cheap variant sweeps across workers that
    then each rebuild the base.  Only relative magnitudes matter — the
    planner packs shards, it does not predict milliseconds.
    """
    if tree is None:  # unknown scenario: errors out cheaply at parse time
        return 1.0
    tree_weight = 1 + len(tree.basic_events) + len(tree.gate_names)
    if warm_variant:
        tree_weight = max(1.0, tree_weight * _VARIANT_DISCOUNT)
    formula = spec.formula
    if formula is None:  # mcs/mps specs: the whole cost is the tree's
        text = "MCS()"
    elif isinstance(formula, str):
        text = formula
    else:
        text = format_statement(formula)
    formula_weight = 1.0 + len(text) / 16.0
    if "MCS(" in text or "MPS(" in text:
        # Textual minimisation operators run the same machinery the
        # mcs/mps kinds do, whatever the spec's kind says.
        formula_weight *= 2.0
    cost = REGISTRY.weight(spec.kind, 1.0) * tree_weight * formula_weight
    if spec.kind in REGISTRY:
        factor = REGISTRY.get(spec.kind).cost_factor
        if factor is not None:
            cost *= factor(spec)
    return cost


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a battery.

    Attributes:
        indices: Original battery positions, ascending (the merge key).
        specs: The queries at those positions, same order.
        cost: Summed :func:`estimate_cost` of the members.
        scenarios: Distinct scenario names touched, first-seen order.
    """

    indices: Tuple[int, ...]
    specs: Tuple[QuerySpec, ...]
    cost: float
    scenarios: Tuple[str, ...]


def _split_chunk(
    chunk: List[Tuple[int, QuerySpec, float]],
) -> List[List[Tuple[int, QuerySpec, float]]]:
    """Split one chunk into two balanced halves (greedy LPT over its
    queries, deterministic tie-breaks), original order restored inside
    each half."""
    halves: List[List[Tuple[int, QuerySpec, float]]] = [[], []]
    loads = [0.0, 0.0]
    for entry in sorted(chunk, key=lambda e: (-e[2], e[0])):
        side = 0 if loads[0] <= loads[1] else 1
        halves[side].append(entry)
        loads[side] += entry[2]
    return [sorted(half, key=lambda e: e[0]) for half in halves if half]


def plan_shards(
    specs: Sequence[QuerySpec],
    trees: Mapping[str, FaultTree],
    shard_count: int,
    variant_bases: Optional[Mapping[str, str]] = None,
) -> List[Shard]:
    """Partition a battery into at most ``shard_count`` balanced shards.

    Scenario-grouped chunks are split (largest first) until there are
    about two chunks per shard — enough slack for the packer to balance
    without scattering a scenario across every worker — then packed
    longest-first onto the least-loaded shard.  Every tie is broken by
    battery position, so the plan is deterministic.

    Args:
        specs: The normalised battery (original order).
        trees: Scenario name -> tree, for the cost model; queries naming
            an unknown scenario (which error out at parse time) get a
            nominal cost.
        shard_count: Upper bound on shards (empty shards are dropped).
        variant_bases: Variant scenario -> base scenario.  Variant
            queries are grouped into their *base's* chunk (a worker that
            owns the base forks its variants from the warm kernel) and
            their cost is discounted accordingly.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    bases = dict(variant_bases or {})
    entries = [
        (
            index,
            spec,
            estimate_cost(
                spec, trees.get(spec.tree), warm_variant=spec.tree in bases
            ),
        )
        for index, spec in enumerate(specs)
    ]
    groups: Dict[str, List[Tuple[int, QuerySpec, float]]] = {}
    for entry in entries:
        groups.setdefault(
            bases.get(entry[1].tree, entry[1].tree), []
        ).append(entry)
    chunks = list(groups.values())

    target = min(2 * shard_count, len(entries))
    while len(chunks) < target:
        # Largest splittable chunk first; position tie-break.
        splittable = [c for c in chunks if len(c) > 1]
        if not splittable:
            break
        victim = max(
            splittable, key=lambda c: (sum(e[2] for e in c), -c[0][0])
        )
        chunks.remove(victim)
        chunks.extend(_split_chunk(victim))

    bins: List[List[Tuple[int, QuerySpec, float]]] = [
        [] for _ in range(shard_count)
    ]
    loads = [0.0] * shard_count
    for chunk in sorted(
        chunks, key=lambda c: (-sum(e[2] for e in c), c[0][0])
    ):
        side = min(range(shard_count), key=lambda b: (loads[b], b))
        bins[side].extend(chunk)
        loads[side] += sum(e[2] for e in chunk)

    shards: List[Shard] = []
    for members in bins:
        if not members:
            continue
        members.sort(key=lambda e: e[0])
        scenarios: List[str] = []
        for _, spec, _ in members:
            if spec.tree not in scenarios:
                scenarios.append(spec.tree)
        shards.append(
            Shard(
                indices=tuple(e[0] for e in members),
                specs=tuple(e[1] for e in members),
                cost=sum(e[2] for e in members),
                scenarios=tuple(scenarios),
            )
        )
    # Stable presentation order: by first battery position.
    shards.sort(key=lambda s: s.indices[0])
    return shards


# ----------------------------------------------------------------------
# Worker pool with bounded retry
# ----------------------------------------------------------------------

#: Per-process analyzer, built once by the pool initializer.  Module
#: global on purpose: ``ProcessPoolExecutor`` initializers cannot return
#: state, and each worker process owns exactly one analyzer (and thus
#: one BDD manager per scenario).
_WORKER_ANALYZER = None


@dataclass(frozen=True)
class ShardFailure:
    """Picklable record of one shard attempt that produced no report.

    Attributes:
        message: Human-readable failure description (becomes the
            per-query ``worker shard failed: ...`` error text).
        kind: Structured ``error_kind`` discriminator — usually
            ``"worker-crash"``; a worker-side exception keeps its own
            kind (e.g. ``"resource-limit"``).
        traceback_text: The worker-side traceback when a Python frame
            was there to capture one (None for hard crashes and
            watchdog expiries).
    """

    message: str
    kind: str = WorkerCrashError.kind
    traceback_text: Optional[str] = None


def _worker_init(payload: Dict[str, Any]) -> None:
    """Pool initializer: build this process's private analyzer."""
    global _WORKER_ANALYZER
    from .batch import BatchAnalyzer

    _WORKER_ANALYZER = BatchAnalyzer(**payload)


def _worker_run(
    specs: Sequence[QuerySpec],
) -> Union[BatchReport, ShardFailure]:
    """Answer one shard inside the worker's private analyzer.

    Never raises: an exception escaping the batch pipeline (which
    already converts per-query ``ReproError`` failures into result
    rows) is a worker-side defect, and re-raising it would hand the
    parent a pickled exception *without* the worker's stack.  It is
    captured here — traceback and all — as a :class:`ShardFailure` the
    merge can report structurally.
    """
    if os.environ.get("REPRO_CHAOS"):
        # Fault injection (tests / chaos gate only — one env check in
        # production).  May sleep, or kill this process outright.
        from ..testing.chaos import on_shard_start

        on_shard_start([spec.id for spec in specs])
    try:
        return _WORKER_ANALYZER._run_specs(list(specs))
    except Exception as exc:
        return ShardFailure(
            message=f"{type(exc).__name__}: {exc}",
            kind=error_kind(exc),
            traceback_text=traceback.format_exc(),
        )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly end a pool that still owns hung workers.

    ``shutdown(wait=True)`` would block on the hung process, so the
    workers are terminated first (private attribute, guarded — worst
    case the interpreter falls back to a blocking shutdown)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_parallel(analyzer, specs: Sequence[QuerySpec]) -> BatchReport:
    """Execute a normalised battery across ``analyzer.workers`` processes.

    Called by :meth:`BatchAnalyzer.run` when ``workers > 1``; falls back
    to the in-process pipeline when the plan degenerates to one shard.
    The parent analyzer's sessions are never touched — each worker
    reconstructs its own from the (picklable) trees, configuration and
    any kernel snapshots the parent has to offer.

    Failure handling is a bounded-retry state machine.  Each round
    submits every still-unanswered shard to a *fresh* pool (a crashed
    worker breaks its whole ``ProcessPoolExecutor``, so pools are
    per-round disposables):

    * a shard whose worker crashed (``BrokenProcessPool``) or whose
      result did not arrive within ``analyzer.watchdog_ms`` is marked
      failed and re-queued;
    * a shard that returned a :class:`ShardFailure` (worker-side
      exception, traceback attached) is likewise re-queued;
    * after ``analyzer.shard_retries`` re-submissions — with
      exponentially growing backoff in between — whatever is still
      failing is reported as structured per-query errors, and every
      other shard's results stand.
    """
    start = time.perf_counter()
    trees = analyzer.trees
    shard_count = max(1, min(analyzer.workers, len(specs)))
    shards = plan_shards(
        specs, trees, shard_count, variant_bases=analyzer.variant_bases
    )
    if len(shards) <= 1:
        return analyzer._run_specs(list(specs))

    payload = analyzer._worker_config()
    retries = getattr(analyzer, "shard_retries", 0)
    backoff_ms = getattr(analyzer, "retry_backoff_ms", 0.0)
    watchdog_ms = getattr(analyzer, "watchdog_ms", None)
    reports: List[Optional[BatchReport]] = [None] * len(shards)
    failures: List[Optional[ShardFailure]] = [None] * len(shards)
    attempts = [0] * len(shards)
    pending = list(range(len(shards)))
    for round_index in range(retries + 1):
        if round_index and backoff_ms:
            time.sleep(
                min(backoff_ms * 2 ** (round_index - 1), _MAX_BACKOFF_MS)
                / 1000.0
            )
        pool = ProcessPoolExecutor(
            max_workers=len(pending),
            initializer=_worker_init,
            initargs=(payload,),
        )
        hung = False
        try:
            submitted_at = time.monotonic()
            futures = {
                position: pool.submit(_worker_run, shards[position].specs)
                for position in pending
            }
            for position in pending:
                attempts[position] += 1
            still_failed: List[int] = []
            for position, future in futures.items():
                timeout = None
                if watchdog_ms is not None:
                    # Shards run concurrently, so each one's watchdog
                    # counts from pool submission, not from the end of
                    # its predecessor's wait.
                    timeout = max(
                        0.0,
                        submitted_at
                        + watchdog_ms / 1000.0
                        - time.monotonic(),
                    )
                try:
                    outcome = future.result(timeout=timeout)
                except FutureTimeoutError:
                    hung = True
                    failures[position] = ShardFailure(
                        message=(
                            "hung worker: no shard result within the "
                            f"{watchdog_ms:g} ms watchdog"
                        ),
                    )
                    still_failed.append(position)
                    continue
                except Exception as exc:
                    # Worker process died before returning anything
                    # (BrokenProcessPool and friends): no worker-side
                    # frame exists, so there is no traceback to ship.
                    failures[position] = ShardFailure(
                        message=f"{type(exc).__name__}: {exc}",
                    )
                    still_failed.append(position)
                    continue
                if isinstance(outcome, ShardFailure):
                    failures[position] = outcome
                    still_failed.append(position)
                else:
                    reports[position] = outcome
                    failures[position] = None
        finally:
            if hung:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
        pending = still_failed
        if not pending:
            break
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return merge_reports(
        specs,
        shards,
        reports,
        failures,
        analyzer.workers,
        elapsed_ms,
        attempts=attempts,
    )


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------

#: Scenario-stat leaves that describe a *state size* rather than an event
#: counter: across shards these are maxed, not summed (each worker has
#: its own manager; adding their table sizes would describe no machine).
_MAX_STAT_KEYS = frozenset(
    {
        "bdd_nodes",
        "bdd_peak_nodes",
        "bdd_unique_table",
        "live_nodes",
        "peak_live_nodes",
        "dead_nodes",
        "free_list",
        "prob_cache",
        # Open-addressed table health (per-manager sizes/watermarks):
        # adding capacities across shards would describe no machine.
        "capacity",
        "entries",
        "max_probe",
    }
)


def _merge_stat_dict(into: Dict[str, Any], new: Mapping[str, Any]) -> None:
    """Accumulate one shard's stat dict into ``into`` (recursive).

    Numbers are summed (they are per-batch counters), except the
    state-size keys in :data:`_MAX_STAT_KEYS`, which are maxed.
    Non-numeric leaves (e.g. the per-scenario variable ``order`` list)
    keep the first shard's value.
    """
    for key, value in new.items():
        if key not in into:
            if isinstance(value, Mapping):
                into[key] = {}
                _merge_stat_dict(into[key], value)
            else:
                into[key] = value
        elif isinstance(value, Mapping) and isinstance(into[key], dict):
            _merge_stat_dict(into[key], value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if key in _MAX_STAT_KEYS:
                into[key] = max(into[key], value)
            else:
                into[key] = round(into[key] + value, 3)
        # else: keep the first shard's value


def merge_reports(
    specs: Sequence[QuerySpec],
    shards: Sequence[Shard],
    reports: Sequence[Optional[BatchReport]],
    errors: Sequence[Optional[Union[str, ShardFailure]]],
    workers: int,
    elapsed_ms: float,
    attempts: Optional[Sequence[int]] = None,
) -> BatchReport:
    """Stitch per-shard reports into one battery-ordered report.

    Per-query ordering follows the original battery exactly; a failed
    shard contributes one ``ok=False`` result per member query (errors
    in place, never a lost query) carrying both the compatible ``worker
    shard failed: ...`` message and the structured ``error_kind``.
    Stats are aggregated with :func:`_merge_stat_dict` plus a
    ``parallel`` block recording the plan and per-shard outcomes
    (including retry attempts and any captured worker traceback).

    ``errors`` entries may be plain strings (legacy callers) or
    :class:`ShardFailure` records; ``attempts`` optionally records how
    many times each shard was submitted (1 = first try succeeded).
    """
    merged: List[Optional[QueryResult]] = [None] * len(specs)
    shard_rows: List[Dict[str, Any]] = []
    stats: Dict[str, Any] = {
        "queries": {},
        "phases": {},
        "scenarios": {},
    }
    for position, (shard, report, error) in enumerate(
        zip(shards, reports, errors)
    ):
        row: Dict[str, Any] = {
            "shard": position,
            "queries": len(shard.indices),
            "cost": round(shard.cost, 3),
            "scenarios": list(shard.scenarios),
        }
        if attempts is not None:
            row["attempts"] = attempts[position]
            row["retried"] = attempts[position] > 1
        if error is not None:
            if isinstance(error, ShardFailure):
                message = error.message
                kind = error.kind
                if error.traceback_text:
                    row["traceback"] = error.traceback_text
            else:
                message = str(error)
                kind = WorkerCrashError.kind
            row["error"] = message
            row["error_kind"] = kind
            # The failed shard's queries still count: without this the
            # merged totals would claim a smaller, error-free battery.
            _merge_stat_dict(
                stats["queries"],
                {
                    "total": len(shard.indices),
                    "errors": len(shard.indices),
                },
            )
            for index in shard.indices:
                spec = specs[index]
                merged[index] = QueryResult(
                    id=spec.id,
                    kind=spec.kind,
                    tree=spec.tree,
                    formula=(
                        spec.formula
                        if isinstance(spec.formula, str)
                        else None
                    ),
                    ok=False,
                    elapsed_ms=0.0,
                    error=f"worker shard failed: {message}",
                    error_kind=kind,
                )
        else:
            row["elapsed_ms"] = round(report.elapsed_ms, 3)
            for index, result in zip(shard.indices, report.results):
                merged[index] = result
            _merge_stat_dict(stats["queries"], report.stats.get("queries", {}))
            _merge_stat_dict(stats["phases"], report.stats.get("phases", {}))
            _merge_stat_dict(
                stats["scenarios"], report.stats.get("scenarios", {})
            )
            # Structured degradation warnings (e.g. a corrupt snapshot
            # rebuilt from the tree) must survive the merge.
            for warning in report.stats.get("warnings", ()):
                stats.setdefault("warnings", []).append(warning)
        shard_rows.append(row)
    stats["parallel"] = {"workers": workers, "shards": shard_rows}
    return BatchReport(
        results=tuple(merged), stats=stats, elapsed_ms=elapsed_ms
    )


# ----------------------------------------------------------------------
# Snapshot-set persistence (the `bfl batch --snapshot` file format)
# ----------------------------------------------------------------------


def write_snapshot_file(
    path: str, snapshots: Mapping[str, Mapping[str, Any]]
) -> None:
    """Write a scenario -> kernel-snapshot set as one JSON file.

    ``snapshots`` is what :meth:`BatchAnalyzer.kernel_snapshots`
    returns: per scenario, a ``tree`` fingerprint plus the ``kernel``
    snapshot from ``BDDManager.save_snapshot``.
    """
    data = {
        "format": SNAPSHOT_SET_FORMAT,
        "version": SNAPSHOT_SET_VERSION,
        "scenarios": {name: dict(snap) for name, snap in snapshots.items()},
    }
    # Atomic replace: an interrupted run must never leave a truncated
    # file behind (the CLI treats an existing file as load-only, so a
    # half-written snapshot would wedge every later --snapshot run).
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_snapshot_file(path: str) -> Dict[str, Dict[str, Any]]:
    """Load a snapshot-set file back into the ``snapshots`` mapping
    :class:`BatchAnalyzer` accepts.

    Raises:
        SnapshotError: If the file is unreadable, not JSON, or not a
            snapshot set.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot file {path!r} is not valid JSON: {exc}"
        ) from exc
    if (
        not isinstance(data, dict)
        or data.get("format") != SNAPSHOT_SET_FORMAT
    ):
        raise SnapshotError(
            f"{path!r} is not a batch snapshot file "
            f"(expected format {SNAPSHOT_SET_FORMAT!r})"
        )
    if data.get("version") != SNAPSHOT_SET_VERSION:
        raise SnapshotError(
            f"unsupported snapshot-set version {data.get('version')!r}"
        )
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, dict):
        raise SnapshotError("snapshot file has no 'scenarios' mapping")
    return {str(name): snap for name, snap in scenarios.items()}
