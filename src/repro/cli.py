"""``bfl`` — command-line front end for the library.

Sub-commands::

    bfl check   --tree T.dft "forall (IS => MoT)"       model check
    bfl allsat  --tree T.dft "MCS(IWoS) & H4"           satisfaction set
    bfl mcs     --tree T.dft [--element MoT]            minimal cut sets
    bfl mps     --tree T.dft [--element MoT]            minimal path sets
    bfl cex     --tree T.dft "MCS(e1)" --bits 0,1,0     counterexample
    bfl synth   --tree T.dft "TLE" [--candidates a,b]   repair regions
    bfl show    --tree T.dft [--failed IW,H3]           ASCII rendering
    bfl dot     --tree T.dft [--failed IW,H3]           Graphviz export
    bfl batch   queries.json [--output report.json]     batch service run
    bfl batch   --list-kinds                            query-kind registry
    bfl serve   --port 8346 --store kernels/            analysis daemon
    bfl covid-report                                    Sec. VII analysis

``--tree covid`` (the default) loads the built-in COVID-19 tree of Fig. 2;
any other value is read as a Galileo file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import __version__
from .casestudy.covid import build_covid_tree
from .casestudy.report import render_report
from .checker.engine import ModelChecker
from .errors import ReproError
from .ft.galileo import load
from .ft.tree import FaultTree
from .logic.parser import parse_request
from .logic.scope import MinimalityScope
from .viz.ascii_tree import render_tree
from .viz.dot import tree_to_dot
from .viz.propagation import counterexample_view


def _load_tree(spec: str) -> FaultTree:
    if spec == "covid":
        return build_covid_tree()
    return load(spec)


def _split_names(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    return [name for name in (part.strip() for part in text.split(",")) if name]


def _parse_bits(text: Optional[str]) -> Optional[List[int]]:
    if text is None:
        return None
    return [int(part.strip()) for part in text.split(",")]


def _add_tree_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tree",
        default="covid",
        help="Galileo file, or 'covid' for the built-in Fig. 2 tree",
    )
    parser.add_argument(
        "--scope",
        choices=[scope.value for scope in MinimalityScope],
        default=MinimalityScope.SUPPORT.value,
        help="MCS/MPS minimality scope (see DESIGN.md)",
    )


def _add_vector_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--failed", help="comma-separated failed basic events"
    )
    parser.add_argument(
        "--bits", help="comma-separated 0/1 bits in declaration order"
    )


def _checker(args: argparse.Namespace) -> ModelChecker:
    return ModelChecker(
        _load_tree(args.tree), scope=MinimalityScope(args.scope)
    )


def _cmd_check(args: argparse.Namespace) -> int:
    checker = _checker(args)
    statement, satset = parse_request(args.formula)
    if satset:
        print(checker.satisfaction_set(statement).describe(view=args.view))
        return 0
    failed = _split_names(args.failed)
    bits = _parse_bits(args.bits)
    if failed is None and bits is None:
        result = checker.check(statement)
    else:
        result = checker.check(statement, failed=failed, bits=bits)
    print("holds" if result else "does NOT hold")
    return 0 if result else 1


def _cmd_allsat(args: argparse.Namespace) -> int:
    checker = _checker(args)
    statement, _ = parse_request(args.formula)
    print(checker.satisfaction_set(statement).describe(view=args.view))
    return 0


def _cmd_minimal_sets(args: argparse.Namespace, path_sets: bool) -> int:
    checker = _checker(args)
    if path_sets:
        sets = checker.minimal_path_sets(args.element)
        kind = "minimal path sets"
    else:
        sets = checker.minimal_cut_sets(args.element)
        kind = "minimal cut sets"
    target = args.element or checker.tree.top
    print(f"{len(sets)} {kind} for {target}:")
    for item in sets:
        print("  {" + ", ".join(sorted(item)) + "}")
    return 0


def _cmd_cex(args: argparse.Namespace) -> int:
    checker = _checker(args)
    statement, _ = parse_request(args.formula)
    cex = checker.counterexample(
        statement,
        failed=_split_names(args.failed),
        bits=_parse_bits(args.bits),
        method=args.method,
    )
    print(counterexample_view(checker.tree, cex))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    vector = None
    failed = _split_names(args.failed)
    if failed is not None:
        vector = tree.vector_from_failed(failed)
    print(render_tree(tree, vector, show_descriptions=args.descriptions))
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    tree = _load_tree(args.tree)
    vector = None
    failed = _split_names(args.failed)
    if failed is not None:
        vector = tree.vector_from_failed(failed)
    print(tree_to_dot(tree, vector, show_descriptions=args.descriptions))
    return 0


def _cmd_covid_report(_: argparse.Namespace) -> int:
    print(render_report())
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    """Must-1 / must-0 / don't-care repair regions for a property.

    The query routes through the query-kind registry exactly like a
    batch ``kind: "synthesize"`` entry, so the CLI, the batch service
    and ``ModelChecker.execute`` cannot drift apart.
    """
    import json

    checker = _checker(args)
    spec = {"id": "synth", "kind": "synthesize", "formula": args.formula}
    candidates = _split_names(args.candidates)
    if candidates:
        spec["candidates"] = candidates
    result = checker.execute(spec)
    if not result.ok:
        print(f"error: {result.error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0 if result.holds else 1
    regions = result.synthesis
    print(f"target: {result.formula}")
    if not regions["satisfiable"]:
        print("the property is unsatisfiable: no repair region exists")
        return 1
    def _fmt(names):
        return ", ".join(names) if names else "(none)"
    print(f"candidates: {_fmt(regions['candidates'])}")
    print(f"must fail (must-1): {_fmt(regions['must_1'])}")
    print(f"must be operational (must-0): {_fmt(regions['must_0'])}")
    print(f"don't care: {_fmt(regions['dont_care'])}")
    print(f"satisfying candidate configurations: {regions['choices']}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a query file through the batch service and emit a JSON report.

    Query-file format (JSON)::

        {
          "tree": "covid",                  // default scenario (optional)
          "trees": {"fig1": "fig1.dft"},    // extra named scenarios
          "scope": "support",
          "gc": true,                       // automatic BDD garbage collection
          "auto_reorder": false,            // automatic in-place sifting
          "workers": 4,                     // multi-process shard execution
          "snapshot": "kernels.json",       // kernel snapshot cache file
          "deadline_ms": 60000,             // whole-battery wall-clock budget
          "query_timeout_ms": 5000,         // default per-query budget
          "shard_retries": 2,               // crashed/hung shard resubmits
          "retry_backoff_ms": 250,          // base retry delay (doubles)
          "watchdog_ms": 30000,             // hung-worker detection
          "uniform": 0.1,                   // failure probability floor
          "probabilities": {"H1": 0.02},    // per-event (or per-scenario) map
          "variants": {                     // copy-on-write what-if scenarios
            "no-masks": {"base": "default", "edits": [
              {"op": "gate-swap", "gate": "MoT", "type": "and"},
              {"op": "weight-change", "event": "H1", "probability": 0.5}
            ]}
          },
          "queries": [
            {"id": "p1", "formula": "forall (IS => MoT)", "timeout_ms": 500},
            {"formula": "[[ MCS(MoT) & IS ]]"},
            {"kind": "mcs", "element": "MoT"},
            {"kind": "check", "formula": "MCS(TLE)", "failed": ["H1", "VW"]},
            {"kind": "mps", "tree": "fig1"},
            {"formula": "P(MoT | H1 & VW) >= 0.3"},
            {"kind": "probability", "formula": "MCS(IWoS) & H4"}
          ]
        }

    ``--workers N`` (or the file's ``workers`` key; the flag wins) fans
    the battery out over N worker processes.  ``--snapshot PATH`` warm
    starts from a kernel-snapshot file when it exists and creates it
    (after prewarming the scenario trees) when it does not, so the
    second run of a battery skips tree translation everywhere —
    including inside the workers.

    ``variants`` declares copy-on-write what-if scenarios: each entry
    names a base scenario (default ``"default"``) plus an edit script
    (``gate-swap`` / ``subtree-replace`` / ``event-add`` /
    ``event-remove`` / ``weight-change``, see :mod:`repro.ft.edits`)
    and optional probability overrides.  Queries target a variant by
    scenario name exactly like a tree from ``trees``; its session is
    forked from the warm base kernel instead of being rebuilt.
    ``--variants PATH`` merges another JSON file of such definitions on
    top of the query file's key (the file wins on name clashes).

    Exit code 0 when every query succeeded, 1 when any individual query
    errored (the report still lists all of them), 2 on a malformed file.
    """
    import json
    import os

    from .service import BatchAnalyzer, read_snapshot_file, write_snapshot_file
    from .service.queries import QuerySpecError

    if args.list_kinds:
        _print_kinds()
        return 0
    if args.queries is None:
        raise QuerySpecError(
            "bfl batch needs a query file (or --list-kinds)"
        )
    try:
        with open(args.queries, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise QuerySpecError(f"cannot read query file: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise QuerySpecError(
            f"query file {args.queries!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict) or "queries" not in data:
        raise QuerySpecError(
            "query file must be a JSON object with a 'queries' list"
        )

    extra_trees = data.get("trees", {})
    if not isinstance(extra_trees, dict):
        raise QuerySpecError(
            "'trees' must map scenario names to tree specs"
        )
    scenarios = {"default": _load_tree(data.get("tree", args.tree))}
    for name, spec in extra_trees.items():
        scenarios[name] = _load_tree(spec)
    try:
        scope = MinimalityScope(data.get("scope", args.scope))
    except ValueError as exc:
        raise QuerySpecError(
            f"unknown scope {data.get('scope')!r} (expected "
            + " or ".join(s.value for s in MinimalityScope)
            + ")"
        ) from exc

    # Memory-management knobs: CLI flags arm them; the query file can
    # also request them (either source wins, so saved batteries are
    # self-contained while ad-hoc runs stay one flag away).
    auto_gc = bool(data.get("gc", False)) or args.gc
    auto_reorder = bool(data.get("auto_reorder", False)) or args.auto_reorder
    def _require_probability(label: str, value: object) -> None:
        # bool is an int subclass: "uniform": true must not mean p = 1,
        # and a quoted "0.02" must fail here, not as a TypeError deep in
        # a per-query evaluation.
        if (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            or not 0.0 <= value <= 1.0
        ):
            raise QuerySpecError(
                f"{label} must be a probability in [0, 1], got {value!r}"
            )

    probabilities = data.get("probabilities", {})
    if not isinstance(probabilities, dict):
        raise QuerySpecError(
            "'probabilities' must map event (or scenario) names to "
            "probabilities"
        )
    for key, value in probabilities.items():
        if isinstance(value, dict):  # per-scenario map
            for event, p in value.items():
                _require_probability(
                    f"probability for {key!r}.{event!r}", p
                )
        else:
            _require_probability(f"probability for {key!r}", value)
    uniform = data.get("uniform")
    if args.uniform is not None:
        uniform = args.uniform
    if uniform is not None:
        _require_probability("'uniform'", uniform)

    # Parallel execution + snapshot warm start.  The CLI flag wins over
    # the query file's key, so saved batteries stay self-contained while
    # an ad-hoc run is one flag away.
    workers = args.workers if args.workers is not None else data.get("workers", 1)
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise QuerySpecError(
            f"'workers' must be an integer >= 1, got {workers!r}"
        )
    # Governance knobs follow the same CLI-flag-wins convention.
    def _governance_value(flag_value, key, kind, check, requirement):
        value = flag_value if flag_value is not None else data.get(key)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, kind):
            raise QuerySpecError(f"{key!r} must be {requirement}, got {value!r}")
        value = float(value) if kind == (int, float) else value
        if not check(value):
            raise QuerySpecError(f"{key!r} must be {requirement}, got {value!r}")
        return value

    query_timeout_ms = _governance_value(
        args.query_timeout, "query_timeout_ms", (int, float),
        lambda v: v > 0, "a positive duration in milliseconds",
    )
    deadline_ms = _governance_value(
        args.deadline, "deadline_ms", (int, float),
        lambda v: v > 0, "a positive duration in milliseconds",
    )
    shard_retries = _governance_value(
        args.shard_retries, "shard_retries", int,
        lambda v: v >= 0, "an integer >= 0",
    )
    retry_backoff_ms = _governance_value(
        args.retry_backoff, "retry_backoff_ms", (int, float),
        lambda v: v >= 0, "a non-negative duration in milliseconds",
    )
    watchdog_ms = _governance_value(
        args.watchdog, "watchdog_ms", (int, float),
        lambda v: v > 0, "a positive duration in milliseconds",
    )

    snapshot_path = args.snapshot or data.get("snapshot")
    if snapshot_path is not None and not isinstance(snapshot_path, str):
        raise QuerySpecError(
            f"'snapshot' must be a file path, got {snapshot_path!r}"
        )
    snapshots = None
    if snapshot_path and os.path.exists(snapshot_path):
        snapshots = read_snapshot_file(snapshot_path)

    variants = data.get("variants", {})
    if not isinstance(variants, dict):
        raise QuerySpecError(
            "'variants' must map variant names to definitions"
        )
    if args.variants:
        try:
            with open(args.variants, "r", encoding="utf-8") as handle:
                extra_variants = json.load(handle)
        except OSError as exc:
            raise QuerySpecError(
                f"cannot read variants file: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise QuerySpecError(
                f"variants file {args.variants!r} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(extra_variants, dict):
            raise QuerySpecError(
                "variants file must be a JSON object mapping variant "
                "names to definitions"
            )
        variants = {**variants, **extra_variants}

    analyzer = BatchAnalyzer(
        scenarios,
        scope=scope,
        auto_gc=auto_gc,
        auto_reorder=auto_reorder,
        probabilities=probabilities,
        uniform=uniform,
        workers=workers,
        snapshots=snapshots,
        variants=variants,
        deadline_ms=deadline_ms,
        query_timeout_ms=query_timeout_ms,
        **(
            {"shard_retries": shard_retries}
            if shard_retries is not None else {}
        ),
        **(
            {"retry_backoff_ms": retry_backoff_ms}
            if retry_backoff_ms is not None else {}
        ),
        watchdog_ms=watchdog_ms,
    )
    if snapshot_path and snapshots is None:
        # First run with a snapshot cache: translate the trees now so
        # this run's workers warm-start too, then persist for the next.
        analyzer.prewarm_trees()
        write_snapshot_file(snapshot_path, analyzer.kernel_snapshots())
    report = analyzer.run(data["queries"])
    rendered = report.to_json(indent=2 if args.pretty else None)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived analysis daemon (see docs/server.md).

    Scenarios are fixed at startup: ``--tree`` registers the
    ``default`` scenario and each ``--scenario NAME=TREE`` adds a named
    one.  Batteries arrive as JSON over HTTP (``POST /battery``, the
    ``bfl batch`` query-file format), sessions stay hot in an LRU pool,
    and ``--store DIR`` persists kernel snapshots so evicted or cold
    scenarios — and the next server process — warm-start instead of
    rebuilding.  SIGTERM/SIGINT drain gracefully.
    """
    from .service import AnalysisServer, ServerConfig
    from .service.queries import QuerySpecError

    trees = {"default": _load_tree(args.tree)}
    for item in args.scenario or []:
        name, sep, spec = item.partition("=")
        name = name.strip()
        if not sep or not name or not spec.strip():
            raise QuerySpecError(
                f"--scenario expects NAME=TREE, got {item!r}"
            )
        trees[name] = _load_tree(spec.strip())
    for label, value in (
        ("--deadline", args.deadline),
        ("--query-timeout", args.query_timeout),
        ("--rate-limit", args.rate_limit),
    ):
        if value is not None and not value > 0:
            raise QuerySpecError(f"{label} must be > 0, got {value!r}")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size,
        store_path=args.store,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        deadline_ms=args.deadline,
        query_timeout_ms=args.query_timeout,
        scope=MinimalityScope(args.scope),
        auto_gc=not args.no_gc,
        auto_reorder=args.auto_reorder,
        probabilities=_parse_probability(args.probabilities),
        uniform=args.uniform,
    )
    server = AnalysisServer(trees, config)

    def _ready(bound: "AnalysisServer") -> None:
        print(
            f"bfl serve: listening on http://{config.host}:{bound.port} "
            f"({len(trees)} scenario(s), pool={config.pool_size}, "
            f"store={args.store or 'off'})",
            flush=True,
        )

    server.run(ready=_ready)
    print("bfl serve: drained, exiting", flush=True)
    return 0


def _print_kinds() -> None:
    """``bfl batch --list-kinds``: the query-kind registry, one row per
    kind with its required spec fields (the single source of truth the
    batch service validates against)."""
    from .engine import REGISTRY

    width = max(len(kind.name) for kind in REGISTRY)
    for kind in REGISTRY:
        required = ", ".join(kind.required_fields()) or "-"
        optional = ", ".join(kind.accepts)
        line = f"{kind.name:<{width}}  requires: {required}"
        if optional:
            line += f"  accepts: {optional}"
        print(line)
        print(f"{'':<{width}}  {kind.summary}  [{kind.cli}]")


def _parse_probability(text: Optional[str]) -> dict:
    if not text:
        return {}
    overrides = {}
    for part in text.split(","):
        name, _, value = part.partition("=")
        overrides[name.strip()] = float(value)
    return overrides


def _cmd_importance(args: argparse.Namespace) -> int:
    from .prob import importance_table, render_importance_table

    tree = _load_tree(args.tree)
    overrides = _parse_probability(args.probabilities)
    if args.uniform is not None:
        overrides = {
            name: overrides.get(name, args.uniform)
            for name in tree.basic_events
        }
    rows = importance_table(tree, element=args.element, overrides=overrides)
    print(render_importance_table(rows))
    return 0


def _cmd_probability(args: argparse.Namespace) -> int:
    from .logic.ast_nodes import Formula, ProbabilityQuery
    from .logic.parser import parse
    from .prob import ProbabilityChecker

    tree = _load_tree(args.tree)
    overrides = _parse_probability(args.probabilities)
    if args.uniform is not None:
        overrides = {
            name: overrides.get(name, args.uniform)
            for name in tree.basic_events
        }
    checker = ProbabilityChecker(tree, overrides=overrides)
    statement = parse(args.query.strip())
    if isinstance(statement, ProbabilityQuery):
        outcome = checker.evaluate(statement)
        if outcome.condition_probability is not None:
            print(f"P(evidence) = {outcome.condition_probability:.6g}")
        if outcome.holds is None:
            print(f"P = {outcome.value:.6g}")
            return 0
        print(
            f"P = {outcome.value:.6g}; query "
            f"{'holds' if outcome.holds else 'does NOT hold'}"
        )
        return 0 if outcome.holds else 1
    if not isinstance(statement, Formula):
        print(
            "error: bfl prob expects a layer-1 formula or a P(...) query",
            file=sys.stderr,
        )
        return 2
    value = checker.probability(statement)
    print(f"P = {value:.6g}")
    return 0


def _cmd_modules(args: argparse.Namespace) -> int:
    from .ft.modules import modularization_report

    tree = _load_tree(args.tree)
    for line in modularization_report(tree):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="bfl",
        description="BFL: a logic to reason about fault trees (DSN 2022 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="model check a formula/query")
    _add_tree_option(p_check)
    _add_vector_options(p_check)
    p_check.add_argument("formula", help="BFL DSL text (or [[ ... ]])")
    p_check.add_argument(
        "--view", choices=["failed", "operational", "vectors"], default="failed"
    )
    p_check.set_defaults(handler=_cmd_check)

    p_allsat = sub.add_parser("allsat", help="all satisfying vectors")
    _add_tree_option(p_allsat)
    p_allsat.add_argument("formula")
    p_allsat.add_argument(
        "--view", choices=["failed", "operational", "vectors"], default="failed"
    )
    p_allsat.set_defaults(handler=_cmd_allsat)

    p_mcs = sub.add_parser("mcs", help="minimal cut sets")
    _add_tree_option(p_mcs)
    p_mcs.add_argument("--element")
    p_mcs.set_defaults(handler=lambda args: _cmd_minimal_sets(args, False))

    p_mps = sub.add_parser("mps", help="minimal path sets")
    _add_tree_option(p_mps)
    p_mps.add_argument("--element")
    p_mps.set_defaults(handler=lambda args: _cmd_minimal_sets(args, True))

    p_cex = sub.add_parser("cex", help="counterexample (Algorithm 4)")
    _add_tree_option(p_cex)
    _add_vector_options(p_cex)
    p_cex.add_argument("formula")
    p_cex.add_argument(
        "--method", choices=["algorithm4", "closest"], default="algorithm4"
    )
    p_cex.set_defaults(handler=_cmd_cex)

    p_synth = sub.add_parser(
        "synth",
        help="must-1/must-0/don't-care repair regions for a property",
    )
    _add_tree_option(p_synth)
    p_synth.add_argument(
        "formula", help="layer-1 target property, or SYNTHESIZE(...) text"
    )
    p_synth.add_argument(
        "--candidates",
        help="comma-separated candidate basic events (default: all; may "
        "also be embedded in the SYNTHESIZE(phi; e1, e2) text)",
    )
    p_synth.add_argument(
        "--json", action="store_true", help="emit the JSON result row"
    )
    p_synth.set_defaults(handler=_cmd_synth)

    p_show = sub.add_parser("show", help="render the tree as ASCII art")
    _add_tree_option(p_show)
    p_show.add_argument("--failed")
    p_show.add_argument("--descriptions", action="store_true")
    p_show.set_defaults(handler=_cmd_show)

    p_dot = sub.add_parser("dot", help="export the tree to Graphviz DOT")
    _add_tree_option(p_dot)
    p_dot.add_argument("--failed")
    p_dot.add_argument("--descriptions", action="store_true")
    p_dot.set_defaults(handler=_cmd_dot)

    p_batch = sub.add_parser(
        "batch", help="answer a JSON battery of queries via the service layer"
    )
    _add_tree_option(p_batch)
    p_batch.add_argument(
        "queries", nargs="?", help="JSON query file (see docs)"
    )
    p_batch.add_argument(
        "--list-kinds",
        action="store_true",
        help="print every registered query kind with its required spec "
        "fields and exit",
    )
    p_batch.add_argument(
        "--output", help="write the JSON report here instead of stdout"
    )
    p_batch.add_argument(
        "--pretty", action="store_true", help="indent the JSON report"
    )
    p_batch.add_argument(
        "--gc",
        action="store_true",
        help="arm automatic BDD garbage collection (dead intermediate "
        "BDDs are reclaimed between queries; counters appear under "
        "stats.scenarios.<name>.memory)",
    )
    p_batch.add_argument(
        "--auto-reorder",
        action="store_true",
        help="arm automatic in-place variable reordering (Rudell "
        "sifting) when live BDD nodes grow past the kernel trigger",
    )
    p_batch.add_argument(
        "--uniform",
        type=float,
        help="uniform failure probability for PFL queries (overrides "
        "the query file's 'uniform' key)",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        help="answer the battery over N worker processes (balanced "
        "shards, deterministic merge; overrides the query file's "
        "'workers' key)",
    )
    p_batch.add_argument(
        "--snapshot",
        help="kernel snapshot cache: load it when the file exists, "
        "create it otherwise, so repeat runs (and this run's workers) "
        "skip fault-tree translation",
    )
    p_batch.add_argument(
        "--variants",
        metavar="FILE",
        help="JSON file of copy-on-write what-if scenarios (variant "
        "name -> {base, edits, probabilities}), merged over the query "
        "file's 'variants' key; variant sessions fork the warm base "
        "kernel instead of rebuilding per scenario",
    )
    p_batch.add_argument(
        "--query-timeout",
        type=float,
        metavar="MS",
        help="default per-query wall-clock budget in milliseconds (a "
        "query's own timeout_ms wins); an expired query is reported as "
        "a structured error_kind=deadline failure while the rest of "
        "the battery continues (overrides the file's 'query_timeout_ms')",
    )
    p_batch.add_argument(
        "--deadline",
        type=float,
        metavar="MS",
        help="whole-battery wall-clock budget in milliseconds; queries "
        "that cannot start before it expires are reported as "
        "error_kind=deadline failures (overrides the file's "
        "'deadline_ms')",
    )
    p_batch.add_argument(
        "--shard-retries",
        type=int,
        metavar="N",
        help="with --workers: resubmit a crashed or hung shard to a "
        "fresh worker up to N times before reporting a structured "
        "worker-crash failure (default 2; overrides the file's "
        "'shard_retries')",
    )
    p_batch.add_argument(
        "--retry-backoff",
        type=float,
        metavar="MS",
        help="base delay before a shard retry round, doubled each "
        "round (default 250 ms; overrides the file's "
        "'retry_backoff_ms')",
    )
    p_batch.add_argument(
        "--watchdog",
        type=float,
        metavar="MS",
        help="with --workers: treat a shard with no result after this "
        "many milliseconds as hung — kill its worker pool and retry it "
        "(off by default; overrides the file's 'watchdog_ms')",
    )
    p_batch.set_defaults(handler=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived analysis daemon (JSON battery API "
        "over HTTP, warm session pool + snapshot store)",
    )
    _add_tree_option(p_serve)
    p_serve.add_argument(
        "--scenario",
        action="append",
        metavar="NAME=TREE",
        help="register an extra named scenario (Galileo file or "
        "'covid'); repeatable.  --tree provides the 'default' scenario",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8346,
        help="bind port (0 picks an ephemeral port, printed at startup)",
    )
    p_serve.add_argument(
        "--store",
        metavar="DIR",
        help="content-addressed kernel-snapshot directory (the warm "
        "cache tier): evicted and cold scenarios warm-start from it, "
        "and a drain persists every pooled session into it",
    )
    p_serve.add_argument(
        "--pool-size",
        type=int,
        default=8,
        help="live-session LRU capacity (default 8)",
    )
    p_serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="batteries evaluating at once (default 4)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="batteries allowed to wait for a slot before requests "
        "are rejected 503 server-busy (default 16)",
    )
    p_serve.add_argument(
        "--rate-limit",
        type=float,
        metavar="RPS",
        help="token-bucket rate limit in requests/sec (off by "
        "default; /healthz is exempt)",
    )
    p_serve.add_argument(
        "--rate-burst",
        type=float,
        metavar="N",
        help="token-bucket burst capacity (default: the rate)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        metavar="MS",
        help="default whole-battery deadline applied to requests "
        "without their own deadline_ms",
    )
    p_serve.add_argument(
        "--query-timeout",
        type=float,
        metavar="MS",
        help="default per-query budget applied to requests without "
        "their own query_timeout_ms",
    )
    p_serve.add_argument(
        "--uniform",
        type=float,
        help="server-default uniform failure probability for PFL "
        "queries (a request's own uniform wins)",
    )
    p_serve.add_argument(
        "--probabilities",
        help="server-default overrides, e.g. 'IW=0.1,H1=0.02' (a "
        "request's own probabilities win)",
    )
    p_serve.add_argument(
        "--no-gc",
        action="store_true",
        help="disable automatic BDD garbage collection (on by default "
        "for the daemon: long-lived sessions accumulate dead nodes)",
    )
    p_serve.add_argument(
        "--auto-reorder",
        action="store_true",
        help="arm automatic in-place variable reordering (Rudell "
        "sifting) on every scenario's kernel",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_report = sub.add_parser(
        "covid-report", help="regenerate the Sec. VII case-study analysis"
    )
    p_report.set_defaults(handler=_cmd_covid_report)

    p_importance = sub.add_parser(
        "importance", help="probabilistic importance measures"
    )
    _add_tree_option(p_importance)
    p_importance.add_argument("--element")
    p_importance.add_argument(
        "--probabilities", help="overrides, e.g. 'IW=0.1,H1=0.02'"
    )
    p_importance.add_argument(
        "--uniform", type=float, help="uniform probability for all events"
    )
    p_importance.set_defaults(handler=_cmd_importance)

    p_prob = sub.add_parser(
        "prob", help="P(formula) or a PBFL query 'P(phi) >= c'"
    )
    _add_tree_option(p_prob)
    p_prob.add_argument("query")
    p_prob.add_argument(
        "--probabilities", help="overrides, e.g. 'IW=0.1,H1=0.02'"
    )
    p_prob.add_argument(
        "--uniform", type=float, help="uniform probability for all events"
    )
    p_prob.set_defaults(handler=_cmd_probability)

    p_modules = sub.add_parser(
        "modules", help="independent-subtree (module) detection"
    )
    _add_tree_option(p_modules)
    p_modules.set_defaults(handler=_cmd_modules)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
