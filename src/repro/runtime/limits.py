"""Cooperative resource governance for the BDD kernel.

A :class:`Governor` is a small budget/deadline object a caller installs
on a :class:`~repro.bdd.manager.BDDManager` (``manager.governor = g``)
around a unit of work.  The kernel then *cooperates*: its hot
construction paths (``_mk``) and long passes (``probability``,
``sift_inplace``) call :meth:`Governor.tick` at points where aborting is
safe — between whole node constructions or adjacent-level swaps, never
inside the unique-table/swap machinery — and the governor raises a
structured :class:`~repro.errors.ResourceLimitError` or
:class:`~repro.errors.QueryDeadlineError` once a budget is exhausted.

Design constraints (why it looks the way it does):

* **Cheap when armed** — a tick is one attribute read, one integer
  increment, and two integer compares; the wall clock is only consulted
  every ``check_interval`` ticks (``time.monotonic`` is ~100x the cost
  of the increment).  The ``timeout-overhead`` benchmark gate pins the
  end-to-end cost of an armed-but-never-tripping governor on the covid
  battery below 5%.
* **Free when disarmed** — an ungoverned manager pays one ``is None``
  branch per ``_mk``.
* **Consistent aborts** — the kernel only ticks at safe points, so when
  a trip propagates the manager's invariants hold (verified by
  ``check_invariants`` in the chaos suite).  The manager drops its memo
  tables on the way out (`BDDManager._governed_abort`): an aborted
  operation may have allocated nodes that no Ref pins, and dropping the
  caches guarantees no stale entry outlives the abort while the dead
  nodes remain ordinary GC fodder.

The clock is injectable for tests (and for the chaos harness, which
fakes the passage of time deterministically).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import QueryDeadlineError, ResourceLimitError

__all__ = ["Governor"]

#: Ticks between wall-clock checks.  2^10 `_mk` calls take well under a
#: millisecond even on slow hardware, so deadline overshoot stays small
#: while the monotonic() call amortises to noise.
DEFAULT_CHECK_INTERVAL = 1024


class Governor:
    """Wall-clock deadline plus node and apply-step budgets.

    Args:
        deadline_ms: Wall-clock budget in milliseconds, measured from
            :meth:`start` (called automatically on first tick if the
            caller did not).  ``None`` disables the deadline.
        node_budget: Maximum *live* stored nodes the governed manager
            may hold (checked on every allocation path through ``_mk``,
            so peak growth is caught within one node).  ``None``
            disables it.
        step_budget: Maximum number of governed safe-point ticks —
            effectively an apply-step budget, since ``_mk`` dominates
            tick traffic.  ``None`` disables it.
        check_interval: Elementary steps between wall-clock reads (the
            default keeps deadline overshoot < 1 ms); weighted ticks
            count toward the interval with their full weight.
        clock: Monotonic-seconds source (injectable for tests/chaos).
        label: Optional caller context (query id, battery name) echoed
            in error messages.

    A governor is reusable: :meth:`start` re-arms the deadline and
    resets the step counter, so one object can govern a battery of
    queries back to back.
    """

    __slots__ = (
        "deadline_ms",
        "node_budget",
        "step_budget",
        "label",
        "_clock",
        "_interval",
        "_until_clock",
        "_steps",
        "_deadline_at",
        "_started_at",
        "trips",
    )

    def __init__(
        self,
        *,
        deadline_ms: Optional[float] = None,
        node_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        clock: Callable[[], float] = time.monotonic,
        label: str = "",
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms!r}")
        if node_budget is not None and node_budget < 1:
            raise ValueError(f"node_budget must be >= 1, got {node_budget!r}")
        if step_budget is not None and step_budget < 1:
            raise ValueError(f"step_budget must be >= 1, got {step_budget!r}")
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval!r}"
            )
        self.deadline_ms = deadline_ms
        self.node_budget = node_budget
        self.step_budget = step_budget
        self.label = label
        self._clock = clock
        self._interval = check_interval
        # Ticks remaining until the next wall-clock read.  A countdown
        # (rather than a modulo on the step count) stays correct when
        # callers credit weighted ticks — the kernel batches its `_mk`
        # safe points and reports them 64 at a time.
        self._until_clock = 1
        self._steps = 0
        self._deadline_at: Optional[float] = None
        self._started_at: Optional[float] = None
        #: Number of times this governor has raised (monotone; the chaos
        #: suite uses it to assert injected trips actually fired).
        self.trips = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Governor":
        """Arm the deadline from *now* and reset the step counter."""
        self._steps = 0
        # First tick always reads the clock: an already-expired
        # deadline must trip immediately, not check_interval ticks in.
        self._until_clock = 1
        self._started_at = self._clock()
        if self.deadline_ms is not None:
            self._deadline_at = self._started_at + self.deadline_ms / 1000.0
        else:
            self._deadline_at = None
        return self

    @property
    def steps(self) -> int:
        """Safe-point ticks consumed since the last :meth:`start`."""
        return self._steps

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left before the deadline (None when undated)."""
        if self._deadline_at is None:
            return None
        if self._started_at is None:
            return self.deadline_ms
        return max(0.0, (self._deadline_at - self._clock()) * 1000.0)

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------

    def tick(self, live_nodes: int = 0, weight: int = 1) -> None:
        """One governed safe point; raises when a budget is exhausted.

        Args:
            live_nodes: The governed manager's current live node count
                (0 skips the node check — callers on node-free paths
                pass nothing).
            weight: How many elementary steps this safe point stands
                for.  The kernel batches its per-``_mk`` checks and
                reports them 64 at a time, so the per-construction cost
                of an armed governor is a decrement and a compare.

        Raises:
            ResourceLimitError: Node or step budget exhausted.
            QueryDeadlineError: Wall-clock deadline passed.
        """
        if self._started_at is None:
            self.start()
        steps = self._steps + weight
        self._steps = steps
        if self.node_budget is not None and live_nodes > self.node_budget:
            self.trips += 1
            raise ResourceLimitError(
                f"{self._context()}node budget exhausted: "
                f"{live_nodes} live nodes > budget {self.node_budget}"
            )
        if self.step_budget is not None and steps > self.step_budget:
            self.trips += 1
            raise ResourceLimitError(
                f"{self._context()}apply-step budget exhausted: "
                f"{steps} steps > budget {self.step_budget}"
            )
        self._until_clock -= weight
        if self._until_clock <= 0:
            self._until_clock = self._interval
            if (
                self._deadline_at is not None
                and self._clock() > self._deadline_at
            ):
                self.trips += 1
                raise QueryDeadlineError(
                    f"{self._context()}deadline of "
                    f"{self.deadline_ms:g} ms exceeded"
                )

    def check_deadline(self) -> None:
        """Unconditional wall-clock check (no step accounting).

        For coarse safe points — between sifting swaps, between
        probability sweep phases — where the per-tick counter would
        undercount the elapsed work.
        """
        if self._deadline_at is not None and self._clock() > self._deadline_at:
            self.trips += 1
            raise QueryDeadlineError(
                f"{self._context()}deadline of {self.deadline_ms:g} ms exceeded"
            )

    def _context(self) -> str:
        return f"{self.label}: " if self.label else ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Governor(deadline_ms={self.deadline_ms!r}, "
            f"node_budget={self.node_budget!r}, "
            f"step_budget={self.step_budget!r}, steps={self._steps}, "
            f"trips={self.trips})"
        )
