"""Execution-runtime services: resource governance and fault tolerance.

The :mod:`repro.runtime.limits` module defines the :class:`Governor`
that :class:`~repro.bdd.manager.BDDManager` consults at cheap safe
points, turning runaway queries into structured
:class:`~repro.errors.ResourceLimitError` /
:class:`~repro.errors.QueryDeadlineError` failures instead of unbounded
node growth.
"""

from .limits import Governor

__all__ = ["Governor"]
