"""Satisfying fault-tree synthesis (paper Sec. V-E).

The paper *discusses* this problem without committing to an algorithm:
given a vector ``b`` and a formula ``chi``, find a tree ``T`` with
``b, T |= chi``.  We implement the two directions it sketches:

* :func:`naive_assignment_search` — the paper's "more trivial approach":
  keep the basic events fixed as in ``b`` and try truth assignments for the
  other variables of ``chi`` until it is satisfied (the result need not
  correspond to a meaningful tree, exactly as the paper warns);
* :func:`synthesize_tree` — randomised generate-and-test over well-formed
  trees, checking ``b, T |= chi`` with the model checker;
* :func:`infer_fault_tree` — a genetic-programming structure learner in
  the spirit of the paper's reference [31] (Jimenez Roa et al.): evolve a
  tree whose structure function classifies a set of labelled status
  vectors;
* :func:`synthesis_regions` — repair-region decomposition: for a target
  property ``phi`` and a candidate event set ``C``, classify each
  candidate as must-1 / must-0 / don't-care via restrict + existential
  quantification on the BDD kernel (no enumeration on the hot path).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..bdd.quantify import exists
from ..errors import SynthesisError
from ..ft.elements import BasicEvent, Gate, GateType
from ..ft.random_trees import RandomTreeConfig, random_tree
from ..ft.tree import FaultTree
from ..logic.ast_nodes import (
    And,
    Atom,
    Constant,
    Equiv,
    Evidence,
    Formula,
    Implies,
    Not,
    NotEquiv,
    Or,
    Vot,
)
from ..logic.sugar import vot_comparator

# ----------------------------------------------------------------------
# The paper's "more trivial approach"
# ----------------------------------------------------------------------


def _propositional_eval(formula: Formula, assignment: Mapping[str, bool]) -> bool:
    if isinstance(formula, Atom):
        return bool(assignment[formula.name])
    if isinstance(formula, Constant):
        return formula.value
    if isinstance(formula, Not):
        return not _propositional_eval(formula.operand, assignment)
    if isinstance(formula, And):
        return _propositional_eval(formula.left, assignment) and (
            _propositional_eval(formula.right, assignment)
        )
    if isinstance(formula, Or):
        return _propositional_eval(formula.left, assignment) or (
            _propositional_eval(formula.right, assignment)
        )
    if isinstance(formula, Implies):
        return (not _propositional_eval(formula.left, assignment)) or (
            _propositional_eval(formula.right, assignment)
        )
    if isinstance(formula, Equiv):
        return _propositional_eval(formula.left, assignment) == (
            _propositional_eval(formula.right, assignment)
        )
    if isinstance(formula, NotEquiv):
        return _propositional_eval(formula.left, assignment) != (
            _propositional_eval(formula.right, assignment)
        )
    if isinstance(formula, Evidence):
        # Leftmost assignment wins (chained-substitution semantics; see
        # ReferenceSemantics._eval).
        modified = dict(assignment)
        for name, value in reversed(formula.assignments):
            modified[name] = value
        return _propositional_eval(formula.operand, modified)
    if isinstance(formula, Vot):
        count = sum(
            1
            for operand in formula.operands
            if _propositional_eval(operand, assignment)
        )
        return vot_comparator(formula.operator)(count, formula.threshold)
    raise SynthesisError(
        "the naive assignment search treats the formula propositionally and "
        f"cannot handle {type(formula).__name__} (MCS/MPS need a tree)"
    )


def naive_assignment_search(
    formula: Formula, fixed: Mapping[str, bool]
) -> Optional[Dict[str, bool]]:
    """Try all truth assignments for the non-fixed atoms of ``formula``.

    Args:
        formula: An MCS/MPS-free formula, viewed propositionally.
        fixed: The basic-event values of ``b`` (kept fixed, per Sec. V-E).

    Returns:
        A satisfying total assignment over the formula's atoms, or ``None``.
        As the paper notes, the assignment to intermediate-event atoms need
        not be realisable by any meaningful fault-tree structure.
    """
    atoms = sorted(formula.atoms())
    free = [name for name in atoms if name not in fixed]
    base = {name: bool(fixed[name]) for name in atoms if name in fixed}
    for bits in itertools.product((False, True), repeat=len(free)):
        assignment = dict(base)
        assignment.update(zip(free, bits))
        if _propositional_eval(formula, assignment):
            return assignment
    return None


# ----------------------------------------------------------------------
# Generate-and-test synthesis
# ----------------------------------------------------------------------


def _rename_gates(tree: FaultTree, required: Sequence[str]) -> Optional[FaultTree]:
    """Rename gates so every required intermediate-event name exists.

    The top gate takes the first required name; remaining names are assigned
    to the largest gates first.  Returns ``None`` if the tree has too few
    gates or a name clash arises.
    """
    gate_names = list(tree.gate_names)
    if len(gate_names) < len(required):
        return None
    if any(name in tree.basic_events for name in required):
        return None
    ordered = [tree.top] + sorted(
        (g for g in gate_names if g != tree.top),
        key=lambda g: -len(tree.descendants(g)),
    )
    mapping = {old: new for old, new in zip(ordered, required)}
    if not mapping:
        return tree
    basic = [tree.basic_event(name) for name in tree.basic_events]
    gates = []
    for name in gate_names:
        gate = tree.gate(name)
        gates.append(
            Gate(
                name=mapping.get(name, name),
                gate_type=gate.gate_type,
                children=tuple(mapping.get(c, c) for c in gate.children),
                threshold=gate.threshold,
            )
        )
    return FaultTree(
        basic_events=basic, gates=gates, top=mapping.get(tree.top, tree.top)
    )


def synthesize_tree(
    formula: Formula,
    vector: Mapping[str, bool],
    basic_events: Sequence[str],
    attempts: int = 2000,
    seed: int = 0,
) -> FaultTree:
    """Find some well-formed tree ``T`` with ``b, T |= formula``.

    Randomised generate-and-test: draw random trees over ``basic_events``,
    graft the intermediate-event names the formula mentions onto their
    gates, and model-check.  Raises :class:`SynthesisError` after
    ``attempts`` failures (the problem may also be unsatisfiable).
    """
    from .engine import ModelChecker  # local import to avoid a cycle

    atoms = formula.atoms()
    required_gates = sorted(atoms - set(basic_events))
    missing = {name for name in vector if name not in basic_events}
    if missing & atoms:
        raise SynthesisError(
            "vector mentions atoms outside the basic-event list: "
            + ", ".join(sorted(missing & atoms))
        )
    rng = random.Random(seed)
    config = RandomTreeConfig(
        n_basic_events=len(basic_events),
        max_children=3,
        p_vot=0.1,
        p_share=0.15,
        max_depth=4,
    )
    for attempt in range(attempts):
        candidate = random_tree(rng.randrange(2**31), config)
        renamed_be = dict(zip(candidate.basic_events, basic_events))
        basic = [BasicEvent(renamed_be[name]) for name in candidate.basic_events]
        gates = [
            Gate(
                name=gate.name,
                gate_type=gate.gate_type,
                children=tuple(
                    renamed_be.get(child, child) for child in gate.children
                ),
                threshold=gate.threshold,
            )
            for gate in (candidate.gate(g) for g in candidate.gate_names)
        ]
        rebuilt = FaultTree(basic_events=basic, gates=gates, top=candidate.top)
        renamed = _rename_gates(rebuilt, required_gates)
        if renamed is None:
            continue
        checker = ModelChecker(renamed)
        full_vector = {
            name: bool(vector.get(name, False)) for name in basic_events
        }
        if checker.check(formula, vector=full_vector):
            return renamed
    raise SynthesisError(
        f"no satisfying tree found in {attempts} attempts "
        "(the instance may be unsatisfiable)"
    )


# ----------------------------------------------------------------------
# Genetic-programming structure inference (the paper's reference [31])
# ----------------------------------------------------------------------

#: Genomes are nested tuples: ("be", name) | (gate, (children...)) with
#: gate in {"and", "or"} | ("vot", k, (children...)).
Genome = Tuple


@dataclass(frozen=True)
class GeneticConfig:
    """Hyper-parameters for :func:`infer_fault_tree`."""

    population_size: int = 40
    generations: int = 60
    tournament: int = 3
    mutation_rate: float = 0.4
    crossover_rate: float = 0.7
    max_depth: int = 4
    size_penalty: float = 0.005
    seed: int = 0


def _random_genome(rng: random.Random, names: Sequence[str], depth: int) -> Genome:
    if depth <= 0 or rng.random() < 0.35:
        return ("be", rng.choice(list(names)))
    arity = rng.randint(2, 3)
    children = tuple(
        _random_genome(rng, names, depth - 1) for _ in range(arity)
    )
    roll = rng.random()
    if roll < 0.45:
        return ("and", children)
    if roll < 0.9:
        return ("or", children)
    return ("vot", rng.randint(1, arity), children)


def _genome_eval(genome: Genome, vector: Mapping[str, bool]) -> bool:
    kind = genome[0]
    if kind == "be":
        return bool(vector[genome[1]])
    if kind == "and":
        return all(_genome_eval(child, vector) for child in genome[1])
    if kind == "or":
        return any(_genome_eval(child, vector) for child in genome[1])
    # vot
    count = sum(1 for child in genome[2] if _genome_eval(child, vector))
    return count >= genome[1]


def _genome_size(genome: Genome) -> int:
    if genome[0] == "be":
        return 1
    children = genome[1] if genome[0] != "vot" else genome[2]
    return 1 + sum(_genome_size(child) for child in children)


def _genome_nodes(genome: Genome, path: Tuple[int, ...] = ()) -> List[Tuple[Tuple[int, ...], Genome]]:
    nodes = [(path, genome)]
    if genome[0] != "be":
        children = genome[1] if genome[0] != "vot" else genome[2]
        for i, child in enumerate(children):
            nodes.extend(_genome_nodes(child, path + (i,)))
    return nodes


def _genome_replace(genome: Genome, path: Tuple[int, ...], new: Genome) -> Genome:
    if not path:
        return new
    head, rest = path[0], path[1:]
    if genome[0] == "vot":
        children = list(genome[2])
        children[head] = _genome_replace(children[head], rest, new)
        return ("vot", genome[1], tuple(children))
    children = list(genome[1])
    children[head] = _genome_replace(children[head], rest, new)
    return (genome[0], tuple(children))


def _crossover(rng: random.Random, left: Genome, right: Genome) -> Genome:
    path, _ = rng.choice(_genome_nodes(left))
    _, donor = rng.choice(_genome_nodes(right))
    return _genome_replace(left, path, donor)


def _mutate(rng: random.Random, genome: Genome, names: Sequence[str], depth: int) -> Genome:
    path, _ = rng.choice(_genome_nodes(genome))
    return _genome_replace(genome, path, _random_genome(rng, names, depth - len(path)))


def genome_to_tree(genome: Genome, all_basic_events: Sequence[str]) -> FaultTree:
    """Materialise a genome as a validated :class:`FaultTree`.

    Duplicate children under one gate are merged; single-child top genomes
    are wrapped in an OR gate; only basic events actually used are declared
    (a well-formed tree cannot contain disconnected leaves).
    """
    gates: List[Gate] = []
    used: List[str] = []
    counter = itertools.count(1)

    def build(node: Genome) -> str:
        if node[0] == "be":
            if node[1] not in used:
                used.append(node[1])
            return node[1]
        children_nodes = node[1] if node[0] != "vot" else node[2]
        names: List[str] = []
        for child in children_nodes:
            name = build(child)
            if name not in names:
                names.append(name)
        gate_name = f"g{next(counter)}"
        if node[0] == "vot":
            threshold = min(node[1], len(names))
            gates.append(
                Gate(
                    name=gate_name,
                    gate_type=GateType.VOT,
                    children=tuple(names),
                    threshold=max(1, threshold),
                )
            )
        else:
            gate_type = GateType.AND if node[0] == "and" else GateType.OR
            gates.append(
                Gate(name=gate_name, gate_type=gate_type, children=tuple(names))
            )
        return gate_name

    top = build(genome)
    if top in used:  # bare basic event: wrap it
        gates.append(Gate(name="g_top", gate_type=GateType.OR, children=(top,)))
        top = "g_top"
    order = [name for name in all_basic_events if name in used]
    return FaultTree(
        basic_events=[BasicEvent(name) for name in order], gates=gates, top=top
    )


def infer_fault_tree(
    basic_events: Sequence[str],
    examples: Sequence[Tuple[Mapping[str, bool], bool]],
    config: Optional[GeneticConfig] = None,
) -> FaultTree:
    """Learn a fault tree whose structure function fits labelled vectors.

    Args:
        basic_events: Candidate leaves.
        examples: ``(status vector, expected top status)`` pairs.
        config: GP hyper-parameters.

    Returns:
        The best tree found (it may not fit perfectly; callers can check
        with :func:`repro.ft.structure.structure_function`).
    """
    if not examples:
        raise SynthesisError("need at least one labelled example")
    cfg = config or GeneticConfig()
    rng = random.Random(cfg.seed)

    def fitness(genome: Genome) -> float:
        correct = sum(
            1
            for vector, label in examples
            if _genome_eval(genome, vector) == bool(label)
        )
        return correct / len(examples) - cfg.size_penalty * _genome_size(genome)

    population = [
        _random_genome(rng, basic_events, cfg.max_depth)
        for _ in range(cfg.population_size)
    ]
    best = max(population, key=fitness)
    for _ in range(cfg.generations):
        if fitness(best) >= 1.0 - 1e-9:
            break
        next_population = [best]  # elitism
        while len(next_population) < cfg.population_size:
            contenders = rng.sample(
                population, min(cfg.tournament, len(population))
            )
            parent = max(contenders, key=fitness)
            child = parent
            if rng.random() < cfg.crossover_rate:
                contenders = rng.sample(
                    population, min(cfg.tournament, len(population))
                )
                other = max(contenders, key=fitness)
                child = _crossover(rng, child, other)
            if rng.random() < cfg.mutation_rate:
                child = _mutate(rng, child, basic_events, cfg.max_depth)
            next_population.append(child)
        population = next_population
        best = max(population, key=fitness)
    return genome_to_tree(best, basic_events)


# ----------------------------------------------------------------------
# Repair-region decomposition (must-1 / must-0 / don't-care)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SynthesisRegions:
    """Repair-region decomposition of a target property over candidates.

    Project the property's satisfaction set onto the candidate events
    ``C`` (existentially quantifying everything else away).  Each
    candidate is then:

    * **must-1** — it fails in *every* projected satisfying assignment
      (a repair must set it);
    * **must-0** — it is operational in every projected satisfying
      assignment (a repair must clear it);
    * **don't-care** — the remaining candidates (some freedom remains,
      though they need not be independent of each other).

    ``choices`` counts the satisfying assignments of the projection over
    ``C`` — the number of distinct candidate configurations compatible
    with the property.  An unsatisfiable property yields empty regions
    and zero choices.
    """

    candidates: Tuple[str, ...]
    satisfiable: bool
    must_1: Tuple[str, ...]
    must_0: Tuple[str, ...]
    dont_care: Tuple[str, ...]
    choices: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidates": list(self.candidates),
            "satisfiable": self.satisfiable,
            "must_1": list(self.must_1),
            "must_0": list(self.must_0),
            "dont_care": list(self.dont_care),
            "choices": self.choices,
        }


def _resolve_candidates(
    tree: FaultTree, candidates: Optional[Sequence[str]]
) -> Tuple[str, ...]:
    if candidates is None or not tuple(candidates):
        return tuple(tree.basic_events)
    resolved = tuple(candidates)
    unknown = [name for name in resolved if name not in tree.basic_events]
    if unknown:
        raise SynthesisError(
            "SYNTHESIZE candidates must be basic events of the tree; "
            "unknown: " + ", ".join(sorted(set(unknown)))
        )
    if len(set(resolved)) != len(resolved):
        raise SynthesisError("SYNTHESIZE candidates must be distinct")
    return resolved


def synthesis_regions(
    translator,
    formula: Formula,
    candidates: Optional[Sequence[str]] = None,
) -> SynthesisRegions:
    """Compute must-1 / must-0 / don't-care regions on the BDD kernel.

    Args:
        translator: A :class:`repro.checker.FormulaTranslator` (shared
            with the owning checker, so BDD caches are reused).
        formula: Layer-1 target property ``phi``.
        candidates: Candidate basic events ``C`` (default: all basic
            events of the translator's tree).

    The projection ``g = exists(V \\ C). [[phi]]`` is built with one
    memoised quantification pass; each candidate is classified with two
    constant-time-per-node restrict calls, and ``choices`` is one
    ``sat_count`` over ``C`` — no vector enumeration anywhere.
    """
    resolved = _resolve_candidates(translator.tree, candidates)
    manager = translator.manager
    f = translator.bdd(formula)
    chosen = set(resolved)
    others = [name for name in manager.variables if name not in chosen]
    g = exists(manager, f, others)
    if g is manager.false:
        return SynthesisRegions(
            candidates=resolved,
            satisfiable=False,
            must_1=(),
            must_0=(),
            dont_care=(),
            choices=0,
        )
    must_1 = tuple(
        name
        for name in resolved
        if manager.restrict(g, name, False) is manager.false
    )
    must_0 = tuple(
        name
        for name in resolved
        if manager.restrict(g, name, True) is manager.false
    )
    fixed = set(must_1) | set(must_0)
    dont_care = tuple(name for name in resolved if name not in fixed)
    choices = int(manager.sat_count(g, over=resolved))
    return SynthesisRegions(
        candidates=resolved,
        satisfiable=True,
        must_1=must_1,
        must_0=must_0,
        dont_care=dont_care,
        choices=choices,
    )


def synthesis_regions_enumeration(
    tree: FaultTree,
    formula: Formula,
    candidates: Optional[Sequence[str]] = None,
) -> SynthesisRegions:
    """Brute-force oracle for :func:`synthesis_regions`.

    Enumerates all ``2^n`` status vectors with the reference semantics
    and projects the satisfying ones onto the candidates.  Exponential —
    for tests and the benchmark baseline only.
    """
    from ..logic.semantics import ReferenceSemantics

    resolved = _resolve_candidates(tree, candidates)
    semantics = ReferenceSemantics(tree)
    projections = set()
    for vector in semantics.iter_vectors():
        if semantics.holds(formula, vector):
            projections.add(tuple(bool(vector[name]) for name in resolved))
    if not projections:
        return SynthesisRegions(
            candidates=resolved,
            satisfiable=False,
            must_1=(),
            must_0=(),
            dont_care=(),
            choices=0,
        )
    must_1 = tuple(
        name
        for position, name in enumerate(resolved)
        if all(projection[position] for projection in projections)
    )
    must_0 = tuple(
        name
        for position, name in enumerate(resolved)
        if not any(projection[position] for projection in projections)
    )
    fixed = set(must_1) | set(must_0)
    dont_care = tuple(name for name in resolved if name not in fixed)
    return SynthesisRegions(
        candidates=resolved,
        satisfiable=True,
        must_1=must_1,
        must_0=must_0,
        dont_care=dont_care,
        choices=len(projections),
    )
