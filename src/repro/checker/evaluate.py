"""Algorithm 2: check ``b, T |= chi`` by walking the formula's BDD.

The paper's algorithm: compute ``BT(chi)`` (Algorithm 1), then descend from
the root taking the ``Low`` edge where ``b`` assigns 0 and the ``High`` edge
where it assigns 1, and report which terminal is reached.
"""

from __future__ import annotations

from typing import Mapping

from ..bdd.manager import BDDManager
from ..bdd.ref import Ref
from ..errors import StatusVectorError
from ..logic.ast_nodes import Formula
from .translate import FormulaTranslator


def walk(manager: BDDManager, root: Ref, vector: Mapping[str, bool]) -> bool:
    """The BDD walk at the heart of Algorithm 2.

    Args:
        manager: Owning manager.
        root: BDD of the formula.
        vector: Status vector ``b``; must cover every variable the walk
            branches on.

    Returns:
        True iff the walk ends in the ``1`` terminal.
    """
    node = root
    while not node.is_terminal:
        name = manager.name_of(node.level)
        try:
            bit = vector[name]
        except KeyError:
            raise StatusVectorError(
                f"status vector does not assign {name!r}"
            ) from None
        node = node.high if bit else node.low
    return bool(node.value)


def check(
    translator: FormulaTranslator,
    formula: Formula,
    vector: Mapping[str, bool],
) -> bool:
    """Algorithm 2: ``b, T |= formula``.

    Args:
        translator: Algorithm-1 translator for the tree ``T``.
        formula: A layer-1 BFL formula ``chi``.
        vector: The status vector ``b`` over the tree's basic events.
    """
    translator.tree.check_vector(vector)
    root = translator.bdd(formula)
    return walk(translator.manager, root, vector)
